#!/usr/bin/env bash
# Dumps the medians of the key benchmarks to a BENCH_<n>.json snapshot so
# the perf trajectory is tracked in-repo, PR over PR.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_10.json}"
BENCHES=(string_builder gate_write label_ops server_throughput store_io net_throughput rsl_exec sql_scaling checkpoint_scaling replication)

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

for b in "${BENCHES[@]}"; do
    echo "running bench: $b" >&2
    cargo bench --bench "$b" 2>/dev/null | grep 'time:' >>"$RAW"
done

# Lines look like:
#   group/name  time: [12.3 µs 13.4 µs 15.6 µs]  thrpt: ...
# so the median is field 5 and its unit field 6. Convert to nanoseconds
# and emit one JSON entry per bench.
awk -v q='"' '
    /time:/ {
        name = $1
        med = $5
        unit = $6
        if (unit == "ns")      ns = med
        else if (unit == "ms") ns = med * 1e6
        else if (unit == "s")  ns = med * 1e9
        else                   ns = med * 1e3   # µs
        printf "  %s%s%s: %.1f,\n", q, name, q, ns
    }
' "$RAW" | sed '$ s/,$//' >"$RAW.entries"

{
    echo "{"
    cat "$RAW.entries"
    echo "}"
} >"$OUT"
rm -f "$RAW.entries"

echo "wrote $OUT ($(grep -c ':' "$OUT") medians, ns)"
