//! A vendored, API-compatible stand-in for [proptest].
//!
//! The build image has no crates.io access, so the workspace ships this
//! minimal shim covering the subset `resin`'s property tests use: string
//! strategies written as `"[a-z]{1,16}"`-style patterns, integer ranges,
//! tuples, `prop::collection::vec`, `any::<bool>()`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Generation is a deterministic
//! xorshift PRNG (seeded per test from the test name), 96 cases per
//! property, and there is **no shrinking** — a failing case reports its
//! inputs via the assertion message instead. Swap in the real proptest crate
//! for full shrinking and configuration.
//!
//! [proptest]: https://github.com/proptest-rs/proptest

use std::ops::Range;

/// Deterministic xorshift64* PRNG.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; test macros derive the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed | 1, // never zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// An error signalled by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a function from RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// String patterns: a simplified `[class]{lo,hi}` regex subset.
///
/// Supports one bracketed character class (with `a-z` ranges and literal
/// characters) followed by a `{lo,hi}` or `{n}` repetition. A pattern
/// without brackets generates itself literally.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported proptest-shim pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class_src: Vec<char> = rest[..close].chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < class_src.len() {
        if i + 2 < class_src.len() && class_src[i + 1] == '-' {
            let (a, b) = (class_src[i], class_src[i + 2]);
            for c in a..=b {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(class_src[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rep.parse().ok()?;
            (n, n)
        }
    };
    Some((class, lo, hi))
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`any`]`::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s of `element` with a length in `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy, TestCaseError,
        TestRng,
    };
}

/// Number of cases generated per property.
pub const CASES: usize = 96;

/// Derives a stable seed from a test's name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over [`CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    // The body may consume the inputs; render them first.
                    let inputs =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {case}: {e}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, reporting generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {l:?}\n  right: {r:?}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_parsing() {
        let mut rng = TestRng::new(7);
        for _ in 0..50 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let s = "[ -~]{0,24}".generate(&mut rng);
        assert!(s.len() <= 24);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn shim_self_test(x in 0usize..10, v in prop::collection::vec("[0-9]{1,3}", 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
