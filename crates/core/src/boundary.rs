//! Internal data flow boundaries (§8, future work).
//!
//! The paper envisions boundaries *within* an application: "an assertion
//! could prevent clear-text passwords from flowing out of the software
//! module that handles passwords." [`InternalBoundary`] is that mechanism:
//! a module wraps its public return values in [`InternalBoundary::export`],
//! and the boundary rejects (or strips) configured policy classes, so
//! sensitive data cannot escape the module even through code paths the
//! module author forgot about.

use crate::context::Context;
use crate::error::{PolicyViolation, ResinError, Result};
use crate::policy::Policy;
use crate::taint::TaintedString;

/// What the boundary does when it sees a guarded policy class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Refuse the export.
    Deny,
    /// Allow the export but remove the policy (declassification point).
    Strip,
}

/// A named boundary around a software module.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use resin_core::boundary::InternalBoundary;
/// use std::sync::Arc;
///
/// // The auth module never lets clear-text passwords out.
/// let auth = InternalBoundary::new("auth").deny::<PasswordPolicy>();
///
/// let mut pw = TaintedString::from("s3cret");
/// pw.add_policy(Arc::new(PasswordPolicy::new("u@x")));
/// assert!(auth.export(pw).is_err());
///
/// // Its hash function is a declassification point.
/// let hasher = InternalBoundary::new("auth.hash").strip::<PasswordPolicy>();
/// let mut pw = TaintedString::from("s3cret");
/// pw.add_policy(Arc::new(PasswordPolicy::new("u@x")));
/// let digest = hasher.export(pw).unwrap();
/// assert!(!digest.has_policy::<PasswordPolicy>());
/// ```
pub struct InternalBoundary {
    name: &'static str,
    rules: Vec<(
        Box<dyn Fn(&TaintedString) -> bool + Send + Sync>,
        Action,
        &'static str,
    )>,
    strippers: Vec<Box<dyn Fn(&mut TaintedString) + Send + Sync>>,
    context: Context,
}

impl InternalBoundary {
    /// Creates a boundary named for its module.
    pub fn new(name: &'static str) -> Self {
        InternalBoundary {
            name,
            rules: Vec::new(),
            strippers: Vec::new(),
            context: Context::new(crate::channel::ChannelKind::Custom(name)),
        }
    }

    /// The boundary's context (available to custom checks).
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.context
    }

    /// Data carrying a `T` policy may not cross outward.
    pub fn deny<T: Policy>(mut self) -> Self {
        self.rules.push((
            Box::new(|d: &TaintedString| d.has_policy::<T>()),
            Action::Deny,
            std::any::type_name::<T>(),
        ));
        self
    }

    /// Crossing outward removes all `T` policies (a declassification
    /// point, like the encryption-function filter of §3.2).
    pub fn strip<T: Policy>(mut self) -> Self {
        self.rules.push((
            Box::new(|d: &TaintedString| d.has_policy::<T>()),
            Action::Strip,
            std::any::type_name::<T>(),
        ));
        self.strippers.push(Box::new(|d: &mut TaintedString| {
            d.remove_policy_type::<T>()
        }));
        self
    }

    /// Exports `data` across the boundary, applying the rules in order.
    pub fn export(&self, mut data: TaintedString) -> Result<TaintedString> {
        for (pred, action, class) in &self.rules {
            if pred(&data) {
                match action {
                    Action::Deny => {
                        return Err(ResinError::Violation(PolicyViolation::new(
                            "InternalBoundary",
                            format!(
                                "`{class}`-labeled data may not leave module `{}`",
                                self.name
                            ),
                        )));
                    }
                    Action::Strip => {}
                }
            }
        }
        for strip in &self.strippers {
            strip(&mut data);
        }
        Ok(data)
    }
}

impl std::fmt::Debug for InternalBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InternalBoundary")
            .field("name", &self.name)
            .field("rules", &self.rules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{PasswordPolicy, UntrustedData};
    use std::sync::Arc;

    fn pw() -> TaintedString {
        TaintedString::with_policy("s3cret", Arc::new(PasswordPolicy::new("u@x")))
    }

    #[test]
    fn deny_blocks_labeled_data() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        let err = b.export(pw()).unwrap_err();
        assert!(err.is_violation());
        // Unlabeled data crosses freely.
        assert!(b.export(TaintedString::from("public")).is_ok());
    }

    #[test]
    fn strip_declassifies() {
        let b = InternalBoundary::new("auth.hash").strip::<PasswordPolicy>();
        let out = b.export(pw()).unwrap();
        assert!(!out.has_policy::<PasswordPolicy>());
        assert_eq!(out.as_str(), "s3cret");
    }

    #[test]
    fn rules_compose_and_order_matters() {
        // Deny untrusted, strip passwords: both rules apply independently.
        let b = InternalBoundary::new("m")
            .deny::<UntrustedData>()
            .strip::<PasswordPolicy>();
        assert!(b.export(pw()).unwrap().policies().is_empty());
        let mixed = TaintedString::with_policy("x", Arc::new(UntrustedData::new()));
        assert!(b.export(mixed).is_err());
    }

    #[test]
    fn partial_taint_still_denied() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        let mut msg = TaintedString::from("prefix ");
        msg.push_tainted(&pw());
        assert!(b.export(msg).is_err(), "any labeled byte is enough");
    }

    #[test]
    fn debug_format() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        assert!(format!("{b:?}").contains("auth"));
    }
}
