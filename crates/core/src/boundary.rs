//! v1 internal boundaries: a deprecated shim over [`Gate`](crate::gate::Gate).
//!
//! The paper envisions boundaries *within* an application: "an assertion
//! could prevent clear-text passwords from flowing out of the software
//! module that handles passwords" (§8). That mechanism is now a [`Gate`]
//! with deny/strip rules — see [`Gate::internal`], [`Gate::deny`], and
//! [`Gate::strip`]. `InternalBoundary` survives as a thin wrapper
//! delegating to such a gate.

use crate::context::Context;
use crate::error::Result;
use crate::gate::Gate;
use crate::policy::Policy;
use crate::taint::TaintedString;

/// v1 named boundary around a software module; delegates to a
/// [`Gate::internal`].
///
/// # Examples
///
/// ```
/// #![allow(deprecated)]
/// use resin_core::prelude::*;
/// use resin_core::boundary::InternalBoundary;
/// use std::sync::Arc;
///
/// // The auth module never lets clear-text passwords out.
/// let auth = InternalBoundary::new("auth").deny::<PasswordPolicy>();
///
/// let mut pw = TaintedString::from("s3cret");
/// pw.add_policy(Arc::new(PasswordPolicy::new("u@x")));
/// assert!(auth.export(pw).is_err());
///
/// // Its hash function is a declassification point.
/// let hasher = InternalBoundary::new("auth.hash").strip::<PasswordPolicy>();
/// let mut pw = TaintedString::from("s3cret");
/// pw.add_policy(Arc::new(PasswordPolicy::new("u@x")));
/// let digest = hasher.export(pw).unwrap();
/// assert!(!digest.has_policy::<PasswordPolicy>());
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Gate::internal(name)` with `deny`/`strip` rules"
)]
pub struct InternalBoundary {
    gate: Gate,
}

#[allow(deprecated)]
impl InternalBoundary {
    /// Creates a boundary named for its module.
    pub fn new(name: &'static str) -> Self {
        InternalBoundary {
            gate: Gate::internal(name),
        }
    }

    /// The boundary's context (available to custom checks).
    pub fn context_mut(&mut self) -> &mut Context {
        self.gate.context_mut()
    }

    /// Data carrying a `T` policy may not cross outward.
    pub fn deny<T: Policy>(mut self) -> Self {
        self.gate = self.gate.deny::<T>();
        self
    }

    /// Crossing outward removes all `T` policies (a declassification
    /// point, like the encryption-function filter of §3.2).
    pub fn strip<T: Policy>(mut self) -> Self {
        self.gate = self.gate.strip::<T>();
        self
    }

    /// Exports `data` across the boundary, applying the rules in order.
    pub fn export(&self, data: TaintedString) -> Result<TaintedString> {
        self.gate.export(data)
    }

    /// The underlying gate.
    pub fn as_gate(&self) -> &Gate {
        &self.gate
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for InternalBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InternalBoundary")
            .field("name", &self.gate.name())
            .field("rules", &self.gate.rule_count())
            .finish()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    //! The seed boundary tests, running against the shim to prove the
    //! delegation is faithful.

    use super::*;
    use crate::policies::{PasswordPolicy, UntrustedData};
    use std::sync::Arc;

    fn pw() -> TaintedString {
        TaintedString::with_policy("s3cret", Arc::new(PasswordPolicy::new("u@x")))
    }

    #[test]
    fn deny_blocks_labeled_data() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        let err = b.export(pw()).unwrap_err();
        assert!(err.is_violation());
        // Unlabeled data crosses freely.
        assert!(b.export(TaintedString::from("public")).is_ok());
    }

    #[test]
    fn strip_declassifies() {
        let b = InternalBoundary::new("auth.hash").strip::<PasswordPolicy>();
        let out = b.export(pw()).unwrap();
        assert!(!out.has_policy::<PasswordPolicy>());
        assert_eq!(out.as_str(), "s3cret");
    }

    #[test]
    fn rules_compose_and_order_matters() {
        // Deny untrusted, strip passwords: both rules apply independently.
        let b = InternalBoundary::new("m")
            .deny::<UntrustedData>()
            .strip::<PasswordPolicy>();
        assert!(b.export(pw()).unwrap().policies().is_empty());
        let mixed = TaintedString::with_policy("x", Arc::new(UntrustedData::new()));
        assert!(b.export(mixed).is_err());
    }

    #[test]
    fn partial_taint_still_denied() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        let mut msg = TaintedString::from("prefix ");
        msg.push_tainted(&pw());
        assert!(b.export(msg).is_err(), "any labeled byte is enough");
    }

    #[test]
    fn debug_format() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        assert!(format!("{b:?}").contains("auth"));
    }

    #[test]
    fn shim_exposes_its_gate() {
        let b = InternalBoundary::new("auth").deny::<PasswordPolicy>();
        assert_eq!(b.as_gate().name(), Some("auth"));
        assert_eq!(b.as_gate().rule_count(), 1);
    }
}
