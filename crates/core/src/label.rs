//! Interned policy labels: O(1) handles for policy sets.
//!
//! The paper stores "a pointer, that points to a set of policy objects" per
//! datum (§4). Representing that literally as a shared vector makes every
//! `union`/`contains` a structural scan — O(n²) policy comparisons on the
//! merge- and concat-heavy hot paths. This module interns instead:
//!
//! * a [`PolicyInterner`] assigns each structurally-distinct policy object a
//!   [`PolicyId`] (keyed on `name()` + `serialize_fields()`, sound because
//!   policies are immutable once attached);
//! * a [`LabelTable`] interns each canonical, sorted set of `PolicyId`s as a
//!   [`Label`] handle, with [`Label::EMPTY`] reserved for the empty set and
//!   a memoized pairwise-union cache.
//!
//! After interning, set **union**, **equality**, and **dedup** are integer
//! table hits — no policy is compared structurally ever again. `Label` is
//! `Copy`, hashable, and cheap to ship across threads, which is what the
//! sharding/caching work on the ROADMAP needs.
//!
//! # Examples
//!
//! ```
//! use resin_core::prelude::*;
//! use std::sync::Arc;
//!
//! let untrusted: PolicyRef = Arc::new(UntrustedData::new());
//! let sanitized: PolicyRef = Arc::new(SqlSanitized::new());
//!
//! let a = Label::of(&untrusted);
//! let b = Label::of(&sanitized);
//! let ab = a.union(b);            // memoized: an integer table hit
//! assert_eq!(ab, b.union(a));     // canonical: equality is `u32 ==`
//! assert_eq!(ab.union(a), ab);    // idempotent
//! assert!(ab.has::<UntrustedData>() && ab.has::<SqlSanitized>());
//!
//! // Structurally equal policies intern to the same id, so dedup is free.
//! let again: PolicyRef = Arc::new(UntrustedData::new());
//! assert_eq!(a, Label::of(&again));
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::context::Context;
use crate::error::PolicyViolation;
use crate::policy::{Policy, PolicyRef};

/// The interned identity of one structurally-distinct policy object.
///
/// Two policy objects receive the same `PolicyId` exactly when they agree on
/// `name()` and `serialize_fields()` — the same key the persistent-policy
/// serializer uses (§3.4.1), so an id round-trips through storage.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let a = PolicyId::intern(&(Arc::new(PasswordPolicy::new("u@x")) as PolicyRef));
/// let b = PolicyId::intern(&(Arc::new(PasswordPolicy::new("u@x")) as PolicyRef));
/// assert_eq!(a, b, "structural duplicates share an id");
/// assert_eq!(a.resolve().name(), "PasswordPolicy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PolicyId(u32);

impl PolicyId {
    /// Interns `policy`, returning its stable id.
    pub fn intern(policy: &PolicyRef) -> PolicyId {
        LabelTable::global().intern_policy(policy)
    }

    /// The canonical policy object for this id.
    pub fn resolve(self) -> PolicyRef {
        LabelTable::global().resolve_policy(self)
    }

    /// The raw table index (stable for the life of the process).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An O(1) handle for an interned policy set.
///
/// `Label` replaces the per-datum `Arc<Vec<PolicyRef>>` of earlier
/// revisions: the set itself lives once in the global [`LabelTable`], and
/// data carries this 4-byte `Copy` handle. Union, equality, and dedup are
/// table hits; only operations that genuinely need the policy *objects*
/// (running `export_check`, downcasting) resolve through the table.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let l = Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef));
/// assert!(!l.is_empty());
/// assert_eq!(l.len(), 1);
/// assert!(l.has::<UntrustedData>());
/// assert_eq!(l.union(Label::EMPTY), l);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

impl Label {
    /// The empty policy set. The zero handle, so untainted data costs one
    /// integer compare — the moral equivalent of the paper's null pointer.
    pub const EMPTY: Label = Label(0);

    /// The label for a single policy (interning it if new).
    pub fn of(policy: &PolicyRef) -> Label {
        LabelTable::global().label_of(policy)
    }

    /// The label for one already-interned policy id.
    pub fn from_id(id: PolicyId) -> Label {
        LabelTable::global().intern_ids(vec![id])
    }

    /// Builds a label from policies, deduplicating structurally.
    pub fn from_policies<'a, I>(policies: I) -> Label
    where
        I: IntoIterator<Item = &'a PolicyRef>,
    {
        let table = LabelTable::global();
        let mut ids: Vec<PolicyId> = policies
            .into_iter()
            .map(|p| table.intern_policy(p))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        table.intern_ids(ids)
    }

    /// True when no policy is attached.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of policies in the set.
    pub fn len(self) -> usize {
        if self.is_empty() {
            0
        } else {
            LabelTable::global().entry(self).ids.len()
        }
    }

    /// The sorted policy ids of the set.
    pub fn ids(self) -> Arc<[PolicyId]> {
        LabelTable::global().entry(self).ids
    }

    /// The canonical policy objects of the set (shared, not cloned).
    pub fn policies(self) -> Arc<Vec<PolicyRef>> {
        LabelTable::global().entry(self).refs
    }

    /// Set union — an O(1) memoized table hit after the first computation.
    ///
    /// ```
    /// use resin_core::Label;
    /// assert_eq!(Label::EMPTY.union(Label::EMPTY), Label::EMPTY);
    /// ```
    pub fn union(self, other: Label) -> Label {
        if self == other || other.is_empty() {
            return self;
        }
        if self.is_empty() {
            return other;
        }
        LabelTable::global().union(self, other)
    }

    /// True if the set contains the policy with `id`.
    pub fn contains(self, id: PolicyId) -> bool {
        !self.is_empty() && self.ids().binary_search(&id).is_ok()
    }

    /// True if the set contains a policy structurally equal to `policy`.
    pub fn contains_policy(self, policy: &PolicyRef) -> bool {
        self.contains(PolicyId::intern(policy))
    }

    /// True if any policy in the set has concrete type `T`.
    pub fn has<T: Policy>(self) -> bool {
        !self.is_empty()
            && self
                .policies()
                .iter()
                .any(|p| p.as_any().downcast_ref::<T>().is_some())
    }

    /// True if any policy reports `name()` equal to `name`.
    pub fn has_named(self, name: &str) -> bool {
        !self.is_empty() && self.policies().iter().any(|p| p.name() == name)
    }

    /// The label with `id` added.
    pub fn insert(self, id: PolicyId) -> Label {
        self.union(Label::from_id(id))
    }

    /// The label with `id` removed (no-op when absent).
    pub fn remove(self, id: PolicyId) -> Label {
        if !self.contains(id) {
            return self;
        }
        let ids: Vec<PolicyId> = self.ids().iter().copied().filter(|&i| i != id).collect();
        LabelTable::global().intern_ids(ids)
    }

    /// The label keeping only policies satisfying `pred`.
    pub fn retain<F>(self, pred: F) -> Label
    where
        F: Fn(&PolicyRef) -> bool,
    {
        if self.is_empty() {
            return self;
        }
        let entry = LabelTable::global().entry(self);
        let ids: Vec<PolicyId> = entry
            .ids
            .iter()
            .zip(entry.refs.iter())
            .filter(|(_, p)| pred(p))
            .map(|(&id, _)| id)
            .collect();
        if ids.len() == entry.ids.len() {
            self
        } else {
            LabelTable::global().intern_ids(ids)
        }
    }

    /// The label with every policy of concrete type `T` removed.
    pub fn without_type<T: Policy>(self) -> Label {
        self.retain(|p| p.as_any().downcast_ref::<T>().is_none())
    }

    /// The raw table index of this label.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Default for Label {
    fn default() -> Self {
        Label::EMPTY
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Label[]");
        }
        let refs = self.policies();
        let names: Vec<&str> = refs.iter().map(|p| p.name()).collect();
        write!(f, "Label{names:?}")
    }
}

// ---- the interner ----

/// Key under which a policy is interned: class name + serialized fields
/// (the same identity the persistent-policy format uses, §3.4.1) + the
/// policy's [`intern_discriminator`](Policy::intern_discriminator), which
/// keeps policies whose behaviour lives outside their fields (script
/// policies carrying interpreted code) from conflating.
#[derive(PartialEq, Eq, Hash)]
struct PolicyKey {
    name: String,
    fields: Vec<(String, String)>,
    discriminator: u64,
}

impl PolicyKey {
    fn of(policy: &PolicyRef) -> PolicyKey {
        PolicyKey {
            name: policy.name().to_string(),
            fields: policy.serialize_fields(),
            discriminator: policy.intern_discriminator(),
        }
    }
}

/// Assigns each structurally-distinct policy object a stable [`PolicyId`].
///
/// Interning is keyed on `name()` + `serialize_fields()` +
/// [`intern_discriminator`](Policy::intern_discriminator). This is sound
/// because policies are immutable once attached and their behaviour is a
/// pure function of that key (the contract [`Policy::policy_eq`] already
/// relies on for name + fields; policies carrying code override the
/// discriminator). The first object interned under a key becomes the
/// canonical [`PolicyRef`] every resolution returns.
///
/// The interner's growth is bounded by the **label lifecycle** (epoch/
/// pin/sweep, see [`LabelTable::sweep`]): ids are still never recycled
/// while any epoch pinned before their release is live, so a `PolicyId`
/// held under a pin (or a serialized reference re-interned on read) can
/// never dangle. A swept slot turns into a fail-closed tombstone until
/// it is provably safe to reuse, so even a contract-violating stale
/// handle denies export instead of laundering.
#[derive(Default)]
pub struct PolicyInterner {
    policies: Vec<PolicyRef>,
    by_key: HashMap<PolicyKey, u32>,
    /// Epoch at which each slot was (last) interned; parallel to
    /// `policies`.
    epochs: Vec<u64>,
    /// Swept slots awaiting reuse, with the epoch they were freed at.
    free: Vec<(u32, u64)>,
}

impl PolicyInterner {
    /// Interns `policy`, returning its id (existing id for duplicates).
    /// `epoch` stamps a fresh slot; `reuse_floor` is the oldest pinned
    /// epoch (freed slots are reused only when freed strictly before it).
    fn intern(
        &mut self,
        key: PolicyKey,
        policy: &PolicyRef,
        epoch: u64,
        reuse_floor: Option<u64>,
    ) -> PolicyId {
        if let Some(&id) = self.by_key.get(&key) {
            return PolicyId(id);
        }
        let id = match self.pop_free(reuse_floor) {
            Some(slot) => {
                self.policies[slot as usize] = policy.clone();
                self.epochs[slot as usize] = epoch;
                slot
            }
            None => {
                let id = u32::try_from(self.policies.len()).expect("policy interner overflow");
                self.policies.push(policy.clone());
                self.epochs.push(epoch);
                id
            }
        };
        self.by_key.insert(key, id);
        PolicyId(id)
    }

    /// A freed slot safe to reuse: no live pin predates its release.
    fn pop_free(&mut self, reuse_floor: Option<u64>) -> Option<u32> {
        let (i, _) = self
            .free
            .iter()
            .enumerate()
            .find(|(_, &(_, freed))| reuse_floor.is_none_or(|floor| freed < floor))?;
        Some(self.free.swap_remove(i).0)
    }

    /// Number of distinct live policies interned.
    pub fn len(&self) -> usize {
        self.policies.len() - self.free.len()
    }

    /// True when nothing live is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time interner counters.
    pub fn stats(&self) -> PolicyInternerStats {
        PolicyInternerStats {
            live: self.len(),
            slots: self.policies.len(),
            free: self.free.len(),
        }
    }
}

/// Counters for [`PolicyInterner::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyInternerStats {
    /// Live (non-tombstone) policies.
    pub live: usize,
    /// Total slots ever allocated (live + free).
    pub slots: usize,
    /// Swept slots awaiting reuse.
    pub free: usize,
}

// ---- the label table ----

#[derive(Clone)]
struct LabelEntry {
    /// Sorted, deduplicated member ids (canonical form).
    ids: Arc<[PolicyId]>,
    /// Resolved canonical policy objects, index-aligned with `ids`.
    refs: Arc<Vec<PolicyRef>>,
}

#[derive(Default)]
struct TableInner {
    interner: PolicyInterner,
    /// `sets[0]` is the empty set; labels index this vector.
    sets: Vec<LabelEntry>,
    by_ids: HashMap<Arc<[PolicyId]>, u32>,
    union_cache: HashMap<(u32, u32), u32>,
    /// Epoch at which each set slot was (last) interned; parallel to
    /// `sets`.
    set_epochs: Vec<u64>,
    /// Swept set slots awaiting reuse, with the epoch they were freed at.
    free_sets: Vec<(u32, u64)>,
}

impl TableInner {
    /// A freed label slot safe to reuse: no live pin predates its
    /// release.
    fn pop_free_set(&mut self, reuse_floor: Option<u64>) -> Option<u32> {
        let (i, _) = self
            .free_sets
            .iter()
            .enumerate()
            .find(|(_, &(_, freed))| reuse_floor.is_none_or(|floor| freed < floor))?;
        Some(self.free_sets.swap_remove(i).0)
    }
}

/// The fail-closed tombstone installed in a swept slot: any export of
/// data still (incorrectly) carrying a swept label denies instead of
/// laundering. Reaching this policy means the sweep-roots contract was
/// violated — the denial is the tripwire, not normal operation.
#[derive(Debug)]
struct SweptLabel;

impl Policy for SweptLabel {
    fn name(&self) -> &str {
        "SweptLabel"
    }

    fn export_check(&self, _context: &Context) -> Result<(), PolicyViolation> {
        Err(PolicyViolation::new(
            "SweptLabel",
            "data carries a label swept by lifecycle GC; export denied (stale handle)",
        ))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn tombstone_entry() -> LabelEntry {
    LabelEntry {
        ids: Arc::from(Vec::<PolicyId>::new()),
        refs: Arc::new(vec![Arc::new(SweptLabel) as PolicyRef]),
    }
}

/// What one [`LabelTable::sweep`] pass reclaimed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Label slots tombstoned by this pass.
    pub labels_swept: usize,
    /// Policy slots tombstoned by this pass.
    pub policies_swept: usize,
    /// Live label slots after the pass (excluding the empty label).
    pub labels_live: usize,
    /// Live policy slots after the pass.
    pub policies_live: usize,
}

/// Point-in-time counters for [`LabelTable::stats`] (the observability
/// satellite): entry counts, lifecycle epoch, and an estimate of bytes
/// retained by the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelTableStats {
    /// Live label entries (excluding the empty label and tombstones).
    pub labels: usize,
    /// Live interned policies.
    pub policies: usize,
    /// Tombstoned label slots awaiting reuse.
    pub free_labels: usize,
    /// Tombstoned policy slots awaiting reuse.
    pub free_policies: usize,
    /// Memoized pairwise unions.
    pub union_cache: usize,
    /// Current lifecycle epoch (advances on every sweep).
    pub epoch: u64,
    /// Epoch pins currently held (transactions/requests in flight).
    pub active_pins: usize,
    /// Rough estimate of heap bytes retained by sets + interner
    /// bookkeeping (not the policy objects themselves).
    pub bytes_retained: usize,
}

/// An RAII epoch pin: while alive, the sweep treats every label or
/// policy interned at or after the pinned epoch as reachable, and no
/// slot freed at or after it is reused. Take one at transaction or
/// request start so in-flight handles survive a concurrent sweep.
pub struct EpochPin<'a> {
    table: &'a LabelTable,
    epoch: u64,
}

impl fmt::Debug for EpochPin<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        let mut pins = crate::sync::mlock(&self.table.pins);
        if let Some(count) = pins.get_mut(&self.epoch) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.epoch);
            }
        }
    }
}

/// The process-wide intern table for policies and policy sets.
///
/// All [`Label`] and [`PolicyId`] operations go through the global table
/// ([`LabelTable::global`]); the handles themselves stay plain integers.
/// Reads (resolution, union-cache hits) take a shared lock; first-time
/// interning takes the exclusive lock briefly.
///
/// # Label lifecycle
///
/// The table no longer grows without bound: it carries an **epoch**
/// counter, [`EpochPin`]s taken at transaction/request start, and a
/// [`sweep`](LabelTable::sweep) that tombstones every label not in the
/// caller-supplied root set, not pinned, and not recently interned.
/// Durable data is safe by construction — policies persist *serialized*
/// with their data and re-intern on read — so after a checkpoint the
/// roots are just the labels still held by live in-memory state. Swept
/// slots deny export (fail closed) until every pin that could hold a
/// stale handle has dropped, then become reusable.
pub struct LabelTable {
    inner: RwLock<TableInner>,
    /// Lifecycle epoch; advances on every sweep.
    epoch: AtomicU64,
    /// Epoch → number of live pins taken at that epoch.
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl LabelTable {
    /// A fresh, empty table (slot 0 = the empty label). Product code
    /// uses [`global`](LabelTable::global); standalone tables exist so
    /// lifecycle tests can churn and sweep without touching process-wide
    /// state.
    pub fn new() -> LabelTable {
        let empty = LabelEntry {
            ids: Arc::from(Vec::<PolicyId>::new()),
            refs: Arc::new(Vec::new()),
        };
        let inner = TableInner {
            sets: vec![empty], // index 0 = Label::EMPTY
            set_epochs: vec![0],
            ..TableInner::default()
        };
        LabelTable {
            inner: RwLock::new(inner),
            epoch: AtomicU64::new(1),
            pins: Mutex::new(BTreeMap::new()),
        }
    }

    /// The global table.
    pub fn global() -> &'static LabelTable {
        static TABLE: OnceLock<LabelTable> = OnceLock::new();
        TABLE.get_or_init(LabelTable::new)
    }

    // The table is append-only and every write-locked section leaves it
    // consistent at each possible panic point (a pushed policy or set whose
    // index entry was never written is merely unreachable — no handed-out
    // handle can dangle), so a poisoned lock is recoverable; see
    // [`crate::sync`].
    fn read(&self) -> std::sync::RwLockReadGuard<'_, TableInner> {
        crate::sync::rlock(&self.inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, TableInner> {
        crate::sync::wlock(&self.inner)
    }

    /// The current lifecycle epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The oldest epoch with a live pin, if any.
    fn oldest_pin(&self) -> Option<u64> {
        crate::sync::mlock(&self.pins).keys().next().copied()
    }

    /// Pins the current epoch for the pin's lifetime. Take one at
    /// transaction/request start: labels and policies interned while the
    /// pin is live (or already live when it was taken, transitively via
    /// the reuse floor) survive concurrent sweeps.
    pub fn pin(&self) -> EpochPin<'_> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        *crate::sync::mlock(&self.pins).entry(epoch).or_insert(0) += 1;
        EpochPin { table: self, epoch }
    }

    /// Interns one policy, returning its [`PolicyId`].
    pub fn intern_policy(&self, policy: &PolicyRef) -> PolicyId {
        // Compute the key outside the lock (serialize_fields may allocate).
        let key = PolicyKey::of(policy);
        if let Some(&id) = self.read().interner.by_key.get(&key) {
            return PolicyId(id);
        }
        let epoch = self.current_epoch();
        let floor = self.oldest_pin();
        self.write().interner.intern(key, policy, epoch, floor)
    }

    /// The canonical policy object for `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this table.
    pub fn resolve_policy(&self, id: PolicyId) -> PolicyRef {
        self.read().interner.policies[id.0 as usize].clone()
    }

    /// The label for a single policy.
    pub fn label_of(&self, policy: &PolicyRef) -> Label {
        let id = self.intern_policy(policy);
        self.intern_ids(vec![id])
    }

    /// Interns a set of ids (sorted and deduplicated here) as a label.
    pub fn intern_ids(&self, mut ids: Vec<PolicyId>) -> Label {
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            return Label::EMPTY;
        }
        let ids: Arc<[PolicyId]> = ids.into();
        if let Some(&idx) = self.read().by_ids.get(&ids) {
            return Label(idx);
        }
        let refs: Vec<PolicyRef> = {
            let inner = self.read();
            ids.iter()
                .map(|id| inner.interner.policies[id.0 as usize].clone())
                .collect()
        };
        let epoch = self.current_epoch();
        let floor = self.oldest_pin();
        let mut inner = self.write();
        if let Some(&idx) = inner.by_ids.get(&ids) {
            return Label(idx); // raced: another thread interned it first
        }
        let entry = LabelEntry {
            ids: ids.clone(),
            refs: Arc::new(refs),
        };
        let idx = match inner.pop_free_set(floor) {
            Some(slot) => {
                inner.sets[slot as usize] = entry;
                inner.set_epochs[slot as usize] = epoch;
                slot
            }
            None => {
                let idx = u32::try_from(inner.sets.len()).expect("label table overflow");
                inner.sets.push(entry);
                inner.set_epochs.push(epoch);
                idx
            }
        };
        inner.by_ids.insert(ids, idx);
        Label(idx)
    }

    fn entry(&self, label: Label) -> LabelEntry {
        self.read().sets[label.0 as usize].clone()
    }

    fn union(&self, a: Label, b: Label) -> Label {
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&idx) = self.read().union_cache.get(&key) {
            return Label(idx);
        }
        // Merge the two sorted id lists outside the write lock.
        let (ea, eb) = (self.entry(a), self.entry(b));
        let mut merged = Vec::with_capacity(ea.ids.len() + eb.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < ea.ids.len() && j < eb.ids.len() {
            match ea.ids[i].cmp(&eb.ids[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(ea.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(eb.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(ea.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&ea.ids[i..]);
        merged.extend_from_slice(&eb.ids[j..]);
        let result = self.intern_ids(merged);
        self.write().union_cache.insert(key, result.0);
        result
    }

    /// Number of distinct live policies interned.
    pub fn policy_count(&self) -> usize {
        self.read().interner.len()
    }

    /// Number of label slots (including the empty label and tombstones).
    pub fn label_count(&self) -> usize {
        self.read().sets.len()
    }

    /// Number of memoized pairwise unions.
    pub fn union_cache_len(&self) -> usize {
        self.read().union_cache.len()
    }

    /// Sweeps every label not rooted, not pinned, and not freshly
    /// interned, tombstoning its slot for eventual reuse; policies
    /// referenced by no surviving label are swept the same way.
    ///
    /// **Roots contract.** `roots` must contain every label still
    /// reachable from long-lived in-memory state (sessions, caches,
    /// app-held tainted values). Durable state needs no roots: policies
    /// persist serialized with their data and re-intern on read. Call
    /// after a checkpoint, when durable state is self-contained, so the
    /// root set is exactly the in-memory survivors. Handles interned
    /// while an [`EpochPin`] is live (request/transaction scratch) are
    /// kept via the epoch check, and no swept slot is reused while a pin
    /// predating its release remains — so a contract *violation* (a
    /// stale handle outside roots and pins) resolves to the fail-closed
    /// `SweptLabel` tombstone, denying export instead of laundering
    /// another datum's policies.
    pub fn sweep<I: IntoIterator<Item = Label>>(&self, roots: I) -> SweepReport {
        // Advance the epoch first: everything interned from here on is
        // young and untouchable by this pass.
        let sweep_epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let safe_before = self.oldest_pin().unwrap_or(sweep_epoch).min(sweep_epoch);
        let root_set: HashSet<u32> = roots.into_iter().map(|l| l.0).collect();
        let mut inner = self.write();

        let already_free: HashSet<u32> = inner.free_sets.iter().map(|&(i, _)| i).collect();
        let mut swept_labels: HashSet<u32> = HashSet::new();
        for idx in 1..inner.sets.len() as u32 {
            if root_set.contains(&idx)
                || already_free.contains(&idx)
                || inner.set_epochs[idx as usize] >= safe_before
            {
                continue;
            }
            swept_labels.insert(idx);
        }
        // Policies referenced by surviving labels form the policy roots.
        let mut live_policies: HashSet<u32> = HashSet::new();
        for idx in 1..inner.sets.len() as u32 {
            if swept_labels.contains(&idx) || already_free.contains(&idx) {
                continue;
            }
            for id in inner.sets[idx as usize].ids.iter() {
                live_policies.insert(id.0);
            }
        }
        for &idx in &swept_labels {
            inner.sets[idx as usize] = tombstone_entry();
            inner.set_epochs[idx as usize] = sweep_epoch;
            inner.free_sets.push((idx, sweep_epoch));
        }
        inner.by_ids.retain(|_, idx| !swept_labels.contains(idx));
        // Memoized unions naming a swept operand or result are stale.
        // (Entries naming *previously* freed slots were purged by the
        // pass that freed them; reused slots only re-enter the cache
        // after reuse, so this pass's swept set is the whole stale set.)
        inner.union_cache.retain(|&(a, b), r| {
            !(swept_labels.contains(&a) || swept_labels.contains(&b) || swept_labels.contains(r))
        });

        let policy_free: HashSet<u32> = inner.interner.free.iter().map(|&(i, _)| i).collect();
        let mut swept_policies: HashSet<u32> = HashSet::new();
        for idx in 0..inner.interner.policies.len() as u32 {
            if live_policies.contains(&idx)
                || policy_free.contains(&idx)
                || inner.interner.epochs[idx as usize] >= safe_before
            {
                continue;
            }
            swept_policies.insert(idx);
        }
        for &idx in &swept_policies {
            inner.interner.policies[idx as usize] = Arc::new(SweptLabel) as PolicyRef;
            inner.interner.epochs[idx as usize] = sweep_epoch;
            inner.interner.free.push((idx, sweep_epoch));
        }
        inner
            .interner
            .by_key
            .retain(|_, id| !swept_policies.contains(id));

        SweepReport {
            labels_swept: swept_labels.len(),
            policies_swept: swept_policies.len(),
            labels_live: inner.sets.len() - 1 - inner.free_sets.len(),
            policies_live: inner.interner.len(),
        }
    }

    /// Point-in-time lifecycle and size counters.
    pub fn stats(&self) -> LabelTableStats {
        let inner = self.read();
        let sets_bytes: usize = inner.sets.iter().map(|e| e.ids.len() * 12 + 64).sum();
        let interner_bytes = inner.interner.policies.len() * 48;
        let cache_bytes = inner.union_cache.len() * 24;
        LabelTableStats {
            labels: inner.sets.len() - 1 - inner.free_sets.len(),
            policies: inner.interner.len(),
            free_labels: inner.free_sets.len(),
            free_policies: inner.interner.free.len(),
            union_cache: inner.union_cache.len(),
            epoch: self.current_epoch(),
            active_pins: crate::sync::mlock(&self.pins).values().sum(),
            bytes_retained: sets_bytes + interner_bytes + cache_bytes,
        }
    }

    /// Point-in-time counters for the policy interner alone.
    pub fn policy_interner_stats(&self) -> PolicyInternerStats {
        self.read().interner.stats()
    }
}

impl Default for LabelTable {
    fn default() -> Self {
        LabelTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{HtmlSanitized, PasswordPolicy, SqlSanitized, UntrustedData};

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    fn untrusted() -> PolicyRef {
        Arc::new(UntrustedData::new())
    }

    #[test]
    fn empty_label_is_zero() {
        assert!(Label::EMPTY.is_empty());
        assert_eq!(Label::EMPTY.len(), 0);
        assert_eq!(Label::EMPTY.index(), 0);
        assert_eq!(Label::default(), Label::EMPTY);
        assert!(!Label::EMPTY.has::<UntrustedData>());
        assert!(!Label::EMPTY.has_named("UntrustedData"));
    }

    #[test]
    fn structural_duplicates_share_ids_and_labels() {
        let a = PolicyId::intern(&pw("a@x"));
        let b = PolicyId::intern(&pw("a@x"));
        assert_eq!(a, b);
        let c = PolicyId::intern(&pw("b@x"));
        assert_ne!(a, c);
        assert_eq!(Label::of(&pw("a@x")), Label::of(&pw("a@x")));
        assert_ne!(Label::of(&pw("a@x")), Label::of(&pw("b@x")));
    }

    #[test]
    fn union_laws() {
        let a = Label::of(&pw("a@x"));
        let b = Label::of(&pw("b@x"));
        let c = Label::of(&untrusted());
        // Idempotent / identity.
        assert_eq!(a.union(a), a);
        assert_eq!(a.union(Label::EMPTY), a);
        assert_eq!(Label::EMPTY.union(a), a);
        // Commutative / associative — equality is handle equality.
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        assert_eq!(a.union(b).len(), 2);
    }

    #[test]
    fn union_is_memoized() {
        let a = Label::of(&pw("memo-a@x"));
        let b = Label::of(&pw("memo-b@x"));
        let first = a.union(b);
        let before = LabelTable::global().label_count();
        let second = a.union(b);
        assert_eq!(first, second);
        assert_eq!(
            LabelTable::global().label_count(),
            before,
            "second union allocates nothing"
        );
    }

    #[test]
    fn membership_and_type_queries() {
        let u = untrusted();
        let l = Label::of(&u).union(Label::of(&(Arc::new(SqlSanitized::new()) as PolicyRef)));
        assert!(l.contains(PolicyId::intern(&u)));
        assert!(l.contains_policy(&untrusted()), "structural membership");
        assert!(l.has::<UntrustedData>());
        assert!(l.has::<SqlSanitized>());
        assert!(!l.has::<HtmlSanitized>());
        assert!(l.has_named("UntrustedData"));
        assert!(!l.has_named("Nope"));
    }

    #[test]
    fn insert_remove_retain() {
        let id_u = PolicyId::intern(&untrusted());
        let id_p = PolicyId::intern(&pw("r@x"));
        let l = Label::EMPTY.insert(id_u).insert(id_p);
        assert_eq!(l.len(), 2);
        let no_u = l.remove(id_u);
        assert!(!no_u.has::<UntrustedData>());
        assert!(no_u.has::<PasswordPolicy>());
        assert_eq!(l.remove(PolicyId::intern(&pw("absent@x"))), l);
        assert_eq!(l.without_type::<UntrustedData>(), no_u);
        assert_eq!(l.retain(|_| true), l, "full retain returns same handle");
        assert_eq!(l.retain(|_| false), Label::EMPTY);
    }

    #[test]
    fn resolution_returns_canonical_object() {
        let id = PolicyId::intern(&pw("canon@x"));
        let p = id.resolve();
        assert_eq!(p.name(), "PasswordPolicy");
        let l = Label::from_id(id);
        assert_eq!(l.policies().len(), 1);
        assert_eq!(l.ids().len(), 1);
        assert_eq!(l.ids()[0], id);
    }

    #[test]
    fn from_policies_dedups() {
        let l = Label::from_policies([&untrusted(), &untrusted(), &pw("d@x")]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn debug_renders_names() {
        let l = Label::of(&untrusted());
        assert!(format!("{l:?}").contains("UntrustedData"));
        assert_eq!(format!("{:?}", Label::EMPTY), "Label[]");
    }

    #[test]
    fn discriminator_keeps_behaviourally_distinct_policies_apart() {
        // Two policies with identical name + fields but different
        // behaviour (modeled by the discriminator, as script policies
        // carrying different class bodies do) must not conflate.
        #[derive(Debug)]
        struct CodeCarrying(u64);
        impl crate::policy::Policy for CodeCarrying {
            fn name(&self) -> &str {
                "DiscriminatorTestPolicy"
            }
            fn intern_discriminator(&self) -> u64 {
                self.0
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let a: PolicyRef = Arc::new(CodeCarrying(1));
        let b: PolicyRef = Arc::new(CodeCarrying(2));
        let same_as_a: PolicyRef = Arc::new(CodeCarrying(1));
        assert_ne!(PolicyId::intern(&a), PolicyId::intern(&b));
        assert_eq!(PolicyId::intern(&a), PolicyId::intern(&same_as_a));
        // Resolution returns the object with the matching behaviour.
        let got = PolicyId::intern(&b).resolve();
        assert_eq!(
            got.as_any()
                .downcast_ref::<CodeCarrying>()
                .expect("same type")
                .0,
            2
        );
    }

    #[test]
    fn poisoned_lock_recovers() {
        // A worker thread that panics while holding the write lock used to
        // poison the global table, turning every later intern/resolve in
        // the whole process into a panic. The table is append-only, so the
        // lock state is always consistent — recover and keep going.
        let table = LabelTable::global();
        let _ = std::thread::spawn(|| {
            let _guard = LabelTable::global().inner.write();
            panic!("worker dies while holding the label-table lock");
        })
        .join();
        assert!(table.inner.is_poisoned(), "the panic poisoned the lock");
        // Interning from another thread must still work end-to-end:
        // policy interner, label sets, and the union cache.
        let l = std::thread::spawn(|| {
            let a = Label::of(&(Arc::new(UntrustedData::from_source("post-poison")) as PolicyRef));
            let b = Label::of(&pw("post-poison@x"));
            a.union(b)
        })
        .join()
        .expect("interning after poison must not panic");
        assert_eq!(l.len(), 2);
        assert!(l.has::<UntrustedData>());
        assert!(l.has::<PasswordPolicy>());
    }

    // Lifecycle tests run on standalone tables: sweeping the global
    // table would race other tests' un-pinned, un-rooted handles.

    #[test]
    fn sweep_tombstones_unrooted_labels_fail_closed() {
        let t = LabelTable::new();
        let l = t.label_of(&pw("gc-unrooted@x"));
        let before = t.stats();
        assert_eq!(before.labels, 1);
        assert_eq!(before.policies, 1);
        let report = t.sweep([]);
        assert_eq!(report.labels_swept, 1);
        assert_eq!(report.policies_swept, 1);
        assert_eq!(report.labels_live, 0);
        // The stale handle now resolves to the fail-closed tombstone.
        let entry = t.entry(l);
        assert!(entry.ids.is_empty());
        let ctx = Context::new(crate::gate::GateKind::Http);
        let err = entry.refs[0].export_check(&ctx).unwrap_err();
        assert_eq!(err.policy, "SweptLabel");
        let stats = t.stats();
        assert_eq!(stats.labels, 0);
        assert_eq!(stats.free_labels, 1);
        assert_eq!(stats.epoch, 2);
    }

    #[test]
    fn rooted_labels_survive_sweep_and_slots_are_reused() {
        let t = LabelTable::new();
        let keep = t.label_of(&pw("gc-keep@x"));
        let drop_me = t.label_of(&pw("gc-drop@x"));
        let report = t.sweep([keep]);
        assert_eq!(report.labels_swept, 1);
        assert_eq!(report.labels_live, 1);
        // The root still interns to the same handle, object intact.
        assert_eq!(t.label_of(&pw("gc-keep@x")), keep);
        assert_eq!(t.entry(keep).refs[0].name(), "PasswordPolicy");
        // With no pins, the freed slot is reused by the next intern.
        let fresh = t.label_of(&pw("gc-fresh@x"));
        assert_eq!(fresh.0, drop_me.0, "freed slot reused");
        assert_eq!(t.stats().free_labels, 0);
    }

    #[test]
    fn pinned_epochs_are_not_swept_and_block_slot_reuse() {
        let t = LabelTable::new();
        let pin = t.pin();
        let l = t.label_of(&pw("gc-pinned@x"));
        let report = t.sweep([]);
        assert_eq!(report.labels_swept, 0, "pinned epoch survives");
        assert_eq!(t.label_of(&pw("gc-pinned@x")), l);
        assert_eq!(t.stats().active_pins, 1);
        drop(pin);
        let report = t.sweep([]);
        assert_eq!(report.labels_swept, 1);
        // A pin taken before a future free also blocks reuse: free the
        // slot while a fresh pin predates nothing — simulate by pinning
        // *before* the sweep that frees.
        let pin2 = t.pin();
        let l2 = t.label_of(&pw("gc-pinned2@x"));
        drop(pin2);
        let pin3 = t.pin(); // taken before the sweep below frees l2's slot
        let _ = l2;
        t.sweep([]);
        let freed = t.stats().free_labels;
        assert!(freed >= 1);
        let _fresh = t.label_of(&pw("gc-after@x"));
        assert_eq!(
            t.stats().free_labels,
            freed,
            "slots freed at/after a live pin's epoch are not reused"
        );
        drop(pin3);
    }

    #[test]
    fn sweep_purges_stale_union_cache_entries() {
        let t = LabelTable::new();
        let a = t.label_of(&pw("gc-ua@x"));
        let b = t.label_of(&pw("gc-ub@x"));
        let _ab = t.union(a, b);
        assert_eq!(t.union_cache_len(), 1);
        t.sweep([a]);
        assert_eq!(
            t.union_cache_len(),
            0,
            "cached union names a swept operand/result"
        );
    }

    #[test]
    fn session_churn_plateaus_under_sweep() {
        // The acceptance scenario: login/expire churn interning one
        // fresh per-user policy per login. Without GC the table grows
        // linearly (10k entries); with periodic sweeps it plateaus at
        // the sweep interval.
        const CHURN: usize = 10_000;
        const INTERVAL: usize = 100;
        let t = LabelTable::new();
        let mut peak_slots = 0usize;
        for i in 0..CHURN {
            // login: a session-scoped label; expire: the handle drops.
            let _label = t.label_of(&pw(&format!("churn-{i}@x")));
            if (i + 1) % INTERVAL == 0 {
                t.sweep([]);
            }
            peak_slots = peak_slots.max(t.label_count());
        }
        let stats = t.stats();
        assert!(
            peak_slots <= 2 * INTERVAL + 2,
            "label slots must plateau near the sweep interval, got {peak_slots}"
        );
        assert!(
            t.policy_interner_stats().slots <= 2 * INTERVAL + 2,
            "policy slots must plateau too, got {}",
            t.policy_interner_stats().slots
        );
        assert!(stats.labels <= INTERVAL, "live labels bounded");
        assert!(stats.epoch >= (CHURN / INTERVAL) as u64);
    }

    #[test]
    fn table_stats_grow_monotonically() {
        let t = LabelTable::global();
        let before = t.policy_count();
        let _ = Label::of(&pw("stats-unique@x"));
        assert!(t.policy_count() > before);
        assert!(t.label_count() >= 1);
        let _ = t.union_cache_len(); // smoke: accessible
        let interner_len = t.read().interner.len();
        assert!(!t.read().interner.is_empty());
        assert_eq!(interner_len, t.policy_count());
    }
}
