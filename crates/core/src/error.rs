//! Error types shared by the RESIN runtime.

use std::fmt;

use crate::channel::ChannelKind;

/// A data flow assertion failure.
///
/// Raised by a policy object's `export_check` (or a filter object) when data
/// is about to cross a data flow boundary in violation of an assertion. This
/// corresponds to the exception thrown by `export_check` in the paper
/// (Figure 2): the runtime converts the exception into an aborted write, so
/// the faulty flow never becomes visible outside the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyViolation {
    /// Class name of the policy (or filter) that rejected the flow.
    pub policy: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// The kind of channel on which the violation occurred, if known.
    pub channel: Option<ChannelKind>,
}

impl PolicyViolation {
    /// Creates a violation raised by `policy` with a description.
    pub fn new(policy: impl Into<String>, message: impl Into<String>) -> Self {
        PolicyViolation {
            policy: policy.into(),
            message: message.into(),
            channel: None,
        }
    }

    /// Attaches the channel kind on which the violation occurred.
    pub fn on_channel(mut self, kind: ChannelKind) -> Self {
        self.channel = Some(kind);
        self
    }
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy violation [{}]: {}", self.policy, self.message)?;
        if let Some(ch) = &self.channel {
            write!(f, " (channel: {ch})")?;
        }
        Ok(())
    }
}

impl std::error::Error for PolicyViolation {}

/// Errors produced by policy (de)serialization (persistent policies, §3.4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The serialized form referenced a policy class that is not registered.
    UnknownClass(String),
    /// The serialized form was syntactically malformed.
    Malformed(String),
    /// A required field was missing when reconstructing a policy.
    MissingField {
        /// Policy class being reconstructed.
        class: String,
        /// Name of the missing field.
        field: String,
    },
    /// A field value could not be parsed into the expected type.
    BadField {
        /// Policy class being reconstructed.
        class: String,
        /// Name of the offending field.
        field: String,
        /// Description of the parse failure.
        reason: String,
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::UnknownClass(c) => write!(f, "unknown policy class `{c}`"),
            SerializeError::Malformed(m) => write!(f, "malformed serialized policy: {m}"),
            SerializeError::MissingField { class, field } => {
                write!(f, "policy `{class}` missing field `{field}`")
            }
            SerializeError::BadField {
                class,
                field,
                reason,
            } => write!(f, "policy `{class}` field `{field}`: {reason}"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Top-level error type for RESIN runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResinError {
    /// A data flow assertion rejected the flow.
    Violation(PolicyViolation),
    /// Persistent policy serialization failed.
    Serialize(SerializeError),
    /// Two policies could not be merged (a `merge` method vetoed, §3.4.2).
    MergeDenied(PolicyViolation),
    /// A filter rejected in-transit data for a non-policy reason
    /// (e.g. the HTTP-response-splitting filter).
    FilterRejected(String),
    /// Generic runtime error (I/O on a simulated channel, etc.).
    Runtime(String),
}

impl ResinError {
    /// Convenience constructor for [`ResinError::Runtime`].
    pub fn runtime(msg: impl Into<String>) -> Self {
        ResinError::Runtime(msg.into())
    }

    /// Returns the inner violation, if this error is one.
    pub fn as_violation(&self) -> Option<&PolicyViolation> {
        match self {
            ResinError::Violation(v) | ResinError::MergeDenied(v) => Some(v),
            _ => None,
        }
    }

    /// True if the error is a policy violation or merge denial.
    pub fn is_violation(&self) -> bool {
        self.as_violation().is_some()
    }
}

impl fmt::Display for ResinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResinError::Violation(v) => write!(f, "{v}"),
            ResinError::Serialize(e) => write!(f, "serialize error: {e}"),
            ResinError::MergeDenied(v) => write!(f, "merge denied: {v}"),
            ResinError::FilterRejected(m) => write!(f, "filter rejected data: {m}"),
            ResinError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for ResinError {}

impl From<PolicyViolation> for ResinError {
    fn from(v: PolicyViolation) -> Self {
        ResinError::Violation(v)
    }
}

impl From<SerializeError> for ResinError {
    fn from(e: SerializeError) -> Self {
        ResinError::Serialize(e)
    }
}

/// Result alias used throughout the runtime.
pub type Result<T, E = ResinError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_includes_policy_and_channel() {
        let v = PolicyViolation::new("PasswordPolicy", "unauthorized disclosure")
            .on_channel(ChannelKind::Http);
        let s = v.to_string();
        assert!(s.contains("PasswordPolicy"));
        assert!(s.contains("unauthorized disclosure"));
        assert!(s.contains("http"));
    }

    #[test]
    fn resin_error_violation_roundtrip() {
        let v = PolicyViolation::new("P", "m");
        let e: ResinError = v.clone().into();
        assert!(e.is_violation());
        assert_eq!(e.as_violation(), Some(&v));
    }

    #[test]
    fn serialize_error_display() {
        let e = SerializeError::MissingField {
            class: "PagePolicy".into(),
            field: "acl".into(),
        };
        assert!(e.to_string().contains("PagePolicy"));
        assert!(e.to_string().contains("acl"));
        let e2 = SerializeError::UnknownClass("Nope".into());
        assert!(e2.to_string().contains("Nope"));
    }

    #[test]
    fn runtime_error_not_violation() {
        assert!(!ResinError::runtime("x").is_violation());
        assert!(!ResinError::FilterRejected("y".into()).is_violation());
    }
}
