//! Error types shared by the RESIN runtime.
//!
//! The surface centres on one taxonomy, [`FlowError`]: every way a data
//! flow can fail to cross a gate is one of its variants.

use std::fmt;

use crate::gate::GateKind;

/// A data flow assertion failure.
///
/// Raised by a policy object's `export_check` (or a filter object) when
/// data is about to cross a data flow boundary in violation of an
/// assertion. This corresponds to the exception thrown by `export_check`
/// in the paper (Figure 2): the runtime converts the exception into an
/// aborted write, so the faulty flow never becomes visible outside the
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyViolation {
    /// Class name of the policy (or filter/gate) that rejected the flow.
    pub policy: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// The kind of gate on which the violation occurred, if known.
    pub channel: Option<GateKind>,
}

impl PolicyViolation {
    /// Creates a violation raised by `policy` with a description.
    pub fn new(policy: impl Into<String>, message: impl Into<String>) -> Self {
        PolicyViolation {
            policy: policy.into(),
            message: message.into(),
            channel: None,
        }
    }

    /// Attaches the gate kind on which the violation occurred.
    pub fn on_channel(mut self, kind: GateKind) -> Self {
        self.channel = Some(kind);
        self
    }
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy violation [{}]: {}", self.policy, self.message)?;
        if let Some(ch) = &self.channel {
            write!(f, " (channel: {ch})")?;
        }
        Ok(())
    }
}

impl std::error::Error for PolicyViolation {}

/// Errors produced by policy (de)serialization (persistent policies, §3.4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The serialized form referenced a policy class that is not registered.
    UnknownClass(String),
    /// The serialized form was syntactically malformed.
    Malformed(String),
    /// A required field was missing when reconstructing a policy.
    MissingField {
        /// Policy class being reconstructed.
        class: String,
        /// Name of the missing field.
        field: String,
    },
    /// A field value could not be parsed into the expected type.
    BadField {
        /// Policy class being reconstructed.
        class: String,
        /// Name of the offending field.
        field: String,
        /// Description of the parse failure.
        reason: String,
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::UnknownClass(c) => write!(f, "unknown policy class `{c}`"),
            SerializeError::Malformed(m) => write!(f, "malformed serialized policy: {m}"),
            SerializeError::MissingField { class, field } => {
                write!(f, "policy `{class}` missing field `{field}`")
            }
            SerializeError::BadField {
                class,
                field,
                reason,
            } => write!(f, "policy `{class}` field `{field}`: {reason}"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Every way a data flow can fail to cross a gate.
///
/// The taxonomy, in decreasing order of "the assertion worked":
///
/// * [`Denied`](FlowError::Denied) — a policy's `export_check` or a gate
///   deny rule rejected the flow (the paper's assertion failure);
/// * [`MergeDenied`](FlowError::MergeDenied) — two policies refused to
///   merge when data was combined (§3.4.2);
/// * [`Rejected`](FlowError::Rejected) — a filter rejected in-transit data
///   for a non-policy reason (e.g. the HTTP-response-splitting filter);
/// * [`Serialize`](FlowError::Serialize) — persistent policy
///   (de)serialization failed (§3.4.1);
/// * [`Runtime`](FlowError::Runtime) — infrastructure failure on a
///   simulated channel (I/O, missing account, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A data flow assertion rejected the flow.
    Denied(PolicyViolation),
    /// Two policies could not be merged (a `merge` method vetoed, §3.4.2).
    MergeDenied(PolicyViolation),
    /// A filter rejected in-transit data for a non-policy reason.
    Rejected(String),
    /// Persistent policy serialization failed.
    Serialize(SerializeError),
    /// Generic runtime error (I/O on a simulated channel, etc.).
    Runtime(String),
}

impl FlowError {
    /// Convenience constructor for [`FlowError::Denied`].
    pub fn denied(policy: impl Into<String>, message: impl Into<String>) -> Self {
        FlowError::Denied(PolicyViolation::new(policy, message))
    }

    /// Convenience constructor for [`FlowError::Rejected`].
    pub fn rejected(msg: impl Into<String>) -> Self {
        FlowError::Rejected(msg.into())
    }

    /// Convenience constructor for [`FlowError::Runtime`].
    pub fn runtime(msg: impl Into<String>) -> Self {
        FlowError::Runtime(msg.into())
    }

    /// Returns the inner violation, if this error is one.
    pub fn as_violation(&self) -> Option<&PolicyViolation> {
        match self {
            FlowError::Denied(v) | FlowError::MergeDenied(v) => Some(v),
            _ => None,
        }
    }

    /// True if the error is a policy violation or merge denial.
    pub fn is_violation(&self) -> bool {
        self.as_violation().is_some()
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Denied(v) => write!(f, "{v}"),
            FlowError::MergeDenied(v) => write!(f, "merge denied: {v}"),
            FlowError::Rejected(m) => write!(f, "filter rejected data: {m}"),
            FlowError::Serialize(e) => write!(f, "serialize error: {e}"),
            FlowError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<PolicyViolation> for FlowError {
    fn from(v: PolicyViolation) -> Self {
        FlowError::Denied(v)
    }
}

impl From<SerializeError> for FlowError {
    fn from(e: SerializeError) -> Self {
        FlowError::Serialize(e)
    }
}

/// Result alias used throughout the runtime.
pub type Result<T, E = FlowError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_includes_policy_and_channel() {
        let v = PolicyViolation::new("PasswordPolicy", "unauthorized disclosure")
            .on_channel(GateKind::Http);
        let s = v.to_string();
        assert!(s.contains("PasswordPolicy"));
        assert!(s.contains("unauthorized disclosure"));
        assert!(s.contains("http"));
    }

    #[test]
    fn flow_error_violation_roundtrip() {
        let v = PolicyViolation::new("P", "m");
        let e: FlowError = v.clone().into();
        assert!(e.is_violation());
        assert_eq!(e.as_violation(), Some(&v));
    }

    #[test]
    fn serialize_error_display() {
        let e = SerializeError::MissingField {
            class: "PagePolicy".into(),
            field: "acl".into(),
        };
        assert!(e.to_string().contains("PagePolicy"));
        assert!(e.to_string().contains("acl"));
        let e2 = SerializeError::UnknownClass("Nope".into());
        assert!(e2.to_string().contains("Nope"));
    }

    #[test]
    fn runtime_and_rejected_not_violations() {
        assert!(!FlowError::runtime("x").is_violation());
        assert!(!FlowError::rejected("y").is_violation());
        assert!(FlowError::denied("P", "m").is_violation());
    }
}
