//! Poison-recovering lock accessors.
//!
//! The process-global tables (labels, gate registry, policy classes) and
//! every per-request shared structure in the serving path are consistent
//! at each possible panic point — their writes are single inserts/pushes,
//! or stage data before attaching it. For such structures a poisoned lock
//! carries no information: recovering the guard with
//! [`PoisonError::into_inner`] is sound, and propagating the poison would
//! turn one panicking worker thread into a process-wide denial of
//! service (every later lock access panicking too).
//!
//! Use these helpers instead of hand-rolling the recovery at each call
//! site — and only for data structures that actually hold the
//! consistent-at-every-panic-point invariant.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks `lock`, recovering from poison.
pub fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `lock`, recovering from poison.
pub fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Locks `lock`, recovering from poison.
pub fn mlock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn all_three_recover_from_poison() {
        let rw = Arc::new(RwLock::new(1));
        let m = Arc::new(Mutex::new(2));
        let (rw2, m2) = (Arc::clone(&rw), Arc::clone(&m));
        let _ = std::thread::spawn(move || {
            let _a = rw2.write().unwrap();
            let _b = m2.lock().unwrap();
            panic!("poison both");
        })
        .join();
        assert!(rw.is_poisoned() && m.is_poisoned());
        assert_eq!(*rlock(&rw), 1);
        *wlock(&rw) = 10;
        assert_eq!(*rlock(&rw), 10);
        assert_eq!(*mlock(&m), 2);
    }
}
