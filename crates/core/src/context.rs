//! Channel context: metadata describing a specific data flow boundary.
//!
//! RESIN annotates default filter objects with context metadata in the form
//! of a hash table (§3.2.1) — for example, each outgoing-email channel is
//! annotated with the recipient address, and applications add their own
//! key–value pairs (the current user on an HTTP connection, say). The filter
//! passes the context to each policy's `export_check`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::gate::GateKind;

/// Process-wide source of content stamps: every value handed out is
/// unique, so equal stamps can only mean "same content" (an unmutated
/// context, or a clone of it).
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// A single context value.
#[derive(Debug, Clone, PartialEq)]
pub enum CtxValue {
    /// A string value (recipients, user names, paths, ...).
    Str(String),
    /// An integer value.
    Int(i64),
    /// A boolean flag (e.g. `priv_chair`).
    Bool(bool),
}

impl CtxValue {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CtxValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CtxValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CtxValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for CtxValue {
    fn from(s: &str) -> Self {
        CtxValue::Str(s.to_string())
    }
}

impl From<String> for CtxValue {
    fn from(s: String) -> Self {
        CtxValue::Str(s)
    }
}

impl From<i64> for CtxValue {
    fn from(i: i64) -> Self {
        CtxValue::Int(i)
    }
}

impl From<bool> for CtxValue {
    fn from(b: bool) -> Self {
        CtxValue::Bool(b)
    }
}

impl fmt::Display for CtxValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtxValue::Str(s) => f.write_str(s),
            CtxValue::Int(i) => write!(f, "{i}"),
            CtxValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The context hash table attached to a filter object.
///
/// The `type` key is always present and names the channel kind, matching the
/// paper's `$context['type'] == 'email'` idiom.
#[derive(Debug, Clone)]
pub struct Context {
    kind: GateKind,
    entries: BTreeMap<String, CtxValue>,
    /// Content stamp: refreshed on every mutation, copied by `Clone`.
    /// Two contexts with the same stamp are guaranteed content-equal
    /// (the converse does not hold), which lets per-crossing caches —
    /// e.g. the RSL interpreter's context-value cache — key on one `u64`
    /// instead of deep-comparing the entry map.
    stamp: u64,
}

/// Equality is over content (kind + entries); the cache stamp is an
/// identity optimization, not part of the value.
impl PartialEq for Context {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.entries == other.entries
    }
}

impl Context {
    /// Creates a context for a channel of `kind`; sets the `type` entry.
    pub fn new(kind: GateKind) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert("type".to_string(), CtxValue::from(kind.type_name()));
        Context {
            kind,
            entries,
            stamp: fresh_stamp(),
        }
    }

    /// The content stamp: equal stamps guarantee equal content, so a
    /// cache keyed on the stamp never serves a stale entry across
    /// [`set`](Context::set)/[`remove`](Context::remove) mutations.
    pub fn cache_stamp(&self) -> u64 {
        self.stamp
    }

    /// The kind of channel this context describes.
    pub fn kind(&self) -> &GateKind {
        &self.kind
    }

    /// The channel type string (same as `get_str("type")`).
    pub fn channel_type(&self) -> &str {
        self.kind.type_name()
    }

    /// Inserts or replaces a context entry.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<CtxValue>) -> &mut Self {
        self.entries.insert(key.into(), value.into());
        self.stamp = fresh_stamp();
        self
    }

    /// Inserts a string entry (convenience).
    pub fn set_str(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.set(key, CtxValue::Str(value.into()))
    }

    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&CtxValue> {
        self.entries.get(key)
    }

    /// Looks up a string entry.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.entries.get(key).and_then(CtxValue::as_str)
    }

    /// Looks up a boolean entry, defaulting to `false` when absent.
    pub fn get_flag(&self, key: &str) -> bool {
        self.entries
            .get(key)
            .and_then(CtxValue::as_bool)
            .unwrap_or(false)
    }

    /// Looks up an integer entry.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.entries.get(key).and_then(CtxValue::as_int)
    }

    /// Removes an entry, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<CtxValue> {
        let removed = self.entries.remove(key);
        if removed.is_some() {
            self.stamp = fresh_stamp();
        }
        removed
    }

    /// True if the context has an entry for `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterates over all `(key, value)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CtxValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries, including the implicit `type`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when only the implicit `type` entry is present.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_key_set_automatically() {
        let ctx = Context::new(GateKind::Email);
        assert_eq!(ctx.get_str("type"), Some("email"));
        assert_eq!(ctx.channel_type(), "email");
        assert!(ctx.is_empty(), "only the implicit type entry");
    }

    #[test]
    fn set_and_get_values() {
        let mut ctx = Context::new(GateKind::Http);
        ctx.set_str("user", "alice")
            .set("priv_chair", true)
            .set("status", 200i64);
        assert_eq!(ctx.get_str("user"), Some("alice"));
        assert!(ctx.get_flag("priv_chair"));
        assert!(!ctx.get_flag("absent"));
        assert_eq!(ctx.get_int("status"), Some(200));
        assert_eq!(ctx.len(), 4);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn remove_and_contains() {
        let mut ctx = Context::new(GateKind::Socket);
        ctx.set_str("k", "v");
        assert!(ctx.contains("k"));
        assert_eq!(ctx.remove("k"), Some(CtxValue::Str("v".into())));
        assert!(!ctx.contains("k"));
    }

    #[test]
    fn ctx_value_conversions() {
        assert_eq!(CtxValue::from("x").as_str(), Some("x"));
        assert_eq!(CtxValue::from(7i64).as_int(), Some(7));
        assert_eq!(CtxValue::from(true).as_bool(), Some(true));
        assert_eq!(CtxValue::from("x").as_int(), None);
        assert_eq!(CtxValue::Int(3).to_string(), "3");
        assert_eq!(CtxValue::Bool(false).to_string(), "false");
    }

    #[test]
    fn cache_stamp_tracks_content() {
        let mut ctx = Context::new(GateKind::Email);
        let s0 = ctx.cache_stamp();
        // A clone shares the stamp — identical content by construction.
        let copy = ctx.clone();
        assert_eq!(copy.cache_stamp(), s0);
        assert_eq!(ctx, copy);
        // Any mutation refreshes it.
        ctx.set_str("email", "u@x");
        let s1 = ctx.cache_stamp();
        assert_ne!(s1, s0);
        ctx.remove("email");
        assert_ne!(ctx.cache_stamp(), s1);
        // Removing a missing key is not a mutation.
        let s2 = ctx.cache_stamp();
        assert_eq!(ctx.remove("missing"), None);
        assert_eq!(ctx.cache_stamp(), s2);
        // Distinct fresh contexts never share a stamp, even when equal.
        let a = Context::new(GateKind::Http);
        let b = Context::new(GateKind::Http);
        assert_eq!(a, b);
        assert_ne!(a.cache_stamp(), b.cache_stamp());
    }

    #[test]
    fn iter_in_key_order() {
        let mut ctx = Context::new(GateKind::Pipe);
        ctx.set_str("b", "2").set_str("a", "1");
        let keys: Vec<&str> = ctx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "type"]);
    }
}
