//! The policy merge engine (§3.4.2).
//!
//! Character-level tracking lets RESIN avoid merging when data is copied
//! verbatim, but merges are inevitable when data elements are *combined* —
//! e.g. adding the integer values of two differently-tainted characters to
//! compute a checksum. The runtime then invokes `merge` on each policy of
//! each source operand, passing the other operand's policy set, and labels
//! the result with the union of everything the merge methods return.

use crate::error::FlowError;
use crate::policy::MergeDecision;
use crate::policy_set::PolicySet;

/// Merges the policy sets of two operands being combined into one datum.
///
/// For every policy `p` of either operand, `p.merge(other_set)` decides
/// whether `p` (or substitutes) should label the result; a
/// [`MergeDecision::Deny`] aborts the whole operation with
/// [`FlowError::MergeDenied`].
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// // UntrustedData uses the union strategy: the result stays untrusted.
/// let a = PolicySet::single(Arc::new(UntrustedData::new()));
/// let b = PolicySet::empty();
/// let merged = merge_sets(&a, &b).unwrap();
/// assert!(merged.has::<UntrustedData>());
/// ```
pub fn merge_sets(a: &PolicySet, b: &PolicySet) -> Result<PolicySet, FlowError> {
    // Fast paths: nothing to merge.
    if a.is_empty() && b.is_empty() {
        return Ok(PolicySet::empty());
    }
    let mut out = PolicySet::empty();
    for (own, other) in [(a, b), (b, a)] {
        for p in own.iter() {
            match p.merge(other) {
                MergeDecision::Keep => {
                    out.add(p.clone());
                }
                MergeDecision::Drop => {}
                MergeDecision::Attach(list) => {
                    for q in list {
                        out.add(q);
                    }
                }
                MergeDecision::Deny(v) => return Err(FlowError::MergeDenied(v)),
            }
        }
    }
    Ok(out)
}

/// Merges an arbitrary number of operand policy sets left-to-right.
pub fn merge_many<'a, I>(sets: I) -> Result<PolicySet, FlowError>
where
    I: IntoIterator<Item = &'a PolicySet>,
{
    let mut acc = PolicySet::empty();
    for s in sets {
        acc = merge_sets(&acc, s)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::error::PolicyViolation;
    use crate::policies::{AuthenticData, UntrustedData};
    use crate::policy::{MergeDecision, Policy, PolicyRef};
    use std::any::Any;
    use std::sync::Arc;

    /// A policy whose merge always denies — for failure-injection tests.
    #[derive(Debug)]
    struct NoMerge;

    impl Policy for NoMerge {
        fn name(&self) -> &str {
            "NoMerge"
        }
        fn export_check(&self, _c: &Context) -> Result<(), PolicyViolation> {
            Ok(())
        }
        fn merge(&self, _others: &PolicySet) -> MergeDecision {
            MergeDecision::Deny(PolicyViolation::new("NoMerge", "cannot merge"))
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn union_is_default() {
        let a = PolicySet::single(Arc::new(UntrustedData::new()));
        let b = PolicySet::empty();
        let m = merge_sets(&a, &b).unwrap();
        assert!(m.has::<UntrustedData>());
        let m2 = merge_sets(&b, &a).unwrap();
        assert!(m2.has::<UntrustedData>());
    }

    #[test]
    fn intersection_policy_drops_when_other_lacks_it() {
        // AuthenticData implements the intersection strategy.
        let a = PolicySet::single(Arc::new(AuthenticData::new()));
        let b = PolicySet::empty();
        let m = merge_sets(&a, &b).unwrap();
        assert!(
            !m.has::<AuthenticData>(),
            "result is authentic only if all operands were"
        );
    }

    #[test]
    fn intersection_policy_kept_when_both_have_it() {
        let a = PolicySet::single(Arc::new(AuthenticData::new()));
        let b = PolicySet::single(Arc::new(AuthenticData::new()));
        let m = merge_sets(&a, &b).unwrap();
        assert!(m.has::<AuthenticData>());
        assert_eq!(m.len(), 1, "deduplicated");
    }

    #[test]
    fn deny_aborts_merge() {
        let a = PolicySet::single(Arc::new(NoMerge) as PolicyRef);
        let b = PolicySet::single(Arc::new(UntrustedData::new()) as PolicyRef);
        let err = merge_sets(&a, &b).unwrap_err();
        assert!(matches!(err, FlowError::MergeDenied(_)));
    }

    #[test]
    fn empty_fast_path() {
        let m = merge_sets(&PolicySet::empty(), &PolicySet::empty()).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn merge_many_accumulates() {
        let a = PolicySet::single(Arc::new(UntrustedData::new()) as PolicyRef);
        let b = PolicySet::empty();
        let c = PolicySet::single(Arc::new(UntrustedData::new()) as PolicyRef);
        let m = merge_many([&a, &b, &c]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.has::<UntrustedData>());
    }
}
