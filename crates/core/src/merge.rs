//! The policy merge engine (§3.4.2), over interned [`Label`]s.
//!
//! Character-level tracking lets RESIN avoid merging when data is copied
//! verbatim, but merges are inevitable when data elements are *combined* —
//! e.g. adding the integer values of two differently-tainted characters to
//! compute a checksum. The runtime then invokes `merge` on each policy of
//! each source operand, passing the other operand's label, and labels the
//! result with the union of everything the merge methods return.
//!
//! Merging two empty labels is pure handle arithmetic; any non-empty
//! operand resolves its policy objects once to consult each `merge`
//! strategy (a `Deny`-strategy policy must veto even a self-merge, so
//! there is deliberately no equal-labels shortcut). Policies kept by the
//! default union strategy are re-labeled by id — no re-interning, no
//! `serialize_fields` allocation on this path.

use crate::error::FlowError;
use crate::label::{Label, LabelTable, PolicyId};
use crate::policy::MergeDecision;

/// Merges the labels of two operands being combined into one datum.
///
/// For every policy `p` of either operand, `p.merge(other_label)` decides
/// whether `p` (or substitutes) should label the result; a
/// [`MergeDecision::Deny`] aborts the whole operation with
/// [`FlowError::MergeDenied`].
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// // UntrustedData uses the union strategy: the result stays untrusted.
/// let a = Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef));
/// let merged = merge_sets(a, Label::EMPTY).unwrap();
/// assert!(merged.has::<UntrustedData>());
/// ```
pub fn merge_sets(a: Label, b: Label) -> Result<Label, FlowError> {
    // Fast path: nothing to merge.
    if a.is_empty() && b.is_empty() {
        return Ok(Label::EMPTY);
    }
    // Kept policies are already interned — collect their ids and intern the
    // result set once; only `Attach`ed substitutes need fresh interning.
    let mut kept: Vec<PolicyId> = Vec::new();
    let mut attached: Vec<crate::policy::PolicyRef> = Vec::new();
    for (own, other) in [(a, b), (b, a)] {
        if own.is_empty() {
            continue;
        }
        let ids = own.ids();
        let refs = own.policies();
        for (id, p) in ids.iter().zip(refs.iter()) {
            match p.merge(other) {
                MergeDecision::Keep => kept.push(*id),
                MergeDecision::Drop => {}
                MergeDecision::Attach(list) => attached.extend(list),
                MergeDecision::Deny(v) => return Err(FlowError::MergeDenied(v)),
            }
        }
    }
    let mut out = LabelTable::global().intern_ids(kept);
    for q in &attached {
        out = out.union(Label::of(q));
    }
    Ok(out)
}

/// Merges an arbitrary number of operand labels left-to-right.
pub fn merge_many<I>(labels: I) -> Result<Label, FlowError>
where
    I: IntoIterator<Item = Label>,
{
    let mut acc = Label::EMPTY;
    for l in labels {
        acc = merge_sets(acc, l)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::error::PolicyViolation;
    use crate::policies::{AuthenticData, UntrustedData};
    use crate::policy::{MergeDecision, Policy, PolicyRef};
    use std::any::Any;
    use std::sync::Arc;

    /// A policy whose merge always denies — for failure-injection tests.
    #[derive(Debug)]
    struct NoMerge;

    impl Policy for NoMerge {
        fn name(&self) -> &str {
            "NoMerge"
        }
        fn export_check(&self, _c: &Context) -> Result<(), PolicyViolation> {
            Ok(())
        }
        fn merge(&self, _others: Label) -> MergeDecision {
            MergeDecision::Deny(PolicyViolation::new("NoMerge", "cannot merge"))
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn label_of<P: Policy>(p: P) -> Label {
        Label::of(&(Arc::new(p) as PolicyRef))
    }

    #[test]
    fn union_is_default() {
        let a = label_of(UntrustedData::new());
        let m = merge_sets(a, Label::EMPTY).unwrap();
        assert!(m.has::<UntrustedData>());
        let m2 = merge_sets(Label::EMPTY, a).unwrap();
        assert!(m2.has::<UntrustedData>());
    }

    #[test]
    fn intersection_policy_drops_when_other_lacks_it() {
        // AuthenticData implements the intersection strategy.
        let a = label_of(AuthenticData::new());
        let m = merge_sets(a, Label::EMPTY).unwrap();
        assert!(
            !m.has::<AuthenticData>(),
            "result is authentic only if all operands were"
        );
    }

    #[test]
    fn intersection_policy_kept_when_both_have_it() {
        let a = label_of(AuthenticData::new());
        let b = label_of(AuthenticData::new());
        assert_eq!(a, b, "structural duplicates intern identically");
        let m = merge_sets(a, b).unwrap();
        assert!(m.has::<AuthenticData>());
        assert_eq!(m.len(), 1, "deduplicated");
    }

    #[test]
    fn deny_aborts_merge() {
        let a = label_of(NoMerge);
        let b = label_of(UntrustedData::new());
        let err = merge_sets(a, b).unwrap_err();
        assert!(matches!(err, FlowError::MergeDenied(_)));
    }

    #[test]
    fn empty_fast_path() {
        let m = merge_sets(Label::EMPTY, Label::EMPTY).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn merge_many_accumulates() {
        let a = label_of(UntrustedData::new());
        let c = label_of(UntrustedData::new());
        let m = merge_many([a, Label::EMPTY, c]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.has::<UntrustedData>());
    }
}
