//! Policy objects: per-datum assertion code and metadata (§3.3).
//!
//! A policy object is attached to data (via
//! [`policy_add`](crate::taint::policy_add)) and travels with it as the
//! runtime propagates copies. When data crosses a boundary, the filter
//! invokes [`Policy::export_check`]; when data elements merge (e.g. integer
//! addition), the runtime consults [`Policy::merge`].

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::context::Context;
use crate::error::PolicyViolation;
use crate::label::Label;

/// A reference-counted, type-erased policy object.
///
/// Policies are immutable once attached; copying data clones the `Arc`, so
/// propagation is cheap (the paper's design stores a *pointer* to a policy
/// set in each datum).
pub type PolicyRef = Arc<dyn Policy>;

/// The decision a policy's [`merge`](Policy::merge) method returns.
///
/// The runtime merges data elements (for example, adding two tainted
/// integers) by invoking `merge` on each policy of each operand, passing the
/// *other* operand's policy set; the resulting datum is labeled with the
/// union of everything the merge methods return (§3.4.2).
#[derive(Debug, Clone)]
pub enum MergeDecision {
    /// Propagate this policy to the merged datum (the union strategy).
    Keep,
    /// Drop this policy from the merged datum.
    Drop,
    /// Attach exactly these policies on behalf of this policy.
    Attach(Vec<PolicyRef>),
    /// Refuse the merge entirely; the operation fails.
    Deny(PolicyViolation),
}

/// A data flow assertion's per-datum component.
///
/// Implementors provide assertion-checking code (`export_check`), an
/// optional merge strategy, and field serialization for persistent policies
/// (§3.4.1). This is the Rust rendering of Table 3's `policy::*` rows.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let mut secret = TaintedString::from("hunter2");
/// secret.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
///
/// let mut http = Gate::new(GateKind::Http);
/// assert!(http.write(secret).is_err()); // disclosure prevented
/// ```
pub trait Policy: Any + Send + Sync + fmt::Debug {
    /// The policy's class name, used for persistence and error messages.
    fn name(&self) -> &str;

    /// Checks whether the data flow this policy guards may cross the
    /// boundary described by `context`.
    ///
    /// The default allows everything; marker policies (e.g. `UntrustedData`)
    /// rely on filters to interpret their presence instead.
    fn export_check(&self, _context: &Context) -> Result<(), PolicyViolation> {
        Ok(())
    }

    /// Merge strategy when a datum carrying this policy is combined with a
    /// datum labeled `_others` (§3.4.2). Default: union (`Keep`).
    fn merge(&self, _others: Label) -> MergeDecision {
        MergeDecision::Keep
    }

    /// Serializes the policy's data fields for persistent storage.
    ///
    /// Only the class name and data fields are stored, so policy *code* can
    /// evolve without migrating persisted policies (§3.4.1).
    fn serialize_fields(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Structural equality, used to deduplicate policy sets.
    ///
    /// The default compares class name and serialized fields, which is
    /// correct for any policy whose behaviour is a pure function of its
    /// fields.
    fn policy_eq(&self, other: &dyn Policy) -> bool {
        self.name() == other.name() && self.serialize_fields() == other.serialize_fields()
    }

    /// Extra interning discriminator for policies whose *behaviour* is not
    /// a pure function of `name()` + `serialize_fields()`.
    ///
    /// The label interner canonicalizes structurally-equal policies to one
    /// [`PolicyId`](crate::label::PolicyId), and every resolution returns
    /// the first-interned object. That is sound only when same name + same
    /// fields implies same behaviour. A policy that carries *code* outside
    /// its fields (e.g. a script-defined policy capturing an interpreted
    /// class body) must override this to return a value distinguishing
    /// behaviourally-different instances — a pointer-derived identity of
    /// the captured code works, since the interner keeps the policy (and
    /// hence the pointee) alive for the process lifetime. Default: `0`.
    fn intern_discriminator(&self) -> u64 {
        0
    }

    /// Upcast for downcasting to a concrete policy type.
    fn as_any(&self) -> &dyn Any;
}

/// Returns true when two policy references denote the same policy, either by
/// pointer identity or by structural equality.
pub fn policy_refs_equal(a: &PolicyRef, b: &PolicyRef) -> bool {
    // Fast path: the same allocation.
    if Arc::ptr_eq(a, b) {
        return true;
    }
    a.policy_eq(b.as_ref())
}

/// Convenience: downcast a policy reference to a concrete type.
pub fn downcast_policy<T: Policy>(p: &PolicyRef) -> Option<&T> {
    p.as_any().downcast_ref::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{PasswordPolicy, UntrustedData};

    #[test]
    fn default_export_check_allows() {
        let p = UntrustedData::new();
        let ctx = Context::new(crate::gate::GateKind::Http);
        assert!(p.export_check(&ctx).is_ok());
    }

    #[test]
    fn ptr_and_structural_equality() {
        let a: PolicyRef = Arc::new(PasswordPolicy::new("u@x"));
        let b = a.clone();
        assert!(policy_refs_equal(&a, &b), "pointer identity");
        let c: PolicyRef = Arc::new(PasswordPolicy::new("u@x"));
        assert!(policy_refs_equal(&a, &c), "structural equality");
        let d: PolicyRef = Arc::new(PasswordPolicy::new("v@y"));
        assert!(!policy_refs_equal(&a, &d), "different fields differ");
    }

    #[test]
    fn cross_class_inequality() {
        let a: PolicyRef = Arc::new(UntrustedData::new());
        let b: PolicyRef = Arc::new(PasswordPolicy::new("u@x"));
        assert!(!policy_refs_equal(&a, &b));
    }

    #[test]
    fn downcast_works() {
        let a: PolicyRef = Arc::new(PasswordPolicy::new("u@x"));
        let p = downcast_policy::<PasswordPolicy>(&a).expect("downcast");
        assert_eq!(p.email(), "u@x");
        assert!(downcast_policy::<UntrustedData>(&a).is_none());
    }
}
