//! Gates: the single data-flow boundary abstraction of the runtime.
//!
//! RESIN's power comes from one idea applied uniformly: every data flow
//! that crosses a boundary runs the same policy checks (§3.2). A [`Gate`]
//! is that one boundary. It subsumes what earlier revisions of this
//! codebase spread across three APIs:
//!
//! * the I/O **channel** (sockets, pipes, files, HTTP output, email, SQL,
//!   code import, §3.2.1) — a gate has a kind, a [`Context`], an ordered
//!   filter chain, inbound/outbound queues, and a capture sink standing in
//!   for "the outside world";
//! * the **internal module boundary** (§8) — a gate carries deny/strip
//!   rules over policy classes, so a module can refuse to let clear-text
//!   passwords escape, or declassify on the way out;
//! * the **function-call boundary** (Table 3's `filter_func`) — a gate can
//!   guard a function call, running its outbound path over the arguments
//!   and its read filters over the return value.
//!
//! Gates are built with the fluent [`GateBuilder`] and are usually resolved
//! from the [`Runtime`](crate::runtime::Runtime)'s
//! [`GateRegistry`](crate::runtime::GateRegistry), which owns the default
//! gate for each of the paper's I/O surfaces.
//!
//! On the outbound path a gate applies, in order:
//!
//! 1. **deny rules** — any matching rule aborts the flow;
//! 2. **strip rules** — declassification points remove their policy class;
//! 3. the **filter chain** — each [`Filter::filter_write`] in insertion
//!    order (a guarded gate starts with [`DefaultFilter`], which runs every
//!    policy's `export_check`);
//! 4. the **capture sink** — whatever survives becomes visible output.

use std::borrow::Cow;
use std::fmt;

use crate::context::{Context, CtxValue};
use crate::error::{FlowError, PolicyViolation, Result};
use crate::filter::{DefaultFilter, Filter};
use crate::policy::Policy;
use crate::taint::TaintedString;

/// The kind of I/O surface a gate guards.
///
/// The kind doubles as the `type` entry of the gate's default context, so
/// policy `export_check` methods can distinguish (say) email from HTTP, as
/// in the HotCRP password policy of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// HTTP response body sent to a browser.
    Http,
    /// Outgoing email (e.g. a sendmail pipe). Context carries the recipient.
    Email,
    /// A network socket.
    Socket,
    /// An OS pipe.
    Pipe,
    /// A file in the (virtual) filesystem.
    File,
    /// A SQL query channel to the database.
    Sql,
    /// Script code flowing into the interpreter (§3.2.2).
    CodeImport,
    /// An application-defined boundary (e.g. a module or function gate).
    Custom(&'static str),
}

impl GateKind {
    /// The string used for the `type` key in a gate context.
    pub fn type_name(&self) -> &'static str {
        match self {
            GateKind::Http => "http",
            GateKind::Email => "email",
            GateKind::Socket => "socket",
            GateKind::Pipe => "pipe",
            GateKind::File => "file",
            GateKind::Sql => "sql",
            GateKind::CodeImport => "code",
            GateKind::Custom(name) => name,
        }
    }

    /// The seven paper-defined I/O surfaces (everything but `Custom`).
    pub const IO_SURFACES: [GateKind; 7] = [
        GateKind::Http,
        GateKind::Email,
        GateKind::Socket,
        GateKind::Pipe,
        GateKind::File,
        GateKind::Sql,
        GateKind::CodeImport,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// What a gate rule does when it sees a guarded policy class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleAction {
    /// Refuse the export.
    Deny,
    /// Allow the export but remove the policy (declassification point).
    Strip,
}

/// Tests whether a rule applies to in-transit data.
type RulePredicate = Box<dyn Fn(&TaintedString) -> bool + Send + Sync>;

/// Removes a rule's policy class from in-transit data.
type RuleStripper = Box<dyn Fn(&mut TaintedString) + Send + Sync>;

/// A deny/strip rule over in-transit data.
struct Rule {
    matches: RulePredicate,
    strip: Option<RuleStripper>,
    action: RuleAction,
    class: &'static str,
}

impl Rule {
    /// A rule refusing any data labeled with `T`.
    fn deny<T: Policy>() -> Self {
        Rule {
            matches: Box::new(|d: &TaintedString| d.has_policy::<T>()),
            strip: None,
            action: RuleAction::Deny,
            class: std::any::type_name::<T>(),
        }
    }

    /// A rule removing all `T` policies on the way out.
    fn strip<T: Policy>() -> Self {
        Rule {
            matches: Box::new(|d: &TaintedString| d.has_policy::<T>()),
            strip: Some(Box::new(|d: &mut TaintedString| {
                d.remove_policy_type::<T>()
            })),
            action: RuleAction::Strip,
            class: std::any::type_name::<T>(),
        }
    }
}

/// Where output that survives the outbound path goes.
type Sink = Box<dyn Fn(&TaintedString) + Send + Sync>;

/// A guarded data-flow boundary.
///
/// Writing through the gate runs the deny/strip rules, then every filter's
/// `filter_write` in order; reading runs `filter_read` in order. The gate
/// owns its [`Context`], which applications annotate with boundary-specific
/// key–value pairs (`sock.__filter.context['user'] = req.user` in the
/// paper's MoinMoin example, Figure 5).
///
/// # Example: the Figure 2 password policy, end to end
///
/// The paper's flagship scenario — a password annotated with
/// [`PasswordPolicy`](crate::policies::PasswordPolicy) may not flow to an
/// HTTP response, but may be emailed to its owner — runs through gates
/// resolved from the [`Runtime`](crate::runtime::Runtime)'s registry:
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let rt = Runtime::new();
///
/// // Annotate the password with a policy object (Figure 2).
/// let mut password = TaintedString::from("s3cret");
/// password.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
///
/// // The password propagates into an email body...
/// let mut body = TaintedString::from("Your password is: ");
/// body.push_tainted(&password);
///
/// // ...and the default gates enforce the assertion. HTTP: denied.
/// let mut http = rt.open(GateKind::Http);
/// let err = http.write(body.clone()).unwrap_err();
/// assert!(err.is_violation());
/// assert_eq!(http.output_text(), "", "nothing leaked");
///
/// // Email to the owner's address: allowed.
/// let mut email = rt.open(GateKind::Email);
/// email.context_mut().set_str("email", "u@foo.com");
/// email.write(body).unwrap();
/// assert_eq!(email.output_text(), "Your password is: s3cret");
/// ```
pub struct Gate {
    kind: GateKind,
    name: Option<&'static str>,
    context: Context,
    rules: Vec<Rule>,
    filters: Vec<Box<dyn Filter>>,
    capture: bool,
    sink: Option<Sink>,
    /// Data that crossed the boundary outward (visible to "the world").
    written: Vec<TaintedString>,
    /// Queued data the next `read` will pull through the inbound filters.
    inbound: Vec<TaintedString>,
    write_offset: u64,
    read_offset: u64,
}

impl Gate {
    /// A gate of `kind` guarded by the default filter (Figure 3).
    pub fn new(kind: GateKind) -> Self {
        GateBuilder::new(kind).build()
    }

    /// A gate with no filters at all (an *unguarded* boundary).
    ///
    /// Used to model the "unmodified PHP" baseline and for tests that need
    /// to observe raw flows.
    pub fn unguarded(kind: GateKind) -> Self {
        GateBuilder::new(kind).unguarded().build()
    }

    /// An unguarded gate around a software module (an internal boundary,
    /// §8): add deny/strip rules with [`Gate::deny`] and [`Gate::strip`].
    pub fn internal(name: &'static str) -> Self {
        GateBuilder::new(GateKind::Custom(name))
            .name(name)
            .unguarded()
            .build()
    }

    /// Starts building a gate of `kind`.
    pub fn builder(kind: GateKind) -> GateBuilder {
        GateBuilder::new(kind)
    }

    /// The gate's kind.
    pub fn kind(&self) -> &GateKind {
        &self.kind
    }

    /// The gate's name, when it labels a module or function boundary.
    pub fn name(&self) -> Option<&'static str> {
        self.name
    }

    /// Immutable access to the gate context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Mutable access to the gate context, for application annotations.
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.context
    }

    /// Consumes the gate, keeping only its context.
    ///
    /// Handy when a component needs the registry-configured context of a
    /// surface (say, the file channel) without holding a whole gate.
    pub fn into_context(self) -> Context {
        self.context
    }

    /// Pushes an additional filter object onto the gate.
    ///
    /// Filters run in insertion order on write and on read.
    pub fn add_filter(&mut self, filter: Box<dyn Filter>) {
        self.filters.push(filter);
    }

    /// Replaces all filters (used e.g. to override the interpreter's import
    /// filter from a global configuration, §5.2).
    pub fn set_filters(&mut self, filters: Vec<Box<dyn Filter>>) {
        self.filters = filters;
    }

    /// Number of filters guarding the gate.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of deny/strip rules on the gate.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Adds a rule: data carrying a `T` policy may not cross outward.
    pub fn deny<T: Policy>(mut self) -> Self {
        self.add_deny_rule::<T>();
        self
    }

    /// Adds a rule: crossing outward removes all `T` policies (a
    /// declassification point, like the encryption-function filter of §3.2).
    pub fn strip<T: Policy>(mut self) -> Self {
        self.add_strip_rule::<T>();
        self
    }

    /// Non-consuming form of [`Gate::deny`].
    pub fn add_deny_rule<T: Policy>(&mut self) {
        self.rules.push(Rule::deny::<T>());
    }

    /// Non-consuming form of [`Gate::strip`].
    pub fn add_strip_rule<T: Policy>(&mut self) {
        self.rules.push(Rule::strip::<T>());
    }

    /// The label violations carry: the gate's name when it has one, else
    /// `"Gate"`.
    fn violation_source(&self) -> &'static str {
        self.name.unwrap_or("Gate")
    }

    /// Runs the outbound path — deny rules, strip rules, write filters —
    /// and returns the (possibly altered) data without capturing it.
    ///
    /// This is the module-boundary export of §8: the auth module wraps its
    /// public return values in `export`, and the gate rejects (or strips)
    /// configured policy classes, so sensitive data cannot escape the
    /// module even through code paths the module author forgot about.
    pub fn export(&self, data: TaintedString) -> Result<TaintedString> {
        self.check_deny(&data)?;
        let mut buf = data;
        for rule in &self.rules {
            if let Some(strip) = &rule.strip {
                if (rule.matches)(&buf) {
                    strip(&mut buf);
                }
            }
        }
        for f in &self.filters {
            buf = f.filter_write(buf, self.write_offset, &self.context)?;
        }
        Ok(buf)
    }

    /// Copy-on-write form of [`Gate::export`]: the outbound path over a
    /// [`Cow`].
    ///
    /// Deny rules and check-only filters inspect the data without taking
    /// ownership, so a `Cow::Borrowed` input crosses the whole chain
    /// without a single clone unless a strip rule or a rewriting filter
    /// actually modifies it — the zero-copy write path for callers that
    /// keep their data (see [`Gate::write_ref`]).
    pub fn export_cow<'a>(&self, data: Cow<'a, TaintedString>) -> Result<Cow<'a, TaintedString>> {
        self.check_deny(&data)?;
        let mut buf = data;
        for rule in &self.rules {
            if let Some(strip) = &rule.strip {
                // Only take ownership when the rule's class is present:
                // stripping an absent policy is a no-op and must not
                // force a copy.
                if (rule.matches)(&buf) {
                    strip(buf.to_mut());
                }
            }
        }
        for f in &self.filters {
            buf = f.filter_write_cow(buf, self.write_offset, &self.context)?;
        }
        Ok(buf)
    }

    /// Runs the deny rules against in-transit data.
    fn check_deny(&self, data: &TaintedString) -> Result<()> {
        for rule in &self.rules {
            if rule.action == RuleAction::Deny && (rule.matches)(data) {
                return Err(FlowError::Denied(
                    PolicyViolation::new(
                        self.violation_source(),
                        format!(
                            "`{}`-labeled data may not leave gate `{}`",
                            rule.class,
                            self.name.unwrap_or(self.kind.type_name()),
                        ),
                    )
                    .on_channel(self.kind.clone()),
                ));
            }
        }
        Ok(())
    }

    /// Writes `data` across the boundary.
    ///
    /// Each filter may check or alter the in-transit data; a policy
    /// violation aborts the write and nothing becomes visible in
    /// [`Gate::output`].
    pub fn write(&mut self, data: TaintedString) -> Result<()> {
        let buf = self.export(data)?;
        self.write_offset += buf.len() as u64;
        if let Some(sink) = &self.sink {
            sink(&buf);
        }
        if self.capture {
            self.written.push(buf);
        }
        Ok(())
    }

    /// Writes `data` across the boundary *by reference* — the zero-copy
    /// hot path for callers that keep their buffer (templates, retries,
    /// fan-out to several gates).
    ///
    /// When the filter chain passes the data through unmodified (the
    /// common case for the default chain), nothing is cloned on the way:
    /// a sink observes the borrow, and only a capturing gate copies once
    /// at the very end to retain the output.
    pub fn write_ref(&mut self, data: &TaintedString) -> Result<()> {
        let buf = self.export_cow(Cow::Borrowed(data))?;
        self.write_offset += buf.len() as u64;
        if let Some(sink) = &self.sink {
            sink(&buf);
        }
        if self.capture {
            // Clones only if the chain left the data borrowed.
            self.written.push(buf.into_owned());
        }
        Ok(())
    }

    /// Writes a plain (policy-free) string across the boundary.
    pub fn write_str(&mut self, data: &str) -> Result<()> {
        self.write(TaintedString::from(data))
    }

    /// Queues data on the inbound side, as if it arrived from outside.
    pub fn feed(&mut self, data: TaintedString) {
        self.inbound.push(data);
    }

    /// Reads the next queued inbound datum through the read filters.
    ///
    /// Returns `Ok(None)` when no data is queued. Filters may assign
    /// initial policies (e.g. deserialize persistent policies) or reject
    /// the data (e.g. the code-import filter of Figure 6).
    pub fn read(&mut self) -> Result<Option<TaintedString>> {
        if self.inbound.is_empty() {
            return Ok(None);
        }
        let mut buf = self.inbound.remove(0);
        let offset = self.read_offset;
        for f in &self.filters {
            buf = f.filter_read(buf, offset, &self.context)?;
        }
        self.read_offset += buf.len() as u64;
        Ok(Some(buf))
    }

    /// Calls `func` with arguments run through the outbound path and a
    /// return value run through the read filters (Table 3's `filter_func`).
    ///
    /// An encryption function is the canonical example: a strip rule on its
    /// gate makes it a declassification point for confidentiality policies
    /// (§3.2).
    pub fn call<F>(&self, args: Vec<TaintedString>, func: F) -> Result<TaintedString>
    where
        F: FnOnce(Vec<TaintedString>) -> Result<TaintedString>,
    {
        let mut filtered = Vec::with_capacity(args.len());
        for a in args {
            filtered.push(self.export(a)?);
        }
        let mut ret = func(filtered)?;
        for f in &self.filters {
            ret = f.filter_read(ret, 0, &self.context)?;
        }
        Ok(ret)
    }

    /// Everything that successfully crossed the boundary outward.
    pub fn output(&self) -> &[TaintedString] {
        &self.written
    }

    /// The outbound data concatenated into one plain string.
    pub fn output_text(&self) -> String {
        self.written.iter().map(|t| t.as_str()).collect()
    }

    /// Discards all captured output (used by output buffering, §5.5).
    pub fn clear_output(&mut self) {
        self.written.clear();
    }

    /// Removes and returns captured output produced after `mark` writes.
    ///
    /// Building block for the output-buffering mechanism: the web layer
    /// records a mark at `try`-block entry and truncates back to it when
    /// the block raises.
    pub fn truncate_output(&mut self, mark: usize) -> Vec<TaintedString> {
        self.written.split_off(mark.min(self.written.len()))
    }

    /// Number of successful outbound writes (the "mark" for buffering).
    pub fn output_mark(&self) -> usize {
        self.written.len()
    }

    /// Running byte offset of outbound writes.
    pub fn write_offset(&self) -> u64 {
        self.write_offset
    }

    /// Running byte offset of inbound reads.
    pub fn read_offset(&self) -> u64 {
        self.read_offset
    }
}

impl fmt::Debug for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gate")
            .field("kind", &self.kind)
            .field("name", &self.name)
            .field("rules", &self.rules.len())
            .field("filters", &self.filters.len())
            .field("written", &self.written.len())
            .finish()
    }
}

/// Fluent constructor for [`Gate`]s.
///
/// A builder starts *guarded*: the built gate's filter chain begins with
/// [`DefaultFilter`] (Figure 3), followed by any filters added with
/// [`GateBuilder::filter`] in insertion order. Call
/// [`GateBuilder::unguarded`] for a gate with no default filter.
///
/// ```
/// use resin_core::prelude::*;
///
/// let gate = Gate::builder(GateKind::Email)
///     .context("email", "u@foo.com")
///     .build();
/// assert_eq!(gate.context().get_str("email"), Some("u@foo.com"));
/// assert_eq!(gate.filter_count(), 1); // the default filter
/// ```
pub struct GateBuilder {
    kind: GateKind,
    name: Option<&'static str>,
    context: Context,
    rules: Vec<Rule>,
    filters: Vec<Box<dyn Filter>>,
    guarded: bool,
    capture: bool,
    sink: Option<Sink>,
}

impl GateBuilder {
    /// Starts a guarded builder for a gate of `kind`.
    pub fn new(kind: GateKind) -> Self {
        let context = Context::new(kind.clone());
        GateBuilder {
            kind,
            name: None,
            context,
            rules: Vec::new(),
            filters: Vec::new(),
            guarded: true,
            capture: true,
            sink: None,
        }
    }

    /// Names the gate (module and function boundaries).
    pub fn name(mut self, name: &'static str) -> Self {
        self.name = Some(name);
        self
    }

    /// Adds a typed context entry (string, integer, or boolean).
    pub fn context(mut self, key: impl Into<String>, value: impl Into<CtxValue>) -> Self {
        self.context.set(key, value);
        self
    }

    /// Appends a filter to the chain.
    pub fn filter<F: Filter + 'static>(self, filter: F) -> Self {
        self.filter_boxed(Box::new(filter))
    }

    /// Appends an already-boxed filter to the chain.
    pub fn filter_boxed(mut self, filter: Box<dyn Filter>) -> Self {
        self.filters.push(filter);
        self
    }

    /// Drops the default filter: the gate runs only explicit filters.
    pub fn unguarded(mut self) -> Self {
        self.guarded = false;
        self
    }

    /// Data carrying a `T` policy may not cross outward.
    pub fn deny<T: Policy>(mut self) -> Self {
        self.rules.push(Rule::deny::<T>());
        self
    }

    /// Crossing outward removes all `T` policies (declassification).
    pub fn strip<T: Policy>(mut self) -> Self {
        self.rules.push(Rule::strip::<T>());
        self
    }

    /// Enables or disables the capture buffer (default: enabled).
    ///
    /// Disable it on hot paths where output only flows to a [`sink`]
    /// (or nowhere), so the gate does not accumulate memory.
    ///
    /// [`sink`]: GateBuilder::sink
    pub fn capture(mut self, on: bool) -> Self {
        self.capture = on;
        self
    }

    /// Installs a callback observing everything that crosses outward.
    ///
    /// The sink runs before the capture buffer (if any) records the datum —
    /// the instrumentation point the ROADMAP's batching/caching work hangs
    /// off.
    pub fn sink<F>(mut self, sink: F) -> Self
    where
        F: Fn(&TaintedString) + Send + Sync + 'static,
    {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Builds the gate.
    pub fn build(self) -> Gate {
        let mut filters: Vec<Box<dyn Filter>> =
            Vec::with_capacity(self.filters.len() + usize::from(self.guarded));
        if self.guarded {
            filters.push(Box::new(DefaultFilter));
        }
        filters.extend(self.filters);
        Gate {
            kind: self.kind,
            name: self.name,
            context: self.context,
            rules: self.rules,
            filters,
            capture: self.capture,
            sink: self.sink,
            written: Vec::new(),
            inbound: Vec::new(),
            write_offset: 0,
            read_offset: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FnFilter;
    use crate::policies::{PasswordPolicy, UntrustedData};
    use crate::policy::PolicyRef;
    use std::sync::{Arc, Mutex};

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    #[test]
    fn kind_type_names() {
        assert_eq!(GateKind::Http.type_name(), "http");
        assert_eq!(GateKind::Email.type_name(), "email");
        assert_eq!(GateKind::Custom("enc").type_name(), "enc");
        assert_eq!(GateKind::CodeImport.to_string(), "code");
        assert_eq!(GateKind::IO_SURFACES.len(), 7);
    }

    #[test]
    fn guarded_gate_enforces_password_policy() {
        let mut http = Gate::new(GateKind::Http);
        let mut secret = TaintedString::from("s3cret");
        secret.add_policy(pw("u@foo.com"));
        let err = http.write(secret.clone()).unwrap_err();
        assert!(err.is_violation());
        assert_eq!(http.output_text(), "", "nothing visible after violation");

        let mut mail = Gate::builder(GateKind::Email)
            .context("email", "u@foo.com")
            .build();
        mail.write(secret).unwrap();
        assert_eq!(mail.output_text(), "s3cret");
    }

    #[test]
    fn unguarded_gate_leaks() {
        let mut g = Gate::unguarded(GateKind::Http);
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@foo.com"));
        g.write(secret).unwrap();
        assert_eq!(g.output_text(), "pw", "no filters, no protection");
    }

    #[test]
    fn deny_rule_blocks_labeled_data() {
        let auth = Gate::internal("auth").deny::<PasswordPolicy>();
        let secret = TaintedString::with_policy("s3cret", pw("u@x"));
        let err = auth.export(secret).unwrap_err();
        assert!(err.is_violation());
        assert!(auth.export(TaintedString::from("public")).is_ok());
    }

    #[test]
    fn strip_rule_declassifies_before_default_filter() {
        // A guarded gate with a strip rule: the strip runs before the
        // default filter's export_check, so the declassified data passes
        // even where the policy would deny.
        let mut g = Gate::builder(GateKind::Http)
            .strip::<PasswordPolicy>()
            .build();
        let secret = TaintedString::with_policy("s3cret", pw("u@x"));
        g.write(secret).unwrap();
        assert_eq!(g.output_text(), "s3cret");
        assert!(!g.output()[0].has_policy::<PasswordPolicy>());
    }

    #[test]
    fn rules_compose() {
        let g = Gate::internal("m")
            .deny::<UntrustedData>()
            .strip::<PasswordPolicy>();
        assert_eq!(g.rule_count(), 2);
        let secret = TaintedString::with_policy("s", pw("u@x"));
        assert!(g.export(secret).unwrap().label().is_empty());
        let mixed = TaintedString::with_policy("x", Arc::new(UntrustedData::new()));
        assert!(g.export(mixed).is_err());
    }

    #[test]
    fn filter_chain_runs_in_insertion_order() {
        let g = Gate::builder(GateKind::Custom("order"))
            .unguarded()
            .filter(FnFilter::on_write(|d, _, _| {
                Ok(TaintedString::from(format!("{}a", d.as_str()).as_str()))
            }))
            .filter(FnFilter::on_write(|d, _, _| {
                Ok(TaintedString::from(format!("{}b", d.as_str()).as_str()))
            }))
            .build();
        let out = g.export(TaintedString::from("x")).unwrap();
        assert_eq!(out.as_str(), "xab");
    }

    #[test]
    fn call_guards_function_boundary() {
        // An encryption function is a natural boundary: strip passwords.
        let enc = Gate::internal("encrypt").strip::<PasswordPolicy>();
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@x"));
        let out = enc
            .call(vec![secret], |args| {
                let s: String = args[0].as_str().chars().rev().collect();
                Ok(TaintedString::from(s.as_str()))
            })
            .unwrap();
        assert_eq!(out.as_str(), "wp");
        assert!(!out.has_policy::<PasswordPolicy>());
    }

    #[test]
    fn write_ref_is_equivalent_to_write() {
        let mut g = Gate::new(GateKind::Http);
        let body = TaintedString::from("shared template body");
        g.write_ref(&body).unwrap();
        g.write_ref(&body).unwrap();
        assert_eq!(g.output_text(), "shared template bodyshared template body");
        assert_eq!(g.write_offset(), 40);

        // A violation through the borrowed path leaves nothing visible.
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@x"));
        assert!(g.write_ref(&secret).is_err());
        assert_eq!(g.output_mark(), 2);
    }

    #[test]
    fn write_ref_strip_rule_copies_only_on_match() {
        // Strip rules must not force a copy when their class is absent,
        // and must still declassify (on a private copy) when present.
        let mut g = Gate::builder(GateKind::Http)
            .strip::<PasswordPolicy>()
            .build();
        let plain = TaintedString::from("no password here");
        g.write_ref(&plain).unwrap();

        let secret = TaintedString::with_policy("s3cret", pw("u@x"));
        g.write_ref(&secret).unwrap();
        assert!(
            secret.has_policy::<PasswordPolicy>(),
            "caller's copy untouched"
        );
        assert!(
            !g.output()[1].has_policy::<PasswordPolicy>(),
            "output stripped"
        );
    }

    #[test]
    fn export_cow_borrows_through_checking_chain() {
        use std::borrow::Cow;
        let g = Gate::new(GateKind::Http);
        let data = TaintedString::from("plain");
        let out = g.export_cow(Cow::Borrowed(&data)).unwrap();
        assert!(
            matches!(out, Cow::Borrowed(_)),
            "check-only chain must not clone"
        );

        // A rewriting filter takes ownership.
        let g2 = Gate::builder(GateKind::Http)
            .filter(FnFilter::on_write(|d, _, _| Ok(d.replace_str("a", "b"))))
            .build();
        let out2 = g2.export_cow(Cow::Borrowed(&data)).unwrap();
        assert!(matches!(out2, Cow::Owned(_)));
        assert_eq!(out2.as_str(), "plbin");
    }

    #[test]
    fn read_pulls_through_filters() {
        let mut g = Gate::new(GateKind::Socket);
        assert!(g.read().unwrap().is_none());
        g.feed(TaintedString::from("in"));
        assert_eq!(g.read().unwrap().unwrap().as_str(), "in");
        assert!(g.read().unwrap().is_none());
    }

    #[test]
    fn capture_off_discards_but_offsets_advance() {
        let mut g = Gate::builder(GateKind::Http).capture(false).build();
        g.write_str("abc").unwrap();
        g.write_str("de").unwrap();
        assert!(g.output().is_empty());
        assert_eq!(g.write_offset(), 5);
    }

    #[test]
    fn sink_observes_surviving_writes() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut g = Gate::builder(GateKind::Http)
            .sink(move |d| seen2.lock().unwrap().push(d.as_str().to_string()))
            .build();
        g.write_str("ok").unwrap();
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@x"));
        let _ = g.write(secret);
        assert_eq!(*seen.lock().unwrap(), vec!["ok".to_string()]);
    }

    #[test]
    fn truncate_output_supports_buffering() {
        let mut g = Gate::new(GateKind::Http);
        g.write_str("keep").unwrap();
        let mark = g.output_mark();
        g.write_str("discard1").unwrap();
        g.write_str("discard2").unwrap();
        let dropped = g.truncate_output(mark);
        assert_eq!(dropped.len(), 2);
        assert_eq!(g.output_text(), "keep");
    }

    #[test]
    fn builder_composition() {
        let g = Gate::builder(GateKind::Custom("composite"))
            .name("composite")
            .context("user", "alice")
            .context("attempts", 3i64)
            .context("admin", true)
            .deny::<UntrustedData>()
            .filter(FnFilter::on_write(|d, _, _| Ok(d)))
            .build();
        assert_eq!(g.name(), Some("composite"));
        assert_eq!(g.context().get_str("user"), Some("alice"));
        assert_eq!(g.context().get_int("attempts"), Some(3));
        assert!(g.context().get_flag("admin"));
        assert_eq!(g.filter_count(), 2, "default filter + explicit filter");
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    fn debug_format_names_gate() {
        let g = Gate::internal("auth").deny::<PasswordPolicy>();
        let s = format!("{g:?}");
        assert!(s.contains("auth"));
    }
}
