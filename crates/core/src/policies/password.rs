//! The password-disclosure policy of Figure 2.

use std::any::Any;

use crate::context::Context;
use crate::error::PolicyViolation;
use crate::policy::Policy;

/// Data Flow Assertion 5: *user `u`'s password may leave the system only via
/// email to `u`'s email address, or to the program chair.*
///
/// The policy stores the account holder's email address. `export_check`
/// allows the flow when the boundary is an email channel whose recipient
/// matches, or an HTTP channel whose context carries the `priv_chair` flag
/// (the paper reuses HotCRP's `$Me->privChair`). Everything else — an HTTP
/// response to a regular user, a socket, a stray file fetch — is an
/// unauthorized disclosure.
///
/// The myPHPscripts variant of the assertion (§6.3) is the same policy with
/// the chair exception disabled ([`PasswordPolicy::strict`]).
#[derive(Debug, Clone)]
pub struct PasswordPolicy {
    email: String,
    allow_chair: bool,
}

impl PasswordPolicy {
    /// Password policy for the account with address `email`, with the
    /// HotCRP program-chair exception enabled.
    pub fn new(email: impl Into<String>) -> Self {
        PasswordPolicy {
            email: email.into(),
            allow_chair: true,
        }
    }

    /// Variant without the program-chair exception (myPHPscripts login).
    pub fn strict(email: impl Into<String>) -> Self {
        PasswordPolicy {
            email: email.into(),
            allow_chair: false,
        }
    }

    /// The account holder's email address.
    pub fn email(&self) -> &str {
        &self.email
    }

    /// Whether disclosure to the program chair over HTTP is allowed.
    pub fn allows_chair(&self) -> bool {
        self.allow_chair
    }
}

impl Policy for PasswordPolicy {
    fn name(&self) -> &str {
        "PasswordPolicy"
    }

    fn export_check(&self, context: &Context) -> Result<(), PolicyViolation> {
        match context.channel_type() {
            "email" if context.get_str("email") == Some(self.email.as_str()) => {
                return Ok(());
            }
            "http" if self.allow_chair && context.get_flag("priv_chair") => {
                return Ok(());
            }
            _ => {}
        }
        Err(PolicyViolation::new(
            self.name(),
            format!("unauthorized disclosure of password for {}", self.email),
        ))
    }

    fn serialize_fields(&self) -> Vec<(String, String)> {
        vec![
            ("email".to_string(), self.email.clone()),
            ("allow_chair".to_string(), self.allow_chair.to_string()),
        ]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn email_ctx(to: &str) -> Context {
        let mut c = Context::new(GateKind::Email);
        c.set_str("email", to);
        c
    }

    #[test]
    fn allows_own_email_only() {
        let p = PasswordPolicy::new("u@foo.com");
        assert!(p.export_check(&email_ctx("u@foo.com")).is_ok());
        assert!(p.export_check(&email_ctx("evil@foo.com")).is_err());
    }

    #[test]
    fn allows_chair_over_http() {
        let p = PasswordPolicy::new("u@foo.com");
        let mut http = Context::new(GateKind::Http);
        assert!(p.export_check(&http).is_err(), "regular user blocked");
        http.set("priv_chair", true);
        assert!(p.export_check(&http).is_ok(), "chair allowed");
    }

    #[test]
    fn strict_blocks_chair() {
        let p = PasswordPolicy::strict("u@foo.com");
        let mut http = Context::new(GateKind::Http);
        http.set("priv_chair", true);
        assert!(p.export_check(&http).is_err());
        assert!(!p.allows_chair());
    }

    #[test]
    fn blocks_other_channels() {
        let p = PasswordPolicy::new("u@foo.com");
        assert!(p.export_check(&Context::new(GateKind::Socket)).is_err());
        assert!(p.export_check(&Context::new(GateKind::Pipe)).is_err());
    }

    #[test]
    fn serializes_fields() {
        let p = PasswordPolicy::new("u@foo.com");
        let fields = p.serialize_fields();
        assert!(fields.contains(&("email".to_string(), "u@foo.com".to_string())));
    }
}
