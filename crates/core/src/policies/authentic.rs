//! The intersection-merge example policy (§3.4.2).

use std::any::Any;

use crate::policy::{MergeDecision, Policy};
use crate::policy_set::PolicySet;

/// Marks data whose authenticity has been verified.
///
/// Uses the *intersection* merge strategy: the result of combining operands
/// is authentic only if **all** operands were authentic. This is the
/// paper's counterpoint to `UntrustedData`'s union strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthenticData;

impl AuthenticData {
    /// Creates the marker.
    pub fn new() -> Self {
        AuthenticData
    }
}

impl Policy for AuthenticData {
    fn name(&self) -> &str {
        "AuthenticData"
    }

    fn merge(&self, others: &PolicySet) -> MergeDecision {
        if others.has::<AuthenticData>() {
            MergeDecision::Keep
        } else {
            MergeDecision::Drop
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_intersection() {
        let p = AuthenticData::new();
        let with = PolicySet::single(std::sync::Arc::new(AuthenticData::new()));
        let without = PolicySet::empty();
        assert!(matches!(p.merge(&with), MergeDecision::Keep));
        assert!(matches!(p.merge(&without), MergeDecision::Drop));
    }
}
