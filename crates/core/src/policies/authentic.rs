//! The intersection-merge example policy (§3.4.2).

use std::any::Any;

use crate::label::Label;
use crate::policy::{MergeDecision, Policy};

/// Marks data whose authenticity has been verified.
///
/// Uses the *intersection* merge strategy: the result of combining operands
/// is authentic only if **all** operands were authentic. This is the
/// paper's counterpoint to `UntrustedData`'s union strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthenticData;

impl AuthenticData {
    /// Creates the marker.
    pub fn new() -> Self {
        AuthenticData
    }
}

impl Policy for AuthenticData {
    fn name(&self) -> &str {
        "AuthenticData"
    }

    fn merge(&self, others: Label) -> MergeDecision {
        if others.has::<AuthenticData>() {
            MergeDecision::Keep
        } else {
            MergeDecision::Drop
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_intersection() {
        let p = AuthenticData::new();
        let with =
            Label::of(&(std::sync::Arc::new(AuthenticData::new()) as crate::policy::PolicyRef));
        assert!(matches!(p.merge(with), MergeDecision::Keep));
        assert!(matches!(p.merge(Label::EMPTY), MergeDecision::Drop));
    }
}
