//! Access control lists and the MoinMoin-style page policy (Figure 5).

use std::any::Any;
use std::fmt;

use crate::context::Context;
use crate::error::PolicyViolation;
use crate::policy::Policy;

/// A right an ACL can grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Right {
    /// Permission to read the protected data.
    Read,
    /// Permission to modify the protected data.
    Write,
    /// Permission to administer the ACL itself.
    Admin,
}

impl Right {
    /// Single-letter code used in the serialized form (`r`, `w`, `a`).
    pub fn code(self) -> char {
        match self {
            Right::Read => 'r',
            Right::Write => 'w',
            Right::Admin => 'a',
        }
    }

    /// Parses a single-letter code.
    pub fn from_code(c: char) -> Option<Right> {
        match c {
            'r' => Some(Right::Read),
            'w' => Some(Right::Write),
            'a' => Some(Right::Admin),
            _ => None,
        }
    }
}

/// An access control list: an ordered list of `(principal, rights)` entries.
///
/// The principal `*` matches any user. Lookup scans entries in order and
/// grants the right if any matching entry includes it, mirroring wiki-style
/// ACLs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Acl {
    entries: Vec<(String, Vec<Right>)>,
}

impl Acl {
    /// An empty ACL (denies everyone).
    pub fn new() -> Self {
        Acl::default()
    }

    /// Builder: grants `rights` to `principal`.
    pub fn grant(mut self, principal: impl Into<String>, rights: &[Right]) -> Self {
        self.entries.push((principal.into(), rights.to_vec()));
        self
    }

    /// Grants `rights` to `principal` in place.
    pub fn add(&mut self, principal: impl Into<String>, rights: &[Right]) {
        self.entries.push((principal.into(), rights.to_vec()));
    }

    /// Revokes all entries for `principal`.
    pub fn revoke(&mut self, principal: &str) {
        self.entries.retain(|(p, _)| p != principal);
    }

    /// True if `user` holds `right` (directly or via the `*` wildcard).
    pub fn may(&self, user: &str, right: Right) -> bool {
        self.entries
            .iter()
            .any(|(p, rights)| (p == user || p == "*") && rights.contains(&right))
    }

    /// All principals with an entry (excluding the wildcard).
    pub fn principals(&self) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .map(|(p, _)| p.as_str())
            .filter(|p| *p != "*")
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the ACL has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized form: `alice:rw,bob:r,*:r`.
    pub fn encode(&self) -> String {
        self.entries
            .iter()
            .map(|(p, rights)| {
                let codes: String = rights.iter().map(|r| r.code()).collect();
                format!("{p}:{codes}")
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the serialized form produced by [`Acl::encode`].
    pub fn decode(s: &str) -> Option<Acl> {
        let mut acl = Acl::new();
        if s.is_empty() {
            return Some(acl);
        }
        for entry in s.split(',') {
            let (p, codes) = entry.split_once(':')?;
            let mut rights = Vec::new();
            for c in codes.chars() {
                rights.push(Right::from_code(c)?);
            }
            acl.entries.push((p.to_string(), rights));
        }
        Some(acl)
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Data Flow Assertion 4: *wiki page `p` may flow out of the system only to
/// a user on `p`'s ACL* (Figure 5).
///
/// The policy carries a copy of the page's ACL; `export_check` matches the
/// channel's `user` context entry against the ACL's read right. Channels
/// with no authenticated user deny — data guarded by a `PagePolicy` cannot
/// leak through an anonymous channel.
#[derive(Debug, Clone)]
pub struct PagePolicy {
    acl: Acl,
}

impl PagePolicy {
    /// Page policy enforcing `acl`.
    pub fn new(acl: Acl) -> Self {
        PagePolicy { acl }
    }

    /// The embedded ACL.
    pub fn acl(&self) -> &Acl {
        &self.acl
    }
}

impl Policy for PagePolicy {
    fn name(&self) -> &str {
        "PagePolicy"
    }

    fn export_check(&self, context: &Context) -> Result<(), PolicyViolation> {
        let Some(user) = context.get_str("user") else {
            return Err(PolicyViolation::new(
                self.name(),
                "insufficient access: no authenticated user on channel",
            ));
        };
        if self.acl.may(user, Right::Read) {
            Ok(())
        } else {
            Err(PolicyViolation::new(
                self.name(),
                format!("insufficient access: `{user}` not on read ACL"),
            ))
        }
    }

    fn serialize_fields(&self) -> Vec<(String, String)> {
        vec![("acl".to_string(), self.acl.encode())]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn acl() -> Acl {
        Acl::new()
            .grant("alice", &[Right::Read, Right::Write])
            .grant("bob", &[Right::Read])
    }

    #[test]
    fn acl_lookup() {
        let a = acl();
        assert!(a.may("alice", Right::Read));
        assert!(a.may("alice", Right::Write));
        assert!(a.may("bob", Right::Read));
        assert!(!a.may("bob", Right::Write));
        assert!(!a.may("mallory", Right::Read));
    }

    #[test]
    fn wildcard_matches_anyone() {
        let a = Acl::new().grant("*", &[Right::Read]);
        assert!(a.may("anyone", Right::Read));
        assert!(!a.may("anyone", Right::Write));
        assert_eq!(a.principals().count(), 0, "wildcard not a principal");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = acl().grant("*", &[Right::Read]);
        let s = a.encode();
        assert_eq!(s, "alice:rw,bob:r,*:r");
        let b = Acl::decode(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(Acl::decode("").unwrap(), Acl::new());
        assert!(Acl::decode("bad").is_none());
        assert!(Acl::decode("x:q").is_none());
    }

    #[test]
    fn revoke_removes() {
        let mut a = acl();
        a.revoke("alice");
        assert!(!a.may("alice", Right::Read));
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn page_policy_enforces_read_acl() {
        let p = PagePolicy::new(acl());
        let mut ctx = Context::new(GateKind::Http);
        assert!(p.export_check(&ctx).is_err(), "anonymous denied");
        ctx.set_str("user", "bob");
        assert!(p.export_check(&ctx).is_ok());
        ctx.set_str("user", "mallory");
        let err = p.export_check(&ctx).unwrap_err();
        assert!(err.message.contains("mallory"));
    }

    #[test]
    fn page_policy_serializes_acl() {
        let p = PagePolicy::new(acl());
        let fields = p.serialize_fields();
        assert_eq!(fields[0].0, "acl");
        assert_eq!(fields[0].1, "alice:rw,bob:r");
    }
}
