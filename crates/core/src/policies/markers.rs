//! Marker policies: policies whose *presence* (not their `export_check`)
//! carries the assertion, interpreted by programmer-specified filters (§5.2,
//! §5.3).

use std::any::Any;

use crate::context::Context;
use crate::error::PolicyViolation;
use crate::policy::Policy;

/// Marks data that arrived from an untrusted source (user input, whois
/// responses, uploaded files...). Uses the union merge strategy: anything
/// computed from untrusted data stays untrusted.
#[derive(Debug, Clone, Default)]
pub struct UntrustedData {
    source: Option<String>,
}

impl UntrustedData {
    /// An untrusted-data marker with no recorded source.
    pub fn new() -> Self {
        UntrustedData { source: None }
    }

    /// An untrusted-data marker recording where the data came from
    /// (useful in violation messages: "http_param", "whois", "upload"...).
    pub fn from_source(source: impl Into<String>) -> Self {
        UntrustedData {
            source: Some(source.into()),
        }
    }

    /// The recorded source, if any.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }
}

impl Policy for UntrustedData {
    fn name(&self) -> &str {
        "UntrustedData"
    }

    fn serialize_fields(&self) -> Vec<(String, String)> {
        match &self.source {
            Some(s) => vec![("source".to_string(), s.clone())],
            None => Vec::new(),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Evidence that data passed through the SQL sanitization function (§5.3).
///
/// The SQL filter requires every `UntrustedData` byte in a query to *also*
/// carry `SqlSanitized`. Appending evidence instead of removing
/// `UntrustedData` lets the assertion distinguish SQL-sanitized from
/// HTML-sanitized data — catching use of the wrong sanitizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlSanitized;

impl SqlSanitized {
    /// Creates the marker.
    pub fn new() -> Self {
        SqlSanitized
    }
}

impl Policy for SqlSanitized {
    fn name(&self) -> &str {
        "SqlSanitized"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Evidence that data passed through the HTML sanitization function (§5.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct HtmlSanitized;

impl HtmlSanitized {
    /// Creates the marker.
    pub fn new() -> Self {
        HtmlSanitized
    }
}

impl Policy for HtmlSanitized {
    fn name(&self) -> &str {
        "HtmlSanitized"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Marks code the developer approved for execution (Figure 6).
///
/// The policy itself is empty; the interpreter's import filter requires
/// every byte of imported code to carry it. Adversary-uploaded files lack
/// the approval and are rejected, whether reached through `include`,
/// `eval`, or a direct HTTP request.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodeApproval;

impl CodeApproval {
    /// Creates the marker.
    pub fn new() -> Self {
        CodeApproval
    }
}

impl Policy for CodeApproval {
    fn name(&self) -> &str {
        "CodeApproval"
    }

    fn export_check(&self, _context: &Context) -> Result<(), PolicyViolation> {
        // Approved code may flow anywhere; the *absence* of this policy is
        // what the import filter rejects.
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A policy with no fields and no behaviour: the "empty policy" used by the
/// Table 5 microbenchmarks to measure pure propagation cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyPolicy;

impl EmptyPolicy {
    /// Creates the empty policy.
    pub fn new() -> Self {
        EmptyPolicy
    }
}

impl Policy for EmptyPolicy {
    fn name(&self) -> &str {
        "EmptyPolicy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::policy::{policy_refs_equal, PolicyRef};
    use std::sync::Arc;

    #[test]
    fn markers_allow_export() {
        let ctx = Context::new(GateKind::Http);
        assert!(UntrustedData::new().export_check(&ctx).is_ok());
        assert!(SqlSanitized::new().export_check(&ctx).is_ok());
        assert!(HtmlSanitized::new().export_check(&ctx).is_ok());
        assert!(CodeApproval::new().export_check(&ctx).is_ok());
        assert!(EmptyPolicy::new().export_check(&ctx).is_ok());
    }

    #[test]
    fn untrusted_source_recorded() {
        let p = UntrustedData::from_source("whois");
        assert_eq!(p.source(), Some("whois"));
        assert_eq!(p.serialize_fields().len(), 1);
        assert!(UntrustedData::new().source().is_none());
    }

    #[test]
    fn untrusted_equality_by_source() {
        let a: PolicyRef = Arc::new(UntrustedData::new());
        let b: PolicyRef = Arc::new(UntrustedData::new());
        assert!(policy_refs_equal(&a, &b));
        let c: PolicyRef = Arc::new(UntrustedData::from_source("whois"));
        assert!(!policy_refs_equal(&a, &c), "different sources kept apart");
    }

    #[test]
    fn distinct_marker_classes() {
        let a: PolicyRef = Arc::new(SqlSanitized::new());
        let b: PolicyRef = Arc::new(HtmlSanitized::new());
        assert!(!policy_refs_equal(&a, &b));
    }
}
