//! Stock policy objects used throughout the paper's assertions (§5).
//!
//! | Policy | Paper use |
//! |---|---|
//! | [`PasswordPolicy`] | HotCRP / myPHPscripts password disclosure (Fig. 2) |
//! | [`UntrustedData`] | SQL injection & XSS tracking (§5.3) |
//! | [`SqlSanitized`], [`HtmlSanitized`] | sanitizer evidence markers (§5.3) |
//! | [`CodeApproval`] | server-side script injection (Fig. 6) |
//! | [`PagePolicy`] / [`Acl`] | MoinMoin read-ACL assertion (Fig. 5) |
//! | [`AuthenticData`] | intersection merge-strategy example (§3.4.2) |
//! | [`EmptyPolicy`] | the "empty policy" of the Table 5 microbenchmarks |

mod acl;
mod authentic;
mod markers;
mod password;

pub use acl::{Acl, PagePolicy, Right};
pub use authentic::AuthenticData;
pub use markers::{CodeApproval, EmptyPolicy, HtmlSanitized, SqlSanitized, UntrustedData};
pub use password::PasswordPolicy;
