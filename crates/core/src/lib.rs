//! # resin-core — data flow assertions for application security
//!
//! A Rust reproduction of the core runtime of **RESIN** (Yip, Wang,
//! Zeldovich, Kaashoek — *Improving Application Security with Data Flow
//! Assertions*, SOSP 2009).
//!
//! RESIN lets programmers make their plan for correct data flow explicit:
//!
//! * **Policy objects** ([`policy::Policy`]) encapsulate assertion code and
//!   metadata specific to a datum — e.g. "this password may only be emailed
//!   to its owner".
//! * **Interned labels** ([`label::Label`]) are the per-datum
//!   representation of a policy set: a 4-byte `Copy` handle into the
//!   process-wide [`label::LabelTable`], making union, equality, and dedup
//!   O(1) table hits instead of structural scans.
//! * **Data tracking** ([`taint`]) propagates labels along with data, at
//!   byte granularity, as the application copies and moves it.
//! * **Gates** ([`gate::Gate`]) define data flow boundaries (sockets,
//!   files, SQL, email, HTTP, code import, module exits, function calls)
//!   where assertions are checked by invoking each policy's `export_check`.
//!   The [`runtime::Runtime`]'s [`runtime::GateRegistry`] owns the default
//!   gate for every I/O surface.
//!
//! # Quickstart
//!
//! ```
//! use resin_core::prelude::*;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new();
//!
//! // Annotate the password with a policy object (Figure 2).
//! let mut password = TaintedString::from("s3cret");
//! password.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
//!
//! // The password propagates into an email body...
//! let mut body = TaintedString::from("Your password is: ");
//! body.push_tainted(&password);
//!
//! // ...carrying its interned label with it...
//! assert!(body.label().has::<PasswordPolicy>());
//!
//! // ...and the registry's default gates enforce the assertion.
//! let mut http = rt.open(GateKind::Http);
//! assert!(http.write(body.clone()).is_err()); // disclosure prevented
//!
//! let mut email = rt.open(GateKind::Email);
//! email.context_mut().set_str("email", "u@foo.com");
//! assert!(email.write(body).is_ok()); // owner's address: allowed
//! ```

pub mod context;
pub mod error;
pub mod filter;
pub mod gate;
pub mod label;
pub mod merge;
pub mod policies;
pub mod policy;
pub mod policy_set;
pub mod runtime;
pub mod serialize;
pub mod sync;
pub mod taint;

/// One-stop imports for applications using the runtime (the v3 surface).
///
/// The deprecated `PolicySet` view (and its `serialize_set` /
/// `deserialize_set` helpers) is re-exported so label-oblivious code keeps
/// compiling, but new code should use `Label` / `PolicyId` and the
/// `serialize_label` / `deserialize_label` helpers.
pub mod prelude {
    pub use crate::context::{Context, CtxValue};
    pub use crate::error::{FlowError, PolicyViolation, Result, SerializeError};
    pub use crate::filter::{DefaultFilter, Filter, FnFilter};
    pub use crate::gate::{Gate, GateBuilder, GateKind};
    pub use crate::label::{
        EpochPin, Label, LabelTable, LabelTableStats, PolicyId, PolicyInterner,
        PolicyInternerStats, SweepReport,
    };
    pub use crate::merge::{merge_many, merge_sets};
    pub use crate::policies::{
        Acl, AuthenticData, CodeApproval, EmptyPolicy, HtmlSanitized, PagePolicy, PasswordPolicy,
        Right, SqlSanitized, UntrustedData,
    };
    pub use crate::policy::{downcast_policy, MergeDecision, Policy, PolicyRef};
    pub use crate::runtime::{GateFactory, GateRegistry, Runtime};
    pub use crate::serialize::{
        deserialize_label, deserialize_policy, deserialize_spans, register_policy_class,
        serialize_label, serialize_policy, serialize_spans,
    };
    pub use crate::taint::{
        policy_add, policy_get, policy_remove, Labeled, Tainted, TaintedStrBuilder, TaintedString,
    };

    // Deprecated compatibility surface (the PolicySet generation).
    #[allow(deprecated)]
    pub use crate::policy_set::PolicySet;
    #[allow(deprecated)]
    pub use crate::serialize::{deserialize_set, serialize_set};
}

pub use prelude::*;
