//! # resin-core — data flow assertions for application security
//!
//! A Rust reproduction of the core runtime of **RESIN** (Yip, Wang,
//! Zeldovich, Kaashoek — *Improving Application Security with Data Flow
//! Assertions*, SOSP 2009).
//!
//! RESIN lets programmers make their plan for correct data flow explicit:
//!
//! * **Policy objects** ([`policy::Policy`]) encapsulate assertion code and
//!   metadata specific to a datum — e.g. "this password may only be emailed
//!   to its owner".
//! * **Data tracking** ([`taint`]) propagates policy objects along with
//!   data, at byte granularity, as the application copies and moves it.
//! * **Filter objects** ([`filter::Filter`]) define data flow boundaries
//!   (sockets, files, SQL, email, HTTP, code import) where assertions are
//!   checked by invoking each policy's `export_check`.
//!
//! # Quickstart
//!
//! ```
//! use resin_core::prelude::*;
//! use std::sync::Arc;
//!
//! // Annotate the password with a policy object (Figure 2).
//! let mut password = TaintedString::from("s3cret");
//! password.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
//!
//! // The password propagates into an email body...
//! let mut body = TaintedString::from("Your password is: ");
//! body.push_tainted(&password);
//!
//! // ...and the channel's default filter enforces the assertion.
//! let mut http = Channel::new(ChannelKind::Http);
//! assert!(http.write(body.clone()).is_err()); // disclosure prevented
//!
//! let mut email = Channel::new(ChannelKind::Email);
//! email.context_mut().set_str("email", "u@foo.com");
//! assert!(email.write(body).is_ok()); // owner's address: allowed
//! ```

pub mod boundary;
pub mod channel;
pub mod context;
pub mod error;
pub mod filter;
pub mod merge;
pub mod policies;
pub mod policy;
pub mod policy_set;
pub mod serialize;
pub mod taint;

/// One-stop imports for applications using the runtime.
pub mod prelude {
    pub use crate::channel::{Channel, ChannelKind};
    pub use crate::context::{Context, CtxValue};
    pub use crate::error::{PolicyViolation, ResinError, Result, SerializeError};
    pub use crate::filter::{DefaultFilter, Filter, FnFilter, FuncBoundary};
    pub use crate::merge::{merge_many, merge_sets};
    pub use crate::policies::{
        Acl, AuthenticData, CodeApproval, EmptyPolicy, HtmlSanitized, PagePolicy, PasswordPolicy,
        Right, SqlSanitized, UntrustedData,
    };
    pub use crate::policy::{downcast_policy, MergeDecision, Policy, PolicyRef};
    pub use crate::policy_set::PolicySet;
    pub use crate::serialize::{
        deserialize_policy, deserialize_set, deserialize_spans, register_policy_class,
        serialize_policy, serialize_set, serialize_spans,
    };
    pub use crate::taint::{
        policy_add, policy_get, policy_remove, Labeled, Tainted, TaintedString,
    };
}

pub use prelude::*;
