//! Persistent policies: serializing policy objects to storage (§3.4.1).
//!
//! RESIN serializes only the *class name and data fields* of a policy
//! object, so programmers can evolve a policy class's code without
//! migrating persisted policies. Deserialization looks the class name up in
//! a registry and rebuilds the object from its fields.
//!
//! The wire format is a compact text encoding:
//!
//! ```text
//! policy  :=  Name{key=value;key=value}
//! set     :=  policy,policy,...
//! spans   :=  #table#span;span;...        (interned format)
//! table   :=  policy,policy,...           (deduplicated, indexed from 0)
//! span    :=  start..end|idx,idx,...      (indexes into the table)
//! ```
//!
//! Metacharacters inside names/keys/values are `%XX`-escaped. The spans
//! format persists the **deduplicated policy table once** and has each
//! span reference table indexes — the serialized twin of the in-memory
//! [`Label`] interning: a string with a thousand spans over two distinct
//! policies stores two policy bodies, not a thousand. The legacy format
//! (`start..end|set;...`, inline sets per span) is still parsed on read.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::error::SerializeError;
use crate::label::Label;
use crate::policies::Acl;
use crate::policies::{
    AuthenticData, CodeApproval, EmptyPolicy, HtmlSanitized, PagePolicy, PasswordPolicy,
    SqlSanitized, UntrustedData,
};
use crate::policy::PolicyRef;
#[allow(deprecated)]
use crate::policy_set::PolicySet;
use crate::taint::TaintedString;

/// The fields of a serialized policy.
pub type FieldMap = BTreeMap<String, String>;

/// A function that reconstructs a policy object from its fields.
pub type Deserializer = Arc<dyn Fn(&FieldMap) -> Result<PolicyRef, SerializeError> + Send + Sync>;

fn registry() -> &'static RwLock<HashMap<String, Deserializer>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Deserializer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map: HashMap<String, Deserializer> = HashMap::new();
        install_defaults(&mut map);
        RwLock::new(map)
    })
}

/// Registers a policy class for deserialization.
///
/// Applications call this once (e.g. at startup) for each custom policy
/// class they persist; the stock policies are pre-registered.
pub fn register_policy_class(
    name: impl Into<String>,
    deserializer: impl Fn(&FieldMap) -> Result<PolicyRef, SerializeError> + Send + Sync + 'static,
) {
    crate::sync::wlock(registry()).insert(name.into(), Arc::new(deserializer));
}

/// True if `name` is a registered policy class.
pub fn is_registered(name: &str) -> bool {
    crate::sync::rlock(registry()).contains_key(name)
}

fn field(fields: &FieldMap, class: &str, key: &str) -> Result<String, SerializeError> {
    fields
        .get(key)
        .cloned()
        .ok_or_else(|| SerializeError::MissingField {
            class: class.to_string(),
            field: key.to_string(),
        })
}

fn install_defaults(map: &mut HashMap<String, Deserializer>) {
    map.insert(
        "PasswordPolicy".into(),
        Arc::new(|f: &FieldMap| {
            let email = field(f, "PasswordPolicy", "email")?;
            let chair = f.get("allow_chair").map(|v| v == "true").unwrap_or(true);
            let p = if chair {
                PasswordPolicy::new(email)
            } else {
                PasswordPolicy::strict(email)
            };
            Ok(Arc::new(p) as PolicyRef)
        }),
    );
    map.insert(
        "UntrustedData".into(),
        Arc::new(|f: &FieldMap| {
            let p = match f.get("source") {
                Some(s) => UntrustedData::from_source(s.clone()),
                None => UntrustedData::new(),
            };
            Ok(Arc::new(p) as PolicyRef)
        }),
    );
    map.insert(
        "SqlSanitized".into(),
        Arc::new(|_f: &FieldMap| Ok(Arc::new(SqlSanitized::new()) as PolicyRef)),
    );
    map.insert(
        "HtmlSanitized".into(),
        Arc::new(|_f: &FieldMap| Ok(Arc::new(HtmlSanitized::new()) as PolicyRef)),
    );
    map.insert(
        "CodeApproval".into(),
        Arc::new(|_f: &FieldMap| Ok(Arc::new(CodeApproval::new()) as PolicyRef)),
    );
    map.insert(
        "AuthenticData".into(),
        Arc::new(|_f: &FieldMap| Ok(Arc::new(AuthenticData::new()) as PolicyRef)),
    );
    map.insert(
        "EmptyPolicy".into(),
        Arc::new(|_f: &FieldMap| Ok(Arc::new(EmptyPolicy::new()) as PolicyRef)),
    );
    map.insert(
        "PagePolicy".into(),
        Arc::new(|f: &FieldMap| {
            let enc = field(f, "PagePolicy", "acl")?;
            let acl = Acl::decode(&enc).ok_or_else(|| SerializeError::BadField {
                class: "PagePolicy".into(),
                field: "acl".into(),
                reason: format!("unparsable ACL `{enc}`"),
            })?;
            Ok(Arc::new(PagePolicy::new(acl)) as PolicyRef)
        }),
    );
}

// ---- escaping ----

const META: &[char] = &['%', '{', '}', ';', ',', '=', '|', '#'];

fn escape(s: &str) -> String {
    if !s.contains(META) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for b in s.bytes() {
        let c = b as char;
        if META.contains(&c) {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        } else {
            out.push(c);
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, SerializeError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| SerializeError::Malformed("truncated escape".into()))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| SerializeError::Malformed(format!("bad escape `%{hex}`")))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| SerializeError::Malformed("invalid UTF-8".into()))
}

// ---- policy / set serialization ----

/// Serializes one policy: class name plus data fields.
pub fn serialize_policy(policy: &PolicyRef) -> String {
    let fields = policy
        .serialize_fields()
        .into_iter()
        .map(|(k, v)| format!("{}={}", escape(&k), escape(&v)))
        .collect::<Vec<_>>()
        .join(";");
    format!("{}{{{}}}", escape(policy.name()), fields)
}

/// Deserializes one policy via the class registry.
pub fn deserialize_policy(s: &str) -> Result<PolicyRef, SerializeError> {
    let open = s
        .find('{')
        .ok_or_else(|| SerializeError::Malformed(format!("no `{{` in `{s}`")))?;
    if !s.ends_with('}') {
        return Err(SerializeError::Malformed(format!(
            "no trailing `}}` in `{s}`"
        )));
    }
    let name = unescape(&s[..open])?;
    let body = &s[open + 1..s.len() - 1];
    let mut fields = FieldMap::new();
    if !body.is_empty() {
        for pair in body.split(';') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| SerializeError::Malformed(format!("bad field `{pair}`")))?;
            fields.insert(unescape(k)?, unescape(v)?);
        }
    }
    let deser = crate::sync::rlock(registry())
        .get(&name)
        .cloned()
        .ok_or(SerializeError::UnknownClass(name))?;
    deser(&fields)
}

/// Serializes an interned label (comma-joined policies). The empty label
/// serializes to the empty string.
pub fn serialize_label(label: Label) -> String {
    if label.is_empty() {
        return String::new();
    }
    label
        .policies()
        .iter()
        .map(serialize_policy)
        .collect::<Vec<_>>()
        .join(",")
}

/// Deserializes a label, interning each revived policy.
///
/// The round-trip is canonical: structurally equal policies intern to the
/// same [`PolicyId`](crate::label::PolicyId), so
/// `deserialize_label(&serialize_label(l)) == l` for any `l`.
pub fn deserialize_label(s: &str) -> Result<Label, SerializeError> {
    if s.is_empty() {
        return Ok(Label::EMPTY);
    }
    let mut policies = Vec::new();
    for part in split_top_level(s, ',') {
        policies.push(deserialize_policy(part)?);
    }
    Ok(Label::from_policies(policies.iter()))
}

/// Serializes a policy set (comma-joined policies). Empty set → empty string.
#[deprecated(since = "0.3.0", note = "use `serialize_label`")]
#[allow(deprecated)]
pub fn serialize_set(set: &PolicySet) -> String {
    serialize_label(set.label())
}

/// Version of the textual policy wire format.
///
/// Version 1 was the legacy per-span inline-set encoding
/// (`start..end|set;...`); version 2 is the interned `#table#spans`
/// encoding that persists the deduplicated policy table once. Both are
/// still *parsed*; new data is always written as version 2. Durable
/// storage (`resin_store`) embeds this number in its snapshot header so a
/// future format change is detected at open time instead of surfacing as
/// garbled policies.
pub const WIRE_VERSION: u32 = 2;

/// Splits `s` on `sep` at brace depth zero — the tokenizer for every
/// comma/semicolon/hash-joined list in the wire format.
///
/// Metacharacters inside policy names and field values are `%XX`-escaped
/// by [`serialize_policy`], so brace depth is reliable: a separator inside
/// `{...}` belongs to a field, not the list. Public so storage layers
/// (e.g. `resin_store`'s snapshot encoder) can re-tokenize persisted
/// blobs without deserializing policy objects.
pub fn split_serialized(s: &str, sep: char) -> Vec<&str> {
    split_top_level(s, sep)
}

/// Splits on `sep`, but only outside `{...}` (metacharacters inside names
/// and values are escaped, so brace depth is reliable).
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Deserializes a policy set.
#[deprecated(since = "0.3.0", note = "use `deserialize_label`")]
#[allow(deprecated)]
pub fn deserialize_set(s: &str) -> Result<PolicySet, SerializeError> {
    Ok(PolicySet::from_label(deserialize_label(s)?))
}

/// Serializes the byte-range policy spans of a tainted string.
///
/// This is what the file filter stores in an extended attribute: policies
/// are tracked for file data at byte granularity, as for strings (§3.4.1).
///
/// The output is the interned format: `#table#spans`, where the table
/// lists each distinct policy once and spans reference table indexes —
/// mirroring the in-memory [`Label`] interning, so heavily-spanned data
/// pays for each distinct policy body once.
pub fn serialize_spans(data: &TaintedString) -> String {
    if data.is_untainted() {
        return String::new();
    }
    // Local dedup table: serialized policy body -> index.
    let mut table: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut spans: Vec<String> = Vec::new();
    for (r, label) in data.spans() {
        let idxs: Vec<String> = label
            .policies()
            .iter()
            .map(|p| {
                let body = serialize_policy(p);
                let i = *index.entry(body.clone()).or_insert_with(|| {
                    table.push(body);
                    table.len() - 1
                });
                i.to_string()
            })
            .collect();
        spans.push(format!("{}..{}|{}", r.start, r.end, idxs.join(",")));
    }
    format!("#{}#{}", table.join(","), spans.join(";"))
}

fn parse_range(range: &str) -> Result<(usize, usize), SerializeError> {
    let (a, b) = range
        .split_once("..")
        .ok_or_else(|| SerializeError::Malformed(format!("bad range `{range}`")))?;
    let start: usize = a
        .parse()
        .map_err(|_| SerializeError::Malformed(format!("bad start `{a}`")))?;
    let end: usize = b
        .parse()
        .map_err(|_| SerializeError::Malformed(format!("bad end `{b}`")))?;
    Ok((start, end))
}

/// Re-attaches serialized spans to `text`, producing a tainted string.
///
/// Accepts both the interned `#table#spans` format and the legacy
/// per-span-inline-set format (`start..end|set;...`).
pub fn deserialize_spans(text: &str, spans: &str) -> Result<TaintedString, SerializeError> {
    let mut out = TaintedString::from(text);
    if spans.is_empty() {
        return Ok(out);
    }
    if let Some(rest) = spans.strip_prefix('#') {
        // Interned format: `#table#spans`.
        let parts = split_top_level(rest, '#');
        let [table_src, spans_src] = parts.as_slice() else {
            return Err(SerializeError::Malformed(format!(
                "expected `#table#spans`, got `{spans}`"
            )));
        };
        let mut labels: Vec<Label> = Vec::new();
        if !table_src.is_empty() {
            for part in split_top_level(table_src, ',') {
                let policy = deserialize_policy(part)?;
                labels.push(Label::of(&policy));
            }
        }
        if spans_src.is_empty() {
            return Ok(out);
        }
        for part in split_top_level(spans_src, ';') {
            let (range, idxs) = part
                .split_once('|')
                .ok_or_else(|| SerializeError::Malformed(format!("bad span `{part}`")))?;
            let (start, end) = parse_range(range)?;
            let mut label = Label::EMPTY;
            for idx in idxs.split(',').filter(|s| !s.is_empty()) {
                let i: usize = idx
                    .parse()
                    .map_err(|_| SerializeError::Malformed(format!("bad index `{idx}`")))?;
                let l = labels.get(i).ok_or_else(|| {
                    SerializeError::Malformed(format!("index `{i}` outside the policy table"))
                })?;
                label = label.union(*l);
            }
            out.add_label_range(start..end, label);
        }
        return Ok(out);
    }
    // Legacy format: inline policy sets per span.
    for part in split_top_level(spans, ';') {
        let (range, set) = part
            .split_once('|')
            .ok_or_else(|| SerializeError::Malformed(format!("bad span `{part}`")))?;
        let (start, end) = parse_range(range)?;
        let label = deserialize_label(set)?;
        out.add_label_range(start..end, label);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Acl, Right};
    use crate::policy::downcast_policy;

    #[test]
    fn password_policy_roundtrip() {
        let p: PolicyRef = Arc::new(PasswordPolicy::new("u@foo.com"));
        let s = serialize_policy(&p);
        assert_eq!(s, "PasswordPolicy{email=u@foo.com;allow_chair=true}");
        let q = deserialize_policy(&s).unwrap();
        let q = downcast_policy::<PasswordPolicy>(&q).unwrap();
        assert_eq!(q.email(), "u@foo.com");
        assert!(q.allows_chair());
    }

    #[test]
    fn strict_password_roundtrip() {
        let p: PolicyRef = Arc::new(PasswordPolicy::strict("a@b"));
        let q = deserialize_policy(&serialize_policy(&p)).unwrap();
        assert!(!downcast_policy::<PasswordPolicy>(&q)
            .unwrap()
            .allows_chair());
    }

    #[test]
    fn page_policy_roundtrip() {
        let acl = Acl::new().grant("alice", &[Right::Read, Right::Write]);
        let p: PolicyRef = Arc::new(PagePolicy::new(acl.clone()));
        let q = deserialize_policy(&serialize_policy(&p)).unwrap();
        assert_eq!(downcast_policy::<PagePolicy>(&q).unwrap().acl(), &acl);
    }

    #[test]
    fn escaping_metacharacters() {
        let p: PolicyRef = Arc::new(UntrustedData::from_source("a=b;{c}|d,e%f"));
        let s = serialize_policy(&p);
        let q = deserialize_policy(&s).unwrap();
        assert_eq!(
            downcast_policy::<UntrustedData>(&q).unwrap().source(),
            Some("a=b;{c}|d,e%f")
        );
    }

    #[test]
    fn label_roundtrip_is_canonical() {
        let label = Label::from_policies([
            &(Arc::new(UntrustedData::new()) as PolicyRef),
            &(Arc::new(SqlSanitized::new()) as PolicyRef),
        ]);
        let s = serialize_label(label);
        let back = deserialize_label(&s).unwrap();
        assert_eq!(back, label, "round-trip returns the same handle");
        assert_eq!(serialize_label(Label::EMPTY), "");
        assert_eq!(deserialize_label("").unwrap(), Label::EMPTY);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_set_wrappers_roundtrip() {
        let mut set = PolicySet::empty();
        set.add(Arc::new(UntrustedData::new()));
        set.add(Arc::new(SqlSanitized::new()));
        let s = serialize_set(&set);
        let t = deserialize_set(&s).unwrap();
        assert!(t.set_eq(&set));
        assert_eq!(serialize_set(&PolicySet::empty()), "");
        assert!(deserialize_set("").unwrap().is_empty());
    }

    #[test]
    fn spans_roundtrip() {
        let mut data = TaintedString::from("hello world");
        data.add_policy_range(0..5, Arc::new(UntrustedData::new()));
        data.add_policy_range(6..11, Arc::new(HtmlSanitized::new()));
        let spans = serialize_spans(&data);
        let back = deserialize_spans("hello world", &spans).unwrap();
        assert!(back.taint_eq(&data));
    }

    #[test]
    fn spans_format_dedups_policy_table() {
        // Two disjoint spans with the same policy: the table stores the
        // policy body once; both spans reference index 0.
        let mut data = TaintedString::from("abcdefgh");
        data.add_policy_range(0..2, Arc::new(UntrustedData::new()));
        data.add_policy_range(4..6, Arc::new(UntrustedData::new()));
        let spans = serialize_spans(&data);
        assert_eq!(spans, "#UntrustedData{}#0..2|0;4..6|0");
        assert_eq!(
            spans.matches("UntrustedData").count(),
            1,
            "policy body persisted once"
        );
        assert!(deserialize_spans("abcdefgh", &spans)
            .unwrap()
            .taint_eq(&data));
        assert_eq!(serialize_spans(&TaintedString::from("plain")), "");
    }

    #[test]
    fn legacy_span_format_still_parses() {
        let legacy = "0..5|UntrustedData{};6..11|HtmlSanitized{}";
        let back = deserialize_spans("hello world", legacy).unwrap();
        assert!(back.label_at(0).has::<UntrustedData>());
        assert!(back.label_at(6).has::<HtmlSanitized>());
        assert!(back.label_at(5).is_empty());
    }

    #[test]
    fn interned_spans_malformed_inputs_are_errors() {
        assert!(deserialize_spans("x", "#only-one-part").is_err());
        assert!(deserialize_spans("x", "#a#b#c").is_err());
        assert!(deserialize_spans("x", "#UntrustedData{}#0..1|7").is_err());
        assert!(deserialize_spans("x", "#UntrustedData{}#0..1|z").is_err());
        assert!(deserialize_spans("x", "#Mystery{}#0..1|0").is_err());
        assert!(deserialize_spans("x", "#UntrustedData{}#junk").is_err());
    }

    #[test]
    fn unknown_class_is_error() {
        let err = deserialize_policy("Mystery{}").unwrap_err();
        assert!(matches!(err, SerializeError::UnknownClass(_)));
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(deserialize_policy("NoBraces").is_err());
        assert!(deserialize_policy("X{").is_err());
        assert!(deserialize_policy("PasswordPolicy{email}").is_err());
        assert!(deserialize_spans("x", "bad").is_err());
        assert!(deserialize_spans("x", "0..1").is_err());
        assert!(deserialize_spans("x", "a..1|").is_err());
    }

    #[test]
    fn missing_field_is_error() {
        let err = deserialize_policy("PasswordPolicy{}").unwrap_err();
        assert!(matches!(err, SerializeError::MissingField { .. }));
    }

    #[test]
    fn custom_class_registration() {
        #[derive(Debug)]
        struct Custom(String);
        impl crate::policy::Policy for Custom {
            fn name(&self) -> &str {
                "CustomTestPolicy"
            }
            fn serialize_fields(&self) -> Vec<(String, String)> {
                vec![("v".into(), self.0.clone())]
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        register_policy_class("CustomTestPolicy", |f| {
            Ok(Arc::new(Custom(f.get("v").cloned().unwrap_or_default())) as PolicyRef)
        });
        assert!(is_registered("CustomTestPolicy"));
        let p: PolicyRef = Arc::new(Custom("hi".into()));
        let q = deserialize_policy(&serialize_policy(&p)).unwrap();
        assert_eq!(downcast_policy::<Custom>(&q).unwrap().0, "hi");
    }

    #[test]
    fn code_evolution_reuses_fields() {
        // §3.4.1: persisted policies survive code changes — only class name
        // and fields are stored, so re-registering a class with different
        // behaviour reinterprets old persisted data. Use a dedicated class
        // name so the stock registry is untouched (tests run concurrently).
        #[derive(Debug)]
        struct Evolving(bool);
        impl crate::policy::Policy for Evolving {
            fn name(&self) -> &str {
                "EvolvingPolicy"
            }
            fn serialize_fields(&self) -> Vec<(String, String)> {
                vec![("marker".into(), "1".into())]
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        register_policy_class("EvolvingPolicy", |_| {
            Ok(Arc::new(Evolving(false)) as PolicyRef)
        });
        let s = serialize_policy(&(Arc::new(Evolving(false)) as PolicyRef));
        // "Evolve" the class: same persisted bytes, new behaviour.
        register_policy_class("EvolvingPolicy", |_| {
            Ok(Arc::new(Evolving(true)) as PolicyRef)
        });
        let q = deserialize_policy(&s).unwrap();
        assert!(downcast_policy::<Evolving>(&q).unwrap().0);
    }
}
