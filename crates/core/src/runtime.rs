//! The runtime: a registry of default gates for every I/O surface.
//!
//! RESIN pre-defines default filter objects on all I/O channels into and
//! out of the runtime — sockets, pipes, files, HTTP output, email, SQL,
//! and code import (§3.2.1). The [`GateRegistry`] owns those defaults: each
//! surface maps to a *gate factory*, and [`GateRegistry::open`] stamps out
//! a fresh [`Gate`] for one connection/file/query stream. Applications and
//! the `vfs`/`sql`/`web` layers resolve their gates here instead of
//! hand-rolling boundary plumbing, so a deployment can tighten or
//! instrument every surface in one place — the single interposition point
//! the ROADMAP's batching, verdict-caching, and instrumentation items hang
//! off.
//!
//! Two surfaces are registered *unguarded* by default:
//!
//! * **file** — the paper's default file filter performs policy
//!   *persistence* (serialize on write, revive on read, §3.4.1), not export
//!   checks; `resin_vfs` implements persistence and mounts per-file
//!   persistent filters on the gate it opens here.
//! * **sql** — likewise, the SQL filter *rewrites* queries and results to
//!   persist policies (§3.4.1) and guards injection (§5.3); `resin_sql`
//!   mounts its guard filter on the gate it opens here.
//!
//! Everything else (http, email, socket, pipe, code-import) starts with
//! [`DefaultFilter`](crate::filter::DefaultFilter), which runs every
//! policy's `export_check` (Figure 3).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::gate::{Gate, GateKind};

/// Creates a fresh gate for one use of a surface.
pub type GateFactory = Arc<dyn Fn() -> Gate + Send + Sync>;

/// Maps I/O surfaces to their default-gate factories.
pub struct GateRegistry {
    factories: RwLock<HashMap<String, GateFactory>>,
}

impl GateRegistry {
    /// The registry key for a kind.
    ///
    /// Custom surfaces are namespaced so an application-defined boundary
    /// named (say) `"email"` can never alias — or replace — the builtin
    /// Email surface and its default checks.
    fn key(kind: &GateKind) -> String {
        match kind {
            GateKind::Custom(name) => format!("custom:{name}"),
            builtin => builtin.type_name().to_string(),
        }
    }

    /// A registry with no defaults (every [`open`](GateRegistry::open)
    /// falls back to a guarded [`Gate::new`]).
    pub fn empty() -> Self {
        GateRegistry {
            factories: RwLock::new(HashMap::new()),
        }
    }

    /// A registry pre-populated with the paper's seven I/O surfaces.
    pub fn with_defaults() -> Self {
        let registry = GateRegistry::empty();
        for kind in GateKind::IO_SURFACES {
            let factory: GateFactory = match kind {
                // Persistence surfaces: vfs/sql provide the real filtering.
                GateKind::File | GateKind::Sql => {
                    let kind = kind.clone();
                    Arc::new(move || Gate::unguarded(kind.clone()))
                }
                // Checking surfaces: the default filter of Figure 3.
                _ => {
                    let kind = kind.clone();
                    Arc::new(move || Gate::new(kind.clone()))
                }
            };
            registry.set_factory(GateRegistry::key(&kind), factory);
        }
        registry
    }

    // Registrations are single `insert`/`get` steps, so the map is
    // consistent at every panic point and a poisoned lock is recoverable
    // (see `crate::sync`).
    fn set_factory(&self, key: String, factory: GateFactory) {
        crate::sync::wlock(&self.factories).insert(key, factory);
    }

    /// Registers (or replaces) the default gate for a surface.
    ///
    /// The factory runs once per [`open`](GateRegistry::open), so each
    /// caller gets an independent gate with fresh context, offsets, and
    /// capture buffer.
    pub fn register<F>(&self, kind: GateKind, factory: F)
    where
        F: Fn() -> Gate + Send + Sync + 'static,
    {
        self.set_factory(GateRegistry::key(&kind), Arc::new(factory));
    }

    /// True if a default is registered for `kind`.
    pub fn contains(&self, kind: &GateKind) -> bool {
        crate::sync::rlock(&self.factories).contains_key(&GateRegistry::key(kind))
    }

    /// The registered surface names, sorted.
    pub fn surfaces(&self) -> Vec<String> {
        let mut names: Vec<String> = crate::sync::rlock(&self.factories)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Stamps out a fresh gate for `kind`.
    ///
    /// Unregistered kinds fall back to a guarded [`Gate::new`], so opening
    /// a surface is always safe — an unknown boundary gets the paper's
    /// default filter rather than no filter.
    pub fn open(&self, kind: GateKind) -> Gate {
        let factory = crate::sync::rlock(&self.factories)
            .get(&GateRegistry::key(&kind))
            .cloned();
        match factory {
            Some(f) => f(),
            None => Gate::new(kind),
        }
    }
}

impl Default for GateRegistry {
    fn default() -> Self {
        GateRegistry::with_defaults()
    }
}

impl std::fmt::Debug for GateRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateRegistry")
            .field("surfaces", &self.surfaces())
            .finish()
    }
}

/// The RESIN runtime: owns the gate registry.
///
/// Most code uses the process-wide [`Runtime::global`]; tests and
/// multi-tenant embeddings build their own with [`Runtime::new`] and
/// customize its registry.
///
/// ```
/// use resin_core::prelude::*;
///
/// let rt = Runtime::new();
/// let gate = rt.open(GateKind::Http);
/// assert_eq!(gate.kind(), &GateKind::Http);
/// assert_eq!(gate.filter_count(), 1, "default filter pre-installed");
///
/// // Persistence surfaces start unguarded; their crates mount filters.
/// assert_eq!(rt.open(GateKind::Sql).filter_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct Runtime {
    registry: GateRegistry,
}

impl Runtime {
    /// A runtime with the default registry.
    pub fn new() -> Self {
        Runtime {
            registry: GateRegistry::with_defaults(),
        }
    }

    /// A runtime around a custom registry.
    pub fn with_registry(registry: GateRegistry) -> Self {
        Runtime { registry }
    }

    /// The process-wide runtime.
    ///
    /// Registrations on its registry affect every subsequent
    /// [`Runtime::open`] anywhere in the process — the one place to
    /// tighten or instrument a surface globally.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(Runtime::new)
    }

    /// The runtime's registry.
    pub fn registry(&self) -> &GateRegistry {
        &self.registry
    }

    /// Opens a fresh gate for `kind` from the registry.
    pub fn open(&self, kind: GateKind) -> Gate {
        self.registry.open(kind)
    }

    /// Opens a gate for an application-defined surface by name.
    pub fn open_custom(&self, name: &'static str) -> Gate {
        self.registry.open(GateKind::Custom(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::PasswordPolicy;
    use crate::taint::TaintedString;
    use std::sync::Arc;

    #[test]
    fn defaults_cover_all_seven_surfaces() {
        let r = GateRegistry::with_defaults();
        for kind in GateKind::IO_SURFACES {
            assert!(r.contains(&kind), "{kind} missing");
        }
        assert_eq!(r.surfaces().len(), 7);
    }

    #[test]
    fn checking_surfaces_are_guarded_persistence_surfaces_are_not() {
        let rt = Runtime::new();
        assert_eq!(rt.open(GateKind::Http).filter_count(), 1);
        assert_eq!(rt.open(GateKind::Email).filter_count(), 1);
        assert_eq!(rt.open(GateKind::Socket).filter_count(), 1);
        assert_eq!(rt.open(GateKind::Pipe).filter_count(), 1);
        assert_eq!(rt.open(GateKind::CodeImport).filter_count(), 1);
        assert_eq!(rt.open(GateKind::File).filter_count(), 0);
        assert_eq!(rt.open(GateKind::Sql).filter_count(), 0);
    }

    #[test]
    fn open_returns_independent_gates() {
        let rt = Runtime::new();
        let mut a = rt.open(GateKind::Http);
        let b = rt.open(GateKind::Http);
        a.write_str("x").unwrap();
        assert_eq!(a.output_mark(), 1);
        assert_eq!(b.output_mark(), 0, "gates do not share state");
    }

    #[test]
    fn register_overrides_default() {
        let rt = Runtime::new();
        rt.registry().register(GateKind::Http, || {
            Gate::builder(GateKind::Http)
                .context("hardened", true)
                .build()
        });
        assert!(rt.open(GateKind::Http).context().get_flag("hardened"));
    }

    #[test]
    fn unregistered_kind_falls_back_to_guarded() {
        let r = GateRegistry::empty();
        assert!(!r.contains(&GateKind::Custom("nope")));
        let mut g = r.open(GateKind::Custom("nope"));
        assert_eq!(g.filter_count(), 1, "fallback is guarded, not naked");
        let mut secret = TaintedString::from("pw");
        secret.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        assert!(g.write(secret).is_err());
    }

    #[test]
    fn custom_surface_registration() {
        let rt = Runtime::new();
        rt.registry().register(GateKind::Custom("audit"), || {
            Gate::internal("audit").deny::<PasswordPolicy>()
        });
        let g = rt.open_custom("audit");
        let secret = TaintedString::with_policy("pw", Arc::new(PasswordPolicy::new("u@x")));
        assert!(g.export(secret).is_err());
    }

    #[test]
    fn custom_kind_cannot_alias_builtin_surface() {
        let rt = Runtime::new();
        rt.registry().register(GateKind::Custom("email"), || {
            Gate::unguarded(GateKind::Custom("email"))
        });
        // The builtin email surface is untouched: still guarded.
        assert_eq!(rt.open(GateKind::Email).filter_count(), 1);
        // The custom surface resolves separately.
        assert_eq!(rt.open_custom("email").filter_count(), 0);
        // And an unregistered custom name never inherits a builtin's
        // (possibly unguarded) factory: guarded fallback.
        assert_eq!(rt.open_custom("sql").filter_count(), 1);
    }

    #[test]
    fn global_runtime_is_shared() {
        let a = Runtime::global();
        let b = Runtime::global();
        assert!(std::ptr::eq(a, b));
    }
}
