//! Policy sets: the per-datum collection of policy objects.
//!
//! The paper adds "a pointer, that points to a set of policy objects, to the
//! runtime's internal representation of a datum" (§4). [`PolicySet`] mirrors
//! that: the empty set is a null pointer (`None`), so untainted data pays
//! only an `Option` check, and copies share the underlying vector through an
//! `Arc` with copy-on-write mutation.

use std::fmt;
use std::sync::Arc;

use crate::policy::{policy_refs_equal, Policy, PolicyRef};

/// An immutable-by-default, cheaply clonable set of policy objects.
#[derive(Clone, Default)]
pub struct PolicySet {
    inner: Option<Arc<Vec<PolicyRef>>>,
}

impl PolicySet {
    /// The empty policy set (a null pointer internally).
    pub const fn empty() -> Self {
        PolicySet { inner: None }
    }

    /// A set containing a single policy.
    pub fn single(policy: PolicyRef) -> Self {
        PolicySet {
            inner: Some(Arc::new(vec![policy])),
        }
    }

    /// Builds a set from an iterator, deduplicating as it goes.
    pub fn from_iter_dedup<I: IntoIterator<Item = PolicyRef>>(iter: I) -> Self {
        let mut set = PolicySet::empty();
        for p in iter {
            set.add(p);
        }
        set
    }

    /// True when no policies are attached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_none()
    }

    /// Number of policies in the set.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |v| v.len())
    }

    /// Adds `policy` unless an equal policy is already present.
    ///
    /// Returns true if the set changed.
    pub fn add(&mut self, policy: PolicyRef) -> bool {
        match &mut self.inner {
            None => {
                self.inner = Some(Arc::new(vec![policy]));
                true
            }
            Some(vec) => {
                if vec.iter().any(|p| policy_refs_equal(p, &policy)) {
                    return false;
                }
                Arc::make_mut(vec).push(policy);
                true
            }
        }
    }

    /// Removes any policy equal to `policy`. Returns true if one was removed.
    pub fn remove(&mut self, policy: &PolicyRef) -> bool {
        let Some(vec) = &mut self.inner else {
            return false;
        };
        let before = vec.len();
        Arc::make_mut(vec).retain(|p| !policy_refs_equal(p, policy));
        let removed = vec.len() != before;
        if vec.is_empty() {
            self.inner = None;
        }
        removed
    }

    /// Removes every policy of concrete type `T`. Returns the count removed.
    pub fn remove_type<T: Policy>(&mut self) -> usize {
        let Some(vec) = &mut self.inner else {
            return 0;
        };
        let before = vec.len();
        Arc::make_mut(vec).retain(|p| p.as_any().downcast_ref::<T>().is_none());
        let removed = before - vec.len();
        if vec.is_empty() {
            self.inner = None;
        }
        removed
    }

    /// True if the set contains a policy equal to `policy`.
    pub fn contains(&self, policy: &PolicyRef) -> bool {
        self.iter().any(|p| policy_refs_equal(p, policy))
    }

    /// True if any policy in the set has concrete type `T`.
    pub fn has<T: Policy>(&self) -> bool {
        self.iter()
            .any(|p| p.as_any().downcast_ref::<T>().is_some())
    }

    /// Returns the first policy of concrete type `T`, if any.
    pub fn find<T: Policy>(&self) -> Option<&T> {
        self.iter().find_map(|p| p.as_any().downcast_ref::<T>())
    }

    /// Returns every policy of concrete type `T`.
    pub fn find_all<T: Policy>(&self) -> Vec<&T> {
        self.iter()
            .filter_map(|p| p.as_any().downcast_ref::<T>())
            .collect()
    }

    /// True if any policy reports `name()` equal to `name`.
    pub fn has_named(&self, name: &str) -> bool {
        self.iter().any(|p| p.name() == name)
    }

    /// Iterates over the policies.
    pub fn iter(&self) -> impl Iterator<Item = &PolicyRef> {
        self.inner.iter().flat_map(|v| v.iter())
    }

    /// The union of two sets (deduplicated). Cheap when either is empty.
    pub fn union(&self, other: &PolicySet) -> PolicySet {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut out = self.clone();
        for p in other.iter() {
            out.add(p.clone());
        }
        out
    }

    /// Set equality: same policies regardless of order.
    pub fn set_eq(&self, other: &PolicySet) -> bool {
        if self.len() != other.len() {
            return false;
        }
        // Fast path: identical Arc.
        if let (Some(a), Some(b)) = (&self.inner, &other.inner) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.iter().all(|p| other.contains(p))
    }

    /// Snapshot of the policies as a vector of references.
    pub fn to_vec(&self) -> Vec<PolicyRef> {
        self.iter().cloned().collect()
    }
}

impl fmt::Debug for PolicySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(|p| p.name()).collect();
        write!(f, "PolicySet{names:?}")
    }
}

impl PartialEq for PolicySet {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl FromIterator<PolicyRef> for PolicySet {
    fn from_iter<I: IntoIterator<Item = PolicyRef>>(iter: I) -> Self {
        PolicySet::from_iter_dedup(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{PasswordPolicy, SqlSanitized, UntrustedData};
    use std::sync::Arc;

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    #[test]
    fn empty_set_is_null() {
        let s = PolicySet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn add_dedups() {
        let mut s = PolicySet::empty();
        assert!(s.add(pw("a@x")));
        assert!(!s.add(pw("a@x")), "structural duplicate rejected");
        assert!(s.add(pw("b@x")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_and_empty_collapse() {
        let mut s = PolicySet::single(pw("a@x"));
        assert!(s.remove(&pw("a@x")));
        assert!(s.is_empty(), "collapses back to null pointer");
        assert!(!s.remove(&pw("a@x")));
    }

    #[test]
    fn remove_type_only_removes_that_type() {
        let mut s = PolicySet::empty();
        s.add(Arc::new(UntrustedData::new()));
        s.add(Arc::new(SqlSanitized::new()));
        s.add(pw("a@x"));
        assert_eq!(s.remove_type::<UntrustedData>(), 1);
        assert!(!s.has::<UntrustedData>());
        assert!(s.has::<SqlSanitized>());
        assert!(s.has::<PasswordPolicy>());
    }

    #[test]
    fn find_and_find_all() {
        let mut s = PolicySet::empty();
        s.add(pw("a@x"));
        s.add(pw("b@x"));
        assert_eq!(s.find::<PasswordPolicy>().unwrap().email(), "a@x");
        assert_eq!(s.find_all::<PasswordPolicy>().len(), 2);
        assert!(s.find::<UntrustedData>().is_none());
    }

    #[test]
    fn union_dedups_and_shortcuts() {
        let a = PolicySet::single(pw("a@x"));
        let b = PolicySet::single(pw("a@x"));
        assert_eq!(a.union(&b).len(), 1);
        let e = PolicySet::empty();
        assert!(a.union(&e).set_eq(&a));
        assert!(e.union(&a).set_eq(&a));
    }

    #[test]
    fn set_eq_order_insensitive() {
        let mut a = PolicySet::empty();
        a.add(pw("a@x"));
        a.add(pw("b@x"));
        let mut b = PolicySet::empty();
        b.add(pw("b@x"));
        b.add(pw("a@x"));
        assert!(a.set_eq(&b));
        assert_eq!(a, b);
        b.add(pw("c@x"));
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn clone_is_shallow_cow() {
        let mut a = PolicySet::single(pw("a@x"));
        let b = a.clone();
        a.add(pw("b@x"));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1, "clone unaffected by later mutation");
    }

    #[test]
    fn has_named() {
        let s = PolicySet::single(pw("a@x"));
        assert!(s.has_named("PasswordPolicy"));
        assert!(!s.has_named("Nope"));
    }

    #[test]
    fn debug_lists_names() {
        let s = PolicySet::single(pw("a@x"));
        assert!(format!("{s:?}").contains("PasswordPolicy"));
    }
}
