//! Policy sets: the deprecated per-datum collection view over [`Label`].
//!
//! Earlier revisions rendered the paper's "pointer to a set of policy
//! objects" (§4) literally as `Arc<Vec<PolicyRef>>`, paying structural
//! policy comparisons on every `add`/`union`/`contains`. The engine now
//! speaks interned [`Label`] handles (see [`crate::label`]); `PolicySet`
//! survives as a thin compatibility view so v2 code keeps compiling. All
//! set algebra delegates to the label table — `union` and `set_eq` are O(1)
//! — and the policy objects are materialized only for iteration.
//!
//! New code should use [`Label`] directly.

#![allow(deprecated)]

use std::fmt;
use std::sync::Arc;

use crate::label::{Label, PolicyId};
use crate::policy::{Policy, PolicyRef};

/// Deprecated view of an interned policy set.
///
/// Wraps a [`Label`] plus the resolved canonical policy objects, keeping
/// the v2 `PolicySet` API shape. Conversions are lossless:
/// [`PolicySet::label`] extracts the handle, [`PolicySet::from_label`]
/// wraps one.
#[deprecated(
    since = "0.3.0",
    note = "use `Label` — interned policy-set handles with O(1) union/equality"
)]
#[derive(Clone, Default)]
pub struct PolicySet {
    label: Label,
    /// Cached resolution of `label` (`None` iff the label is empty).
    refs: Option<Arc<Vec<PolicyRef>>>,
}

impl PolicySet {
    /// The empty policy set.
    pub const fn empty() -> Self {
        PolicySet {
            label: Label::EMPTY,
            refs: None,
        }
    }

    /// A set containing a single policy.
    pub fn single(policy: PolicyRef) -> Self {
        PolicySet::from_label(Label::of(&policy))
    }

    /// The view over an interned label.
    pub fn from_label(label: Label) -> Self {
        if label.is_empty() {
            return PolicySet::empty();
        }
        PolicySet {
            label,
            refs: Some(label.policies()),
        }
    }

    /// The interned handle this set views.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Builds a set from an iterator, deduplicating as it goes.
    pub fn from_iter_dedup<I: IntoIterator<Item = PolicyRef>>(iter: I) -> Self {
        let policies: Vec<PolicyRef> = iter.into_iter().collect();
        PolicySet::from_label(Label::from_policies(policies.iter()))
    }

    /// True when no policies are attached.
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// Number of policies in the set.
    pub fn len(&self) -> usize {
        self.refs.as_ref().map_or(0, |v| v.len())
    }

    fn set_label(&mut self, label: Label) -> bool {
        if label == self.label {
            return false;
        }
        *self = PolicySet::from_label(label);
        true
    }

    /// Adds `policy` unless an equal policy is already present.
    ///
    /// Returns true if the set changed.
    pub fn add(&mut self, policy: PolicyRef) -> bool {
        let label = self.label.union(Label::of(&policy));
        self.set_label(label)
    }

    /// Removes any policy equal to `policy`. Returns true if one was removed.
    pub fn remove(&mut self, policy: &PolicyRef) -> bool {
        let label = self.label.remove(PolicyId::intern(policy));
        self.set_label(label)
    }

    /// Removes every policy of concrete type `T`. Returns the count removed.
    pub fn remove_type<T: Policy>(&mut self) -> usize {
        let before = self.len();
        let label = self.label.without_type::<T>();
        self.set_label(label);
        before - self.len()
    }

    /// True if the set contains a policy equal to `policy`.
    pub fn contains(&self, policy: &PolicyRef) -> bool {
        self.label.contains_policy(policy)
    }

    /// True if any policy in the set has concrete type `T`.
    pub fn has<T: Policy>(&self) -> bool {
        self.iter()
            .any(|p| p.as_any().downcast_ref::<T>().is_some())
    }

    /// Returns the first policy of concrete type `T`, if any.
    pub fn find<T: Policy>(&self) -> Option<&T> {
        self.iter().find_map(|p| p.as_any().downcast_ref::<T>())
    }

    /// Returns every policy of concrete type `T`.
    pub fn find_all<T: Policy>(&self) -> Vec<&T> {
        self.iter()
            .filter_map(|p| p.as_any().downcast_ref::<T>())
            .collect()
    }

    /// True if any policy reports `name()` equal to `name`.
    pub fn has_named(&self, name: &str) -> bool {
        self.iter().any(|p| p.name() == name)
    }

    /// Iterates over the (canonical, interned) policies.
    pub fn iter(&self) -> impl Iterator<Item = &PolicyRef> {
        self.refs.iter().flat_map(|v| v.iter())
    }

    /// The union of two sets — an O(1) label-table hit.
    pub fn union(&self, other: &PolicySet) -> PolicySet {
        PolicySet::from_label(self.label.union(other.label))
    }

    /// Set equality: same policies regardless of order. O(1): interned
    /// labels are canonical, so this is an integer compare.
    pub fn set_eq(&self, other: &PolicySet) -> bool {
        self.label == other.label
    }

    /// Snapshot of the policies as a vector of references.
    pub fn to_vec(&self) -> Vec<PolicyRef> {
        self.iter().cloned().collect()
    }
}

impl fmt::Debug for PolicySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(|p| p.name()).collect();
        write!(f, "PolicySet{names:?}")
    }
}

impl PartialEq for PolicySet {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl FromIterator<PolicyRef> for PolicySet {
    fn from_iter<I: IntoIterator<Item = PolicyRef>>(iter: I) -> Self {
        PolicySet::from_iter_dedup(iter)
    }
}

impl From<Label> for PolicySet {
    fn from(label: Label) -> Self {
        PolicySet::from_label(label)
    }
}

impl From<&PolicySet> for Label {
    fn from(set: &PolicySet) -> Self {
        set.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{PasswordPolicy, SqlSanitized, UntrustedData};
    use std::sync::Arc;

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    #[test]
    fn empty_set_is_null() {
        let s = PolicySet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.label(), Label::EMPTY);
    }

    #[test]
    fn add_dedups() {
        let mut s = PolicySet::empty();
        assert!(s.add(pw("a@x")));
        assert!(!s.add(pw("a@x")), "structural duplicate rejected");
        assert!(s.add(pw("b@x")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_and_empty_collapse() {
        let mut s = PolicySet::single(pw("a@x"));
        assert!(s.remove(&pw("a@x")));
        assert!(s.is_empty(), "collapses back to the empty label");
        assert!(!s.remove(&pw("a@x")));
    }

    #[test]
    fn remove_type_only_removes_that_type() {
        let mut s = PolicySet::empty();
        s.add(Arc::new(UntrustedData::new()));
        s.add(Arc::new(SqlSanitized::new()));
        s.add(pw("a@x"));
        assert_eq!(s.remove_type::<UntrustedData>(), 1);
        assert!(!s.has::<UntrustedData>());
        assert!(s.has::<SqlSanitized>());
        assert!(s.has::<PasswordPolicy>());
    }

    #[test]
    fn find_and_find_all() {
        let mut s = PolicySet::empty();
        s.add(pw("a@x"));
        s.add(pw("b@x"));
        assert!(s.find::<PasswordPolicy>().is_some());
        assert_eq!(s.find_all::<PasswordPolicy>().len(), 2);
        assert!(s.find::<UntrustedData>().is_none());
    }

    #[test]
    fn union_dedups_and_shortcuts() {
        let a = PolicySet::single(pw("a@x"));
        let b = PolicySet::single(pw("a@x"));
        assert_eq!(a.union(&b).len(), 1);
        let e = PolicySet::empty();
        assert!(a.union(&e).set_eq(&a));
        assert!(e.union(&a).set_eq(&a));
    }

    #[test]
    fn set_eq_order_insensitive() {
        let mut a = PolicySet::empty();
        a.add(pw("a@x"));
        a.add(pw("b@x"));
        let mut b = PolicySet::empty();
        b.add(pw("b@x"));
        b.add(pw("a@x"));
        assert!(a.set_eq(&b));
        assert_eq!(a, b);
        assert_eq!(a.label(), b.label(), "canonical labels coincide");
        b.add(pw("c@x"));
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn clone_is_shallow() {
        let mut a = PolicySet::single(pw("a@x"));
        let b = a.clone();
        a.add(pw("b@x"));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1, "clone unaffected by later mutation");
    }

    #[test]
    fn has_named() {
        let s = PolicySet::single(pw("a@x"));
        assert!(s.has_named("PasswordPolicy"));
        assert!(!s.has_named("Nope"));
    }

    #[test]
    fn debug_lists_names() {
        let s = PolicySet::single(pw("a@x"));
        assert!(format!("{s:?}").contains("PasswordPolicy"));
    }

    #[test]
    fn label_roundtrip() {
        let s = PolicySet::from_iter_dedup([pw("a@x"), pw("b@x")]);
        let l: Label = (&s).into();
        let back: PolicySet = l.into();
        assert!(back.set_eq(&s));
        assert_eq!(back.to_vec().len(), 2);
    }
}
