//! Tainted strings: byte strings that carry byte-range labels.
//!
//! This is the workhorse of RESIN's data tracking (§3.4): when the
//! application copies or moves string data, the attached policies travel
//! with it, at byte granularity. Concatenating `"foo"` (policy *p1*) and
//! `"bar"` (policy *p2*) yields `"foobar"` whose first three bytes carry
//! only *p1* and last three only *p2*; slicing back out `"foo"` yields a
//! string carrying only *p1*.
//!
//! Policy sets are interned [`Label`] handles, so the concat-heavy paths
//! (append, normalize, coalesce) never compare policies structurally.

use std::fmt;
use std::ops::Range;

use crate::error::Result;
use crate::label::Label;
use crate::merge::merge_many;
use crate::policy::{Policy, PolicyRef};
#[allow(deprecated)]
use crate::policy_set::PolicySet;
use crate::taint::spans::SpanMap;
use crate::taint::value::Tainted;

/// A string whose bytes carry interned policy labels.
///
/// The text is UTF-8 (a Rust `String`); policy ranges are byte ranges, as in
/// the paper's PHP prototype. Operations that move bytes verbatim (concat,
/// slice, replace, case mapping over ASCII) propagate ranges without
/// merging; operations that *combine* bytes (numeric conversion) merge
/// policies through the merge engine.
#[derive(Clone, Default)]
pub struct TaintedString {
    text: String,
    spans: SpanMap,
}

impl TaintedString {
    /// An empty tainted string.
    pub fn new() -> Self {
        TaintedString::default()
    }

    /// A string with `policy` applied to every byte.
    ///
    /// # The empty-string contract
    ///
    /// Policies attach to *bytes* (the paper's character-granularity model,
    /// §3.4). An empty string has no bytes, so attaching a policy to it is
    /// a **no-op**: `with_policy("", p)` returns an untainted empty string,
    /// and concatenating it into other data propagates nothing. Callers
    /// holding possibly-empty sensitive values must either check
    /// [`is_empty`](TaintedString::is_empty) before relying on the label to
    /// travel, or label the non-empty container the value flows into.
    ///
    /// ```
    /// use resin_core::prelude::*;
    /// use std::sync::Arc;
    ///
    /// let empty = TaintedString::with_policy("", Arc::new(PasswordPolicy::new("u@x")));
    /// assert!(empty.is_untainted(), "no bytes, no label");
    /// ```
    pub fn with_policy(text: impl Into<String>, policy: PolicyRef) -> Self {
        let mut s = TaintedString::from(text.into());
        s.add_policy(policy);
        s
    }

    /// A string with `label` applied to every byte (same empty-string
    /// contract as [`with_policy`](TaintedString::with_policy)).
    pub fn with_label(text: impl Into<String>, label: Label) -> Self {
        let mut s = TaintedString::from(text.into());
        s.add_label(label);
        s
    }

    /// The underlying text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the text is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// True when no byte carries any policy.
    pub fn is_untainted(&self) -> bool {
        self.spans.is_empty()
    }

    // ---- policy management (Table 3: policy_add / policy_remove / policy_get) ----

    /// Attaches `policy` to every byte.
    ///
    /// Interns the policy once; after that the per-span work is label
    /// arithmetic. On an **empty string this is a no-op** — policies attach
    /// to bytes, and there are none (see
    /// [`with_policy`](TaintedString::with_policy) for the full contract).
    pub fn add_policy(&mut self, policy: PolicyRef) {
        let len = self.len();
        self.spans.add_policy(0..len, policy);
    }

    /// Attaches `policy` to the bytes in `range`.
    pub fn add_policy_range(&mut self, range: Range<usize>, policy: PolicyRef) {
        let len = self.len();
        self.spans
            .add_policy(range.start.min(len)..range.end.min(len), policy);
    }

    /// Unions `label` into every byte (no-op on an empty string).
    pub fn add_label(&mut self, label: Label) {
        let len = self.len();
        self.spans.add_label(0..len, label);
    }

    /// Unions `label` into the bytes in `range`.
    pub fn add_label_range(&mut self, range: Range<usize>, label: Label) {
        let len = self.len();
        self.spans
            .add_label(range.start.min(len)..range.end.min(len), label);
    }

    /// Attaches every policy in `set` to every byte.
    #[deprecated(since = "0.3.0", note = "use `add_label`")]
    #[allow(deprecated)]
    pub fn add_policies(&mut self, set: &PolicySet) {
        self.add_label(set.label());
    }

    /// Removes any policy equal to `policy` from every byte.
    pub fn remove_policy(&mut self, policy: &PolicyRef) {
        let len = self.len();
        self.spans.remove_policy(0..len, policy);
    }

    /// Removes all policies of type `T` from every byte.
    pub fn remove_policy_type<T: Policy>(&mut self) {
        let len = self.len();
        self.spans.remove_type::<T>(0..len);
    }

    /// Removes all policies from every byte (declassification).
    pub fn clear_policies(&mut self) {
        self.spans = SpanMap::new();
    }

    /// The union of all labels attached anywhere in the string — memoized
    /// label unions, O(spans) handle operations.
    pub fn label(&self) -> Label {
        self.spans.union_all()
    }

    /// The label of byte `idx` ([`Label::EMPTY`] if uncovered or out of
    /// range).
    pub fn label_at(&self, idx: usize) -> Label {
        self.spans.at(idx)
    }

    /// The union of all policies attached anywhere in the string.
    #[deprecated(since = "0.3.0", note = "use `label`")]
    #[allow(deprecated)]
    pub fn policies(&self) -> PolicySet {
        PolicySet::from_label(self.label())
    }

    /// The policy set of byte `idx` (empty if uncovered or out of range).
    #[deprecated(since = "0.3.0", note = "use `label_at`")]
    #[allow(deprecated)]
    pub fn policies_at(&self, idx: usize) -> PolicySet {
        PolicySet::from_label(self.label_at(idx))
    }

    /// Iterates `(byte_range, label)` spans in order.
    pub fn spans(&self) -> impl Iterator<Item = (Range<usize>, Label)> + '_ {
        self.spans.iter()
    }

    /// Number of distinct policy spans.
    pub fn span_count(&self) -> usize {
        self.spans.span_count()
    }

    /// True if any byte carries a policy of type `T`.
    pub fn has_policy<T: Policy>(&self) -> bool {
        self.spans.any_byte(self.len(), |l| l.has::<T>())
    }

    /// True if *every* byte carries a policy of type `T`.
    ///
    /// This is the check the script-injection import filter performs: each
    /// character of imported code must carry `CodeApproval` (Figure 6).
    pub fn all_bytes_have<T: Policy>(&self) -> bool {
        self.spans.all_bytes(self.len(), |l| l.has::<T>())
    }

    /// Byte ranges whose label satisfies `pred`.
    pub fn ranges_where<F>(&self, pred: F) -> Vec<Range<usize>>
    where
        F: Fn(Label) -> bool,
    {
        self.spans.ranges_where(self.len(), pred)
    }

    /// Byte ranges that carry a `T` policy.
    pub fn ranges_with<T: Policy>(&self) -> Vec<Range<usize>> {
        self.ranges_where(|l| l.has::<T>())
    }

    // ---- verbatim data movement (no merging, §3.4) ----

    /// Appends another tainted string, carrying its policy ranges along.
    pub fn push_tainted(&mut self, other: &TaintedString) {
        let offset = self.text.len();
        self.text.push_str(&other.text);
        self.spans.append(&other.spans, offset);
    }

    /// Appends untainted text.
    pub fn push_str(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Appends a single untainted char.
    pub fn push(&mut self, c: char) {
        self.text.push(c);
    }

    /// Concatenates two tainted strings into a new one.
    pub fn concat(&self, other: &TaintedString) -> TaintedString {
        let mut b = TaintedStrBuilder::with_capacity(self.len() + other.len());
        b.push_tainted(self);
        b.push_tainted(other);
        b.build()
    }

    /// Concatenates many parts.
    pub fn concat_all<'a, I>(parts: I) -> TaintedString
    where
        I: IntoIterator<Item = &'a TaintedString>,
    {
        let mut b = TaintedStrBuilder::new();
        for p in parts {
            b.push_tainted(p);
        }
        b.build()
    }

    /// Extracts `range` as a new tainted string (byte indices; must lie on
    /// UTF-8 boundaries).
    pub fn slice(&self, range: Range<usize>) -> TaintedString {
        let start = range.start.min(self.text.len());
        let end = range.end.min(self.text.len()).max(start);
        TaintedString {
            text: self.text[start..end].to_string(),
            spans: self.spans.slice(start..end),
        }
    }

    /// PHP-style `substr(offset, len)`.
    pub fn substr(&self, offset: usize, len: usize) -> TaintedString {
        self.slice(offset..offset.saturating_add(len))
    }

    /// Truncates to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.text.truncate(len);
        self.spans.clamp(self.text.len());
    }

    /// Splits on `sep`, preserving the taint of each piece.
    pub fn split(&self, sep: &str) -> Vec<TaintedString> {
        assert!(!sep.is_empty(), "separator must be non-empty");
        let mut out = Vec::new();
        let mut start = 0usize;
        while let Some(pos) = self.text[start..].find(sep) {
            out.push(self.slice(start..start + pos));
            start += pos + sep.len();
        }
        out.push(self.slice(start..self.text.len()));
        out
    }

    /// Splits into lines (on `\n`), preserving taint; strips a trailing `\r`.
    pub fn lines(&self) -> Vec<TaintedString> {
        self.split("\n")
            .into_iter()
            .map(|l| {
                if l.as_str().ends_with('\r') {
                    let n = l.len() - 1;
                    l.slice(0..n)
                } else {
                    l
                }
            })
            .collect()
    }

    /// Joins parts with an untainted separator, preserving each part's taint.
    pub fn join<'a, I>(sep: &str, parts: I) -> TaintedString
    where
        I: IntoIterator<Item = &'a TaintedString>,
    {
        let mut b = TaintedStrBuilder::new();
        for (i, p) in parts.into_iter().enumerate() {
            if i > 0 {
                b.push_str(sep);
            }
            b.push_tainted(p);
        }
        b.build()
    }

    /// Replaces every occurrence of `from` with the tainted `to`,
    /// preserving the taint of untouched bytes and of the replacement.
    pub fn replace(&self, from: &str, to: &TaintedString) -> TaintedString {
        assert!(!from.is_empty(), "pattern must be non-empty");
        let mut b = TaintedStrBuilder::with_capacity(self.len());
        let mut start = 0usize;
        while let Some(pos) = self.text[start..].find(from) {
            b.push_tainted(&self.slice(start..start + pos));
            b.push_tainted(to);
            start += pos + from.len();
        }
        b.push_tainted(&self.slice(start..self.text.len()));
        b.build()
    }

    /// Replaces with untainted replacement text.
    pub fn replace_str(&self, from: &str, to: &str) -> TaintedString {
        self.replace(from, &TaintedString::from(to))
    }

    /// ASCII-uppercases the text; policy spans are carried byte-for-byte.
    pub fn to_ascii_uppercase(&self) -> TaintedString {
        TaintedString {
            text: self.text.to_ascii_uppercase(),
            spans: self.spans.clone(),
        }
    }

    /// ASCII-lowercases the text; policy spans are carried byte-for-byte.
    pub fn to_ascii_lowercase(&self) -> TaintedString {
        TaintedString {
            text: self.text.to_ascii_lowercase(),
            spans: self.spans.clone(),
        }
    }

    /// Trims ASCII whitespace from both ends, preserving inner taint.
    pub fn trim(&self) -> TaintedString {
        let s = self.text.trim_start();
        let start = self.text.len() - s.len();
        let t = s.trim_end();
        self.slice(start..start + t.len())
    }

    /// Repeats the string `n` times, repeating the policy ranges too.
    pub fn repeat(&self, n: usize) -> TaintedString {
        let mut b = TaintedStrBuilder::with_capacity(self.len() * n);
        for _ in 0..n {
            b.push_tainted(self);
        }
        b.build()
    }

    // ---- text queries (taint-oblivious) ----

    /// First byte offset of `needle`, if present.
    pub fn find(&self, needle: &str) -> Option<usize> {
        self.text.find(needle)
    }

    /// True if the text contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.text.contains(needle)
    }

    /// True if the text starts with `prefix`.
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.text.starts_with(prefix)
    }

    /// True if the text ends with `suffix`.
    pub fn ends_with(&self, suffix: &str) -> bool {
        self.text.ends_with(suffix)
    }

    // ---- merging conversions (§3.4.2) ----

    /// Converts the text to an integer, *merging* the policies of all bytes.
    ///
    /// Unlike verbatim movement, numeric conversion combines bytes into one
    /// datum, so every policy's `merge` method participates; a policy may
    /// veto the conversion.
    pub fn to_int(&self) -> Result<Tainted<i64>> {
        let v: i64 = self
            .text
            .trim()
            .parse()
            .map_err(|e| crate::error::FlowError::runtime(format!("not an integer: {e}")))?;
        let merged = merge_many(self.spans.iter().map(|(_, l)| l))?;
        Ok(Tainted::with_label(v, merged))
    }

    /// Consumes the string, dropping all policies (explicit declassify).
    pub fn into_plain(self) -> String {
        self.text
    }

    /// Taint-aware equality: same text *and* same policy spans. Span labels
    /// are canonical handles, so this never compares policies structurally.
    pub fn taint_eq(&self, other: &TaintedString) -> bool {
        if self.text != other.text {
            return false;
        }
        let a: Vec<_> = self.spans.iter().collect();
        let b: Vec<_> = other.spans.iter().collect();
        a == b
    }
}

impl From<&str> for TaintedString {
    fn from(s: &str) -> Self {
        TaintedString {
            text: s.to_string(),
            spans: SpanMap::new(),
        }
    }
}

impl From<String> for TaintedString {
    fn from(s: String) -> Self {
        TaintedString {
            text: s,
            spans: SpanMap::new(),
        }
    }
}

impl From<&String> for TaintedString {
    fn from(s: &String) -> Self {
        TaintedString::from(s.as_str())
    }
}

impl fmt::Display for TaintedString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for TaintedString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.text)?;
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(r, l)| format!("{}..{}{:?}", r.start, r.end, l))
            .collect();
        if !spans.is_empty() {
            write!(f, " <{}>", spans.join(", "))?;
        }
        Ok(())
    }
}

/// Equality compares *text only*; policies do not affect `==`, matching
/// PHP/Python semantics where taint is invisible to comparison operators.
/// Use [`TaintedString::taint_eq`] for policy-aware equality.
impl PartialEq for TaintedString {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl Eq for TaintedString {}

impl PartialEq<&str> for TaintedString {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

/// An amortized-O(1)-per-fragment builder for [`TaintedString`]s.
///
/// Composing a page, query, or response out of many fragments is *the*
/// taint-propagation hot path (the paper's Table 5 concat rows). Folding
/// [`TaintedString::concat`] re-walks the accumulated spans per step; this
/// builder instead appends each fragment's text and spans in O(fragment)
/// — the span list stays normalized structurally (one coalesce check at
/// each seam), so [`build`](TaintedStrBuilder::build) hands the finished
/// string over without any deferred re-sort pass.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let name = TaintedString::with_policy("bob", Arc::new(UntrustedData::new()));
/// let mut b = TaintedStrBuilder::with_capacity(32);
/// b.push_str("hello, ");
/// b.push_tainted(&name);
/// b.push_char('!');
/// let s = b.build();
/// assert_eq!(s.as_str(), "hello, bob!");
/// assert!(s.label_at(7).has::<UntrustedData>());
/// assert!(s.label_at(0).is_empty());
/// ```
#[derive(Default)]
pub struct TaintedStrBuilder {
    text: String,
    spans: SpanMap,
}

impl TaintedStrBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TaintedStrBuilder::default()
    }

    /// An empty builder whose text buffer is pre-sized for `bytes` bytes —
    /// use when the output length is known (or estimable) up front.
    pub fn with_capacity(bytes: usize) -> Self {
        TaintedStrBuilder {
            text: String::with_capacity(bytes),
            spans: SpanMap::new(),
        }
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Appends untainted text.
    pub fn push_str(&mut self, s: &str) {
        self.text.push_str(s);
    }

    /// Appends a single untainted char.
    pub fn push_char(&mut self, c: char) {
        self.text.push(c);
    }

    /// Appends a tainted fragment, carrying its policy spans along.
    pub fn push_tainted(&mut self, other: &TaintedString) {
        let offset = self.text.len();
        self.text.push_str(&other.text);
        self.spans.append(&other.spans, offset);
    }

    /// Appends text with `label` applied to every byte of it (no-op label
    /// attach when `text` is empty, per the byte-granularity contract).
    pub fn push_label(&mut self, text: &str, label: Label) {
        let start = self.text.len();
        self.text.push_str(text);
        self.spans.push_coalesced(start, self.text.len(), label);
    }

    /// Finishes the string. The span map was kept normalized at every push,
    /// so this is O(1) — no deferred sort or coalesce pass.
    pub fn build(self) -> TaintedString {
        TaintedString {
            text: self.text,
            spans: self.spans,
        }
    }
}

impl<'a> Extend<&'a TaintedString> for TaintedStrBuilder {
    fn extend<I: IntoIterator<Item = &'a TaintedString>>(&mut self, iter: I) {
        for p in iter {
            self.push_tainted(p);
        }
    }
}

impl<'a> FromIterator<&'a TaintedString> for TaintedString {
    fn from_iter<I: IntoIterator<Item = &'a TaintedString>>(iter: I) -> TaintedString {
        let mut b = TaintedStrBuilder::new();
        b.extend(iter);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{HtmlSanitized, PasswordPolicy, UntrustedData};
    use std::sync::Arc;

    fn untrusted(s: &str) -> TaintedString {
        TaintedString::with_policy(s, Arc::new(UntrustedData::new()))
    }

    #[test]
    fn paper_concat_substring_example() {
        // §3.4: concat "foo"(p1) + "bar"(p2); slice back "foo" has only p1.
        let foo = TaintedString::with_policy("foo", Arc::new(UntrustedData::new()));
        let bar = TaintedString::with_policy("bar", Arc::new(HtmlSanitized::new()));
        let combined = foo.concat(&bar);
        assert_eq!(combined.as_str(), "foobar");
        assert!(combined.label_at(0).has::<UntrustedData>());
        assert!(!combined.label_at(0).has::<HtmlSanitized>());
        assert!(combined.label_at(3).has::<HtmlSanitized>());
        assert!(!combined.label_at(3).has::<UntrustedData>());

        let front = combined.slice(0..3);
        assert_eq!(front.as_str(), "foo");
        assert!(front.label().has::<UntrustedData>());
        assert!(!front.label().has::<HtmlSanitized>());
    }

    #[test]
    fn untainted_fast_path() {
        let s = TaintedString::from("hello");
        assert!(s.is_untainted());
        assert!(s.label().is_empty());
        assert_eq!(s.label(), Label::EMPTY);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn push_str_does_not_taint() {
        let mut s = untrusted("evil");
        s.push_str("-safe");
        assert_eq!(s.as_str(), "evil-safe");
        assert!(s.label_at(0).has::<UntrustedData>());
        assert!(s.label_at(4).is_empty());
    }

    #[test]
    fn split_preserves_piece_taint() {
        let a = untrusted("evil");
        let mut s = TaintedString::from("name=");
        s.push_tainted(&a);
        s.push_str("&x=1");
        let parts = s.split("&");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].as_str(), "name=evil");
        assert!(parts[0].has_policy::<UntrustedData>());
        assert!(parts[1].is_untainted());
    }

    #[test]
    fn split_no_separator_returns_whole() {
        let s = untrusted("abc");
        let parts = s.split(",");
        assert_eq!(parts.len(), 1);
        assert!(parts[0].has_policy::<UntrustedData>());
    }

    #[test]
    fn replace_keeps_surrounding_taint() {
        let mut s = TaintedString::from("hi <b>");
        s.add_policy_range(3..6, Arc::new(UntrustedData::new()));
        let r = s.replace("<b>", &TaintedString::from("&lt;b&gt;"));
        assert_eq!(r.as_str(), "hi &lt;b&gt;");
        assert!(r.label_at(0).is_empty());
        // The replacement text is untainted.
        assert!(!r.has_policy::<UntrustedData>());
    }

    #[test]
    fn replace_with_tainted_replacement() {
        let s = TaintedString::from("x=NAME;");
        let evil = untrusted("bob");
        let r = s.replace("NAME", &evil);
        assert_eq!(r.as_str(), "x=bob;");
        assert!(r.label_at(2).has::<UntrustedData>());
        assert!(r.label_at(0).is_empty());
        assert!(r.label_at(5).is_empty());
    }

    #[test]
    fn case_mapping_preserves_spans() {
        let s = untrusted("AbC");
        let u = s.to_ascii_uppercase();
        assert_eq!(u.as_str(), "ABC");
        assert!(u.all_bytes_have::<UntrustedData>());
        let l = s.to_ascii_lowercase();
        assert_eq!(l.as_str(), "abc");
        assert!(l.all_bytes_have::<UntrustedData>());
    }

    #[test]
    fn trim_slices_taint() {
        let mut s = TaintedString::from("  core  ");
        s.add_policy_range(2..6, Arc::new(UntrustedData::new()));
        let t = s.trim();
        assert_eq!(t.as_str(), "core");
        assert!(t.all_bytes_have::<UntrustedData>());
    }

    #[test]
    fn join_and_lines() {
        let a = untrusted("one");
        let b = TaintedString::from("two");
        let j = TaintedString::join("\r\n", [&a, &b]);
        assert_eq!(j.as_str(), "one\r\ntwo");
        let lines = j.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].as_str(), "one");
        assert!(lines[0].has_policy::<UntrustedData>());
        assert!(lines[1].is_untainted());
    }

    #[test]
    fn repeat_repeats_spans() {
        let s = untrusted("ab");
        let r = s.repeat(3);
        assert_eq!(r.as_str(), "ababab");
        assert!(r.all_bytes_have::<UntrustedData>());
        assert_eq!(r.repeat(0).len(), 0);
    }

    #[test]
    fn substr_php_style() {
        let s = untrusted("abcdef");
        let sub = s.substr(2, 3);
        assert_eq!(sub.as_str(), "cde");
        assert!(sub.all_bytes_have::<UntrustedData>());
        // Out-of-range lengths are clipped, not a panic.
        assert_eq!(s.substr(4, 100).as_str(), "ef");
        assert_eq!(s.substr(10, 5).as_str(), "");
    }

    #[test]
    fn to_int_merges_policies() {
        let s = untrusted("42");
        let v = s.to_int().unwrap();
        assert_eq!(v.value(), &42);
        assert!(v.label().has::<UntrustedData>());
        assert!(TaintedString::from("nope").to_int().is_err());
    }

    #[test]
    fn equality_ignores_taint() {
        let a = untrusted("x");
        let b = TaintedString::from("x");
        assert_eq!(a, b);
        assert!(!a.taint_eq(&b));
        assert!(a.taint_eq(&a.clone()));
        assert_eq!(a, "x");
    }

    #[test]
    fn truncate_clamps_spans() {
        let mut s = untrusted("abcdef");
        s.truncate(3);
        assert_eq!(s.as_str(), "abc");
        assert!(s.all_bytes_have::<UntrustedData>());
        assert_eq!(s.ranges_with::<UntrustedData>(), vec![0..3]);
    }

    #[test]
    fn debug_renders_spans() {
        let s = untrusted("ab");
        let d = format!("{s:?}");
        assert!(d.contains("UntrustedData"), "{d}");
    }

    #[test]
    fn all_bytes_have_on_empty_string() {
        let s = TaintedString::new();
        assert!(s.all_bytes_have::<UntrustedData>(), "vacuously true");
    }

    #[test]
    fn with_label_applies_whole_label() {
        let l = Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef))
            .union(Label::of(&(Arc::new(HtmlSanitized::new()) as PolicyRef)));
        let s = TaintedString::with_label("xy", l);
        assert_eq!(s.label(), l);
        assert_eq!(s.label_at(1).len(), 2);
    }

    #[test]
    fn empty_string_policy_is_noop_by_contract() {
        // The documented contract: policies attach to bytes; an empty
        // string has none, so the attach is silently a no-op.
        let s = TaintedString::with_policy("", Arc::new(PasswordPolicy::new("u@x")));
        assert!(s.is_untainted());
        assert!(s.label().is_empty());

        let mut t = TaintedString::new();
        t.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        t.add_label(Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef)));
        assert!(t.is_untainted());

        // Concatenating an empty carrier propagates nothing.
        let mut msg = TaintedString::from("hello");
        msg.push_tainted(&s);
        assert!(msg.is_untainted());
        assert_eq!(msg.as_str(), "hello");
    }

    #[test]
    fn builder_matches_fold_concat() {
        let parts = [
            untrusted("evil"),
            TaintedString::from("-safe-"),
            untrusted("more"),
            TaintedString::new(),
            untrusted("tail"),
        ];
        let mut b = TaintedStrBuilder::new();
        for p in &parts {
            b.push_tainted(p);
        }
        let built = b.build();
        let mut folded = TaintedString::new();
        for p in &parts {
            folded = folded.concat(p);
        }
        assert!(built.taint_eq(&folded));
        assert_eq!(built.as_str(), "evil-safe-moretail");
    }

    #[test]
    fn builder_mixed_pushes() {
        let mut b = TaintedStrBuilder::with_capacity(64);
        assert!(b.is_empty());
        b.push_str("a=");
        b.push_label(
            "v1",
            Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef)),
        );
        b.push_char('&');
        b.push_label(
            "",
            Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef)),
        );
        b.push_label("v2", Label::EMPTY);
        assert_eq!(b.len(), 7);
        let s = b.build();
        assert_eq!(s.as_str(), "a=v1&v2");
        assert_eq!(s.ranges_with::<UntrustedData>(), vec![2..4]);
        assert!(s.label_at(5).is_empty());
    }

    #[test]
    fn builder_coalesces_adjacent_equal_fragments() {
        let mut b = TaintedStrBuilder::new();
        b.push_tainted(&untrusted("ab"));
        b.push_tainted(&untrusted("cd"));
        let s = b.build();
        assert_eq!(s.span_count(), 1, "seam coalesced");
        assert!(s.all_bytes_have::<UntrustedData>());
    }

    #[test]
    fn from_iterator_collects_tainted() {
        let parts = [untrusted("x"), TaintedString::from("y")];
        let s: TaintedString = parts.iter().collect();
        assert_eq!(s.as_str(), "xy");
        assert!(s.label_at(0).has::<UntrustedData>());
        assert!(s.label_at(1).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_policy_set_views_still_work() {
        let s = untrusted("ab");
        assert!(s.policies().has::<UntrustedData>());
        assert!(s.policies_at(0).has::<UntrustedData>());
        assert!(s.policies_at(9).is_empty());
        let mut t = TaintedString::from("cd");
        t.add_policies(&s.policies());
        assert!(t.all_bytes_have::<UntrustedData>());
    }
}
