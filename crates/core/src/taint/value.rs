//! Tainted scalar values.
//!
//! Scalars (integers, floats) cannot carry byte-range policies; they carry
//! a single whole-datum [`Label`]. Combining two tainted scalars merges
//! their labels through the merge engine (§3.4.2) — this is the "integer
//! addition" row of Table 5. Since a `Label` is a 4-byte `Copy` handle,
//! propagating it through `map`/`combine` costs nothing.

use std::fmt;

use crate::error::Result;
use crate::label::Label;
use crate::merge::merge_sets;
use crate::policy::{Policy, PolicyRef};
#[allow(deprecated)]
use crate::policy_set::PolicySet;

/// A scalar value labeled with an interned policy set.
#[derive(Clone, Copy)]
pub struct Tainted<T> {
    value: T,
    label: Label,
}

impl<T> Tainted<T> {
    /// Wraps a value with no policies.
    pub fn new(value: T) -> Self {
        Tainted {
            value,
            label: Label::EMPTY,
        }
    }

    /// Wraps a value with an initial policy.
    pub fn with_policy(value: T, policy: PolicyRef) -> Self {
        Tainted {
            value,
            label: Label::of(&policy),
        }
    }

    /// Wraps a value with an existing label.
    pub fn with_label(value: T, label: Label) -> Self {
        Tainted { value, label }
    }

    /// Wraps a value with an existing policy set.
    #[deprecated(since = "0.3.0", note = "use `with_label`")]
    #[allow(deprecated)]
    pub fn with_policies(value: T, policies: PolicySet) -> Self {
        Tainted {
            value,
            label: policies.label(),
        }
    }

    /// The wrapped value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consumes the wrapper, dropping policies (explicit declassify).
    pub fn into_value(self) -> T {
        self.value
    }

    /// The attached label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// The attached policy set.
    #[deprecated(since = "0.3.0", note = "use `label`")]
    #[allow(deprecated)]
    pub fn policies(&self) -> PolicySet {
        PolicySet::from_label(self.label)
    }

    /// Attaches a policy.
    pub fn add_policy(&mut self, policy: PolicyRef) {
        self.label = self.label.union(Label::of(&policy));
    }

    /// Unions a label in.
    pub fn add_label(&mut self, label: Label) {
        self.label = self.label.union(label);
    }

    /// Removes a policy.
    pub fn remove_policy(&mut self, policy: &PolicyRef) {
        self.label = self.label.remove(crate::label::PolicyId::intern(policy));
    }

    /// True if a policy of type `P` is attached.
    pub fn has_policy<P: Policy>(&self) -> bool {
        self.label.has::<P>()
    }

    /// Maps the value, keeping the same label (unary operations propagate
    /// labels unchanged).
    pub fn map<U, F: FnOnce(&T) -> U>(&self, f: F) -> Tainted<U> {
        Tainted {
            value: f(&self.value),
            label: self.label,
        }
    }

    /// Combines two tainted values with `f`, merging their labels.
    ///
    /// Fails if any policy's `merge` method vetoes the combination.
    pub fn combine<U, V, F>(&self, other: &Tainted<U>, f: F) -> Result<Tainted<V>>
    where
        F: FnOnce(&T, &U) -> V,
    {
        let merged = merge_sets(self.label, other.label)?;
        Ok(Tainted {
            value: f(&self.value, &other.value),
            label: merged,
        })
    }
}

impl Tainted<i64> {
    /// Tainted addition (merges policies).
    pub fn try_add(&self, other: &Tainted<i64>) -> Result<Tainted<i64>> {
        self.combine(other, |a, b| a.wrapping_add(*b))
    }

    /// Tainted subtraction (merges policies).
    pub fn try_sub(&self, other: &Tainted<i64>) -> Result<Tainted<i64>> {
        self.combine(other, |a, b| a.wrapping_sub(*b))
    }

    /// Tainted multiplication (merges policies).
    pub fn try_mul(&self, other: &Tainted<i64>) -> Result<Tainted<i64>> {
        self.combine(other, |a, b| a.wrapping_mul(*b))
    }
}

impl<T: fmt::Debug> fmt::Debug for Tainted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tainted({:?}, {:?})", self.value, self.label)
    }
}

impl<T: fmt::Display> fmt::Display for Tainted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

/// Equality compares values only; taint is invisible to `==`.
impl<T: PartialEq> PartialEq for Tainted<T> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{AuthenticData, UntrustedData};
    use std::sync::Arc;

    #[test]
    fn addition_unions_policies() {
        let a = Tainted::with_policy(2i64, Arc::new(UntrustedData::new()) as PolicyRef);
        let b = Tainted::new(3i64);
        let c = a.try_add(&b).unwrap();
        assert_eq!(c.value(), &5);
        assert!(c.has_policy::<UntrustedData>());
    }

    #[test]
    fn authentic_intersection_on_add() {
        let a = Tainted::with_policy(1i64, Arc::new(AuthenticData::new()) as PolicyRef);
        let b = Tainted::new(1i64);
        let c = a.try_add(&b).unwrap();
        assert!(!c.has_policy::<AuthenticData>(), "intersection drops");
        let d = Tainted::with_policy(1i64, Arc::new(AuthenticData::new()) as PolicyRef);
        let e = a.try_add(&d).unwrap();
        assert!(e.has_policy::<AuthenticData>(), "both authentic: kept");
    }

    #[test]
    fn map_keeps_policies() {
        let a = Tainted::with_policy(10i64, Arc::new(UntrustedData::new()) as PolicyRef);
        let b = a.map(|v| v * 2);
        assert_eq!(b.value(), &20);
        assert!(b.has_policy::<UntrustedData>());
        assert_eq!(a.label(), b.label(), "same interned handle");
    }

    #[test]
    fn sub_mul_wrap() {
        let a = Tainted::new(i64::MAX);
        let b = Tainted::new(1i64);
        assert_eq!(*a.try_add(&b).unwrap().value(), i64::MIN);
        assert_eq!(*a.try_sub(&b).unwrap().value(), i64::MAX - 1);
        assert_eq!(*b.try_mul(&b).unwrap().value(), 1);
    }

    #[test]
    fn equality_ignores_taint() {
        let a = Tainted::with_policy(5i64, Arc::new(UntrustedData::new()) as PolicyRef);
        let b = Tainted::new(5i64);
        assert_eq!(a, b);
    }

    #[test]
    fn add_remove_policy() {
        let mut a = Tainted::new(1i64);
        let p: PolicyRef = Arc::new(UntrustedData::new());
        a.add_policy(p.clone());
        assert!(a.has_policy::<UntrustedData>());
        a.remove_policy(&p);
        assert!(!a.has_policy::<UntrustedData>());
        assert_eq!(a.into_value(), 1);
    }

    #[test]
    fn with_label_and_add_label() {
        let l = Label::of(&(Arc::new(UntrustedData::new()) as PolicyRef));
        let mut a = Tainted::with_label(9i64, l);
        assert_eq!(a.label(), l);
        a.add_label(Label::EMPTY);
        assert_eq!(a.label(), l);
    }
}
