//! Byte-range label maps.
//!
//! RESIN tracks policies at character granularity (§3.4): in PHP, "each
//! policy object contains a character range for which the policy applies"
//! (§4). [`SpanMap`] is that structure: a sorted, non-overlapping,
//! coalesced list of byte ranges, each carrying a non-empty interned
//! [`Label`]. Bytes not covered by any span carry [`Label::EMPTY`].
//!
//! Because labels are canonical handles, coalescing adjacent equal spans is
//! an integer compare and unioning a label into a range is an O(1)
//! memoized table hit — no structural policy comparison happens here.
//!
//! # Performance model
//!
//! The sorted-coalesced invariant is maintained *structurally*, never by
//! re-sorting: every mutation splices a locally-renormalized segment into an
//! already-normal map. The hot paths are:
//!
//! * [`append`](SpanMap::append) (concatenation) — O(m) in the appended
//!   spans, with a single boundary-coalesce check at the seam;
//! * [`edit`](SpanMap::edit) / [`slice`](SpanMap::slice) /
//!   [`at`](SpanMap::at) — binary-search their start position, then touch
//!   only the spans intersecting the range;
//! * maps with ≤ 2 spans (the overwhelming majority of request fields)
//!   live in inline storage and never heap-allocate.

use std::ops::Range;

use crate::label::{Label, PolicyId};
use crate::policy::{Policy, PolicyRef};

/// One labeled byte range. `end` is exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte covered.
    pub start: usize,
    /// One past the last byte covered.
    pub end: usize,
    /// Label applying to every byte in `start..end` (never empty).
    pub label: Label,
}

impl Span {
    fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

const EMPTY_SPAN: Span = Span {
    start: 0,
    end: 0,
    label: Label::EMPTY,
};

/// Spans kept inline before spilling to the heap. Two covers the typical
/// request field: one tainted payload, possibly flanked by one more range.
const INLINE_SPANS: usize = 2;

/// A hand-rolled SmallVec for [`Span`]s: up to [`INLINE_SPANS`] spans are
/// stored inline (no heap allocation), spilling to a `Vec` beyond that.
///
/// Only the operations [`SpanMap`] needs are implemented; slice access goes
/// through `Deref`, so searching/sorting reuse the std slice machinery.
#[derive(Debug, Clone)]
enum SpanVec {
    /// `len` spans stored inline in `buf[..len]`.
    Inline { len: u8, buf: [Span; INLINE_SPANS] },
    /// Spilled storage (once spilled, a map never moves back inline).
    Heap(Vec<Span>),
}

impl SpanVec {
    const fn new() -> Self {
        SpanVec::Inline {
            len: 0,
            buf: [EMPTY_SPAN; INLINE_SPANS],
        }
    }

    fn as_slice(&self) -> &[Span] {
        match self {
            SpanVec::Inline { len, buf } => &buf[..*len as usize],
            SpanVec::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Span] {
        match self {
            SpanVec::Inline { len, buf } => &mut buf[..*len as usize],
            SpanVec::Heap(v) => v,
        }
    }

    /// Moves inline storage to the heap with room for `extra` more spans.
    fn spill(&mut self, extra: usize) -> &mut Vec<Span> {
        if let SpanVec::Inline { len, buf } = self {
            let mut v = Vec::with_capacity((*len as usize + extra).max(INLINE_SPANS * 2));
            v.extend_from_slice(&buf[..*len as usize]);
            *self = SpanVec::Heap(v);
        }
        match self {
            SpanVec::Heap(v) => v,
            SpanVec::Inline { .. } => unreachable!("just spilled"),
        }
    }

    fn reserve(&mut self, extra: usize) {
        match self {
            SpanVec::Inline { len, .. } => {
                if *len as usize + extra > INLINE_SPANS {
                    self.spill(extra);
                }
            }
            SpanVec::Heap(v) => v.reserve(extra),
        }
    }

    fn push(&mut self, s: Span) {
        match self {
            SpanVec::Inline { len, buf } if (*len as usize) < INLINE_SPANS => {
                buf[*len as usize] = s;
                *len += 1;
            }
            SpanVec::Inline { .. } => self.spill(1).push(s),
            SpanVec::Heap(v) => v.push(s),
        }
    }

    fn insert(&mut self, i: usize, s: Span) {
        match self {
            SpanVec::Inline { len, buf } if (*len as usize) < INLINE_SPANS => {
                let n = *len as usize;
                buf.copy_within(i..n, i + 1);
                buf[i] = s;
                *len += 1;
            }
            SpanVec::Inline { .. } => self.spill(1).insert(i, s),
            SpanVec::Heap(v) => v.insert(i, s),
        }
    }

    fn remove(&mut self, i: usize) {
        match self {
            SpanVec::Inline { len, buf } => {
                let n = *len as usize;
                buf.copy_within(i + 1..n, i);
                *len -= 1;
            }
            SpanVec::Heap(v) => {
                v.remove(i);
            }
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            SpanVec::Inline { len, .. } => *len = (*len).min(n as u8),
            SpanVec::Heap(v) => v.truncate(n),
        }
    }

    /// Replaces `self[lo..hi]` with `seg` (the splice primitive `edit`
    /// renormalizes through).
    fn replace_range(&mut self, lo: usize, hi: usize, seg: &[Span]) {
        let n = self.as_slice().len();
        let new_len = n - (hi - lo) + seg.len();
        match self {
            SpanVec::Inline { len, buf } if new_len <= INLINE_SPANS => {
                buf.copy_within(hi..n, lo + seg.len());
                buf[lo..lo + seg.len()].copy_from_slice(seg);
                *len = new_len as u8;
            }
            _ => {
                let v = self.spill(seg.len());
                v.splice(lo..hi, seg.iter().copied());
            }
        }
    }
}

impl std::ops::Deref for SpanVec {
    type Target = [Span];
    fn deref(&self) -> &[Span] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for SpanVec {
    fn deref_mut(&mut self) -> &mut [Span] {
        self.as_mut_slice()
    }
}

impl Default for SpanVec {
    fn default() -> Self {
        SpanVec::new()
    }
}

/// A normalized map from byte ranges to labels.
#[derive(Debug, Clone, Default)]
pub struct SpanMap {
    spans: SpanVec,
}

impl SpanMap {
    /// The empty map (no byte carries a policy).
    pub const fn new() -> Self {
        SpanMap {
            spans: SpanVec::new(),
        }
    }

    /// True when no byte carries a policy.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of distinct spans (after normalization).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates `(range, label)` pairs in byte order.
    pub fn iter(&self) -> impl Iterator<Item = (Range<usize>, Label)> + '_ {
        self.spans.iter().map(|s| (s.range(), s.label))
    }

    /// The label covering byte `idx` ([`Label::EMPTY`] if uncovered).
    pub fn at(&self, idx: usize) -> Label {
        let i = self.spans.partition_point(|s| s.end <= idx);
        match self.spans.get(i) {
            Some(s) if s.start <= idx => s.label,
            _ => Label::EMPTY,
        }
    }

    /// The union of all labels anywhere in the map — memoized label unions,
    /// no policy objects touched.
    ///
    /// Runs of spans repeating one label (common in sliced maps, where gaps
    /// keep equal-labeled spans from coalescing) cost one handle compare
    /// each: the running union only advances when the label changes.
    pub fn union_all(&self) -> Label {
        let mut out = Label::EMPTY;
        let mut prev = Label::EMPTY;
        for s in self.spans.iter() {
            if s.label == prev || s.label == out {
                continue;
            }
            prev = s.label;
            out = out.union(s.label);
        }
        out
    }

    /// Splits any span straddling `pos` so that `pos` is a span boundary.
    fn split_at(&mut self, pos: usize) {
        let i = self.spans.partition_point(|s| s.end <= pos);
        if let Some(s) = self.spans.get(i) {
            if s.start < pos {
                let tail = Span {
                    start: pos,
                    end: s.end,
                    label: s.label,
                };
                self.spans[i].end = pos;
                self.spans.insert(i + 1, tail);
            }
        }
    }

    /// Coalesces `spans[i-1]` into `spans[i]`'s slot when they touch and
    /// share a label (the seam repair after a splice).
    fn coalesce_seam(&mut self, i: usize) {
        if i == 0 || i >= self.spans.len() {
            return;
        }
        let (a, b) = (self.spans[i - 1], self.spans[i]);
        if a.end == b.start && a.label == b.label {
            self.spans[i - 1].end = b.end;
            self.spans.remove(i);
        }
    }

    /// Applies `f` to the label of every byte in `range` (uncovered bytes
    /// see [`Label::EMPTY`]), then renormalizes.
    ///
    /// Cost: O(log n) to locate the range plus O(k) over the k spans
    /// intersecting it — spans outside the range are never visited, and the
    /// map is never re-sorted.
    pub fn edit<F>(&mut self, range: Range<usize>, f: F)
    where
        F: Fn(Label) -> Label,
    {
        if range.start >= range.end {
            return;
        }
        self.split_at(range.start);
        self.split_at(range.end);

        // Build the replacement segment: transformed covered spans plus
        // `f(EMPTY)` gap fills, locally coalesced.
        let fill = f(Label::EMPTY);
        let lo = self.spans.partition_point(|s| s.end <= range.start);
        let mut seg: Vec<Span> = Vec::new();
        let push_seg = |seg: &mut Vec<Span>, start: usize, end: usize, label: Label| {
            if label.is_empty() || start >= end {
                return;
            }
            if let Some(last) = seg.last_mut() {
                if last.end == start && last.label == label {
                    last.end = end;
                    return;
                }
            }
            seg.push(Span { start, end, label });
        };
        let mut cursor = range.start;
        let mut hi = lo;
        while let Some(s) = self.spans.get(hi) {
            if s.start >= range.end {
                break;
            }
            let s = *s;
            push_seg(&mut seg, cursor, s.start, fill);
            push_seg(&mut seg, s.start, s.end, f(s.label));
            cursor = s.end;
            hi += 1;
        }
        push_seg(&mut seg, cursor, range.end, fill);

        self.spans.replace_range(lo, hi, &seg);
        // Repair the two seams (right first so the left index stays valid).
        self.coalesce_seam(lo + seg.len());
        self.coalesce_seam(lo);
        debug_assert!(self.is_normalized());
    }

    /// Adds `policy` to every byte in `range`.
    pub fn add_policy(&mut self, range: Range<usize>, policy: PolicyRef) {
        let label = Label::of(&policy);
        self.add_label(range, label);
    }

    /// Unions `label` into every byte in `range`.
    pub fn add_label(&mut self, range: Range<usize>, label: Label) {
        if label.is_empty() {
            return;
        }
        self.edit(range, |cur| cur.union(label));
    }

    /// Removes any policy equal to `policy` from every byte in `range`.
    pub fn remove_policy(&mut self, range: Range<usize>, policy: &PolicyRef) {
        if self.spans.is_empty() || range.start >= range.end {
            return; // nothing to remove — don't intern for a no-op
        }
        let id = PolicyId::intern(policy);
        self.edit(range, |l| l.remove(id));
    }

    /// Removes every policy of type `T` from every byte in `range`.
    pub fn remove_type<T: Policy>(&mut self, range: Range<usize>) {
        if self.spans.is_empty() {
            return;
        }
        self.edit(range, |l| l.without_type::<T>());
    }

    /// Extracts the sub-map for `range`, rebased to offset zero.
    ///
    /// A slice of a normalized map is normalized (clipping moves no interior
    /// boundary), so no renormalization pass runs.
    pub fn slice(&self, range: Range<usize>) -> SpanMap {
        let mut out = SpanMap::new();
        if range.start >= range.end {
            return out;
        }
        let lo = self.spans.partition_point(|s| s.end <= range.start);
        for s in self.spans[lo..].iter() {
            if s.start >= range.end {
                break;
            }
            let start = s.start.max(range.start);
            let end = s.end.min(range.end);
            if start < end {
                out.spans.push(Span {
                    start: start - range.start,
                    end: end - range.start,
                    label: s.label,
                });
            }
        }
        debug_assert!(out.is_normalized());
        out
    }

    /// Appends `other`'s spans shifted by `offset` (concatenation support).
    ///
    /// Both maps are normalized and concatenation shifts `other` past this
    /// map's end, so the result is normal by construction: an O(m) extend
    /// with one coalesce check at the seam. (An `offset` that interleaves
    /// the two maps — not reachable from string concatenation — falls back
    /// to a general merge.)
    pub fn append(&mut self, other: &SpanMap, offset: usize) {
        let Some(first) = other.spans.first() else {
            return;
        };
        let appendable = match self.spans.last() {
            Some(last) => first.start + offset >= last.end,
            None => true,
        };
        if appendable {
            self.spans.reserve(other.spans.len());
            for s in other.spans.iter() {
                self.push_coalesced(s.start + offset, s.end + offset, s.label);
            }
        } else {
            for s in other.spans.iter() {
                self.add_label(s.start + offset..s.end + offset, s.label);
            }
        }
        debug_assert!(self.is_normalized());
    }

    /// Appends one span at the end of the map (its start must not precede
    /// the current end), coalescing with the last span when possible.
    ///
    /// This is the O(1) primitive [`TaintedStrBuilder`] composition rides
    /// on: the map stays normalized without ever being re-sorted.
    ///
    /// [`TaintedStrBuilder`]: crate::taint::TaintedStrBuilder
    pub(crate) fn push_coalesced(&mut self, start: usize, end: usize, label: Label) {
        if label.is_empty() || start >= end {
            return;
        }
        if let Some(last) = self.spans.last_mut() {
            debug_assert!(last.end <= start, "push_coalesced out of order");
            if last.end == start && last.label == label {
                last.end = end;
                return;
            }
        }
        self.spans.push(Span { start, end, label });
    }

    /// True if every byte in `0..len` has a label satisfying `pred`.
    /// Vacuously true when `len == 0`.
    pub fn all_bytes<F>(&self, len: usize, pred: F) -> bool
    where
        F: Fn(Label) -> bool,
    {
        if len == 0 {
            return true;
        }
        let mut cursor = 0usize;
        for s in self.spans.iter() {
            if s.start >= len {
                break;
            }
            if s.start > cursor {
                // An uncovered gap: the empty label must satisfy the predicate.
                if !pred(Label::EMPTY) {
                    return false;
                }
            }
            if !pred(s.label) {
                return false;
            }
            cursor = s.end;
        }
        if cursor < len && !pred(Label::EMPTY) {
            return false;
        }
        true
    }

    /// True if any byte in `0..len` has a label satisfying `pred`.
    pub fn any_byte<F>(&self, len: usize, pred: F) -> bool
    where
        F: Fn(Label) -> bool,
    {
        !self.all_bytes(len, |l| !pred(l))
    }

    /// Byte ranges (clipped to `0..len`) whose label satisfies `pred`.
    pub fn ranges_where<F>(&self, len: usize, pred: F) -> Vec<Range<usize>>
    where
        F: Fn(Label) -> bool,
    {
        let hi = self.spans.partition_point(|s| s.start < len);
        self.spans[..hi]
            .iter()
            .filter(|s| pred(s.label))
            .map(|s| s.start..s.end.min(len))
            .collect()
    }

    /// Clamps all spans to `0..len` (used after truncation). O(log n):
    /// drops the spans past `len` and clips the one straddling it.
    pub fn clamp(&mut self, len: usize) {
        let hi = self.spans.partition_point(|s| s.start < len);
        self.spans.truncate(hi);
        if let Some(last) = self.spans.last_mut() {
            if last.end > len {
                last.end = len;
            }
        }
        debug_assert!(self.is_normalized());
    }

    /// The normalization laws: spans sorted, non-overlapping, non-empty,
    /// non-empty-labeled, and no two touching spans share a label.
    fn is_normalized(&self) -> bool {
        self.spans.windows(2).all(|w| {
            w[0].end <= w[1].start && !(w[0].end == w[1].start && w[0].label == w[1].label)
        }) && self
            .spans
            .iter()
            .all(|s| s.start < s.end && !s.label.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{SqlSanitized, UntrustedData};
    use std::sync::Arc;

    fn untrusted() -> PolicyRef {
        Arc::new(UntrustedData::new())
    }

    fn sanitized() -> PolicyRef {
        Arc::new(SqlSanitized::new())
    }

    #[test]
    fn add_and_lookup() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        assert!(m.at(1).is_empty());
        assert!(m.at(2).has::<UntrustedData>());
        assert!(m.at(4).has::<UntrustedData>());
        assert!(m.at(5).is_empty());
    }

    #[test]
    fn overlapping_adds_union() {
        let mut m = SpanMap::new();
        m.add_policy(0..6, untrusted());
        m.add_policy(3..9, sanitized());
        assert_eq!(m.at(1).len(), 1);
        assert_eq!(m.at(4).len(), 2);
        assert_eq!(m.at(7).len(), 1);
        assert!(m.at(7).has::<SqlSanitized>());
        assert_eq!(m.span_count(), 3);
    }

    #[test]
    fn coalescing_adjacent_equal_spans() {
        let mut m = SpanMap::new();
        m.add_policy(0..3, untrusted());
        m.add_policy(3..6, untrusted());
        assert_eq!(m.span_count(), 1, "adjacent equal spans coalesce");
        assert!(m.at(0).has::<UntrustedData>());
        assert!(m.at(5).has::<UntrustedData>());
    }

    #[test]
    fn remove_policy_splits() {
        let mut m = SpanMap::new();
        m.add_policy(0..10, untrusted());
        m.remove_type::<UntrustedData>(3..5);
        assert!(m.at(2).has::<UntrustedData>());
        assert!(m.at(3).is_empty());
        assert!(m.at(4).is_empty());
        assert!(m.at(5).has::<UntrustedData>());
        assert_eq!(m.span_count(), 2);
    }

    #[test]
    fn remove_specific_policy() {
        let mut m = SpanMap::new();
        m.add_policy(0..4, untrusted());
        m.add_policy(0..4, sanitized());
        m.remove_policy(0..4, &untrusted());
        assert!(!m.at(0).has::<UntrustedData>());
        assert!(m.at(0).has::<SqlSanitized>());
    }

    #[test]
    fn remove_policy_on_empty_map_is_noop() {
        // The early return: no interner traffic, no edit machinery.
        let mut m = SpanMap::new();
        m.remove_policy(0..10, &untrusted());
        assert!(m.is_empty());
        m.remove_policy(5..5, &untrusted());
        assert!(m.is_empty());
    }

    #[test]
    fn slice_rebases() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        let s = m.slice(3..8);
        assert!(s.at(0).has::<UntrustedData>());
        assert!(s.at(1).has::<UntrustedData>());
        assert!(s.at(2).is_empty());
    }

    #[test]
    fn slice_multi_span_with_gaps() {
        let mut m = SpanMap::new();
        m.add_policy(0..2, untrusted());
        m.add_policy(4..6, untrusted());
        m.add_policy(8..10, sanitized());
        let s = m.slice(1..9);
        let got: Vec<_> = s.iter().map(|(r, _)| r).collect();
        assert_eq!(got, vec![0..1, 3..5, 7..8]);
    }

    #[test]
    fn append_shifts() {
        let mut a = SpanMap::new();
        a.add_policy(0..3, untrusted());
        let mut b = SpanMap::new();
        b.add_policy(0..3, sanitized());
        a.append(&b, 3);
        assert!(a.at(1).has::<UntrustedData>());
        assert!(a.at(4).has::<SqlSanitized>());
        assert!(!a.at(4).has::<UntrustedData>());
    }

    #[test]
    fn append_coalesces_at_seam() {
        let mut a = SpanMap::new();
        a.add_policy(0..3, untrusted());
        let mut b = SpanMap::new();
        b.add_policy(0..3, untrusted());
        a.append(&b, 3);
        assert_eq!(a.span_count(), 1, "equal labels merge across the seam");
        a.append(&b, 7);
        assert_eq!(a.span_count(), 2, "gap at byte 6..7 keeps spans apart");
    }

    #[test]
    fn append_overlapping_offset_falls_back() {
        // Not reachable from concat, but the API tolerates it.
        let mut a = SpanMap::new();
        a.add_policy(0..6, untrusted());
        let mut b = SpanMap::new();
        b.add_policy(0..2, untrusted());
        a.append(&b, 2);
        assert!(a.at(3).has::<UntrustedData>());
        assert!(a.at(5).has::<UntrustedData>());
    }

    #[test]
    fn all_bytes_and_gaps() {
        let mut m = SpanMap::new();
        m.add_policy(0..3, untrusted());
        assert!(m.all_bytes(3, |l| l.has::<UntrustedData>()));
        assert!(
            !m.all_bytes(4, |l| l.has::<UntrustedData>()),
            "byte 3 uncovered"
        );
        m.add_policy(5..8, untrusted());
        assert!(!m.all_bytes(8, |l| l.has::<UntrustedData>()), "gap 3..5");
        assert!(m.any_byte(8, |l| l.has::<UntrustedData>()));
        assert!(!m.any_byte(8, |l| l.has::<SqlSanitized>()));
    }

    #[test]
    fn all_bytes_vacuous_on_empty() {
        let m = SpanMap::new();
        assert!(m.all_bytes(0, |_| false));
        assert!(!m.all_bytes(1, |l| !l.is_empty()));
    }

    #[test]
    fn ranges_where_reports_clipped() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        m.add_policy(7..12, untrusted());
        let r = m.ranges_where(10, |l| l.has::<UntrustedData>());
        assert_eq!(r, vec![2..5, 7..10]);
    }

    #[test]
    fn clamp_truncates() {
        let mut m = SpanMap::new();
        m.add_policy(0..10, untrusted());
        m.clamp(4);
        assert!(m.at(3).has::<UntrustedData>());
        assert!(m.at(4).is_empty());
    }

    #[test]
    fn clamp_drops_and_clips() {
        let mut m = SpanMap::new();
        m.add_policy(0..2, untrusted());
        m.add_policy(3..6, sanitized());
        m.add_policy(8..9, untrusted());
        m.clamp(4);
        let got: Vec<_> = m.iter().map(|(r, _)| r).collect();
        assert_eq!(got, vec![0..2, 3..4]);
        m.clamp(0);
        assert!(m.is_empty());
    }

    #[test]
    fn union_all_collects() {
        let mut m = SpanMap::new();
        m.add_policy(0..2, untrusted());
        m.add_policy(4..6, sanitized());
        let u = m.union_all();
        assert!(u.has::<UntrustedData>());
        assert!(u.has::<SqlSanitized>());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn union_all_skips_repeated_labels() {
        // A sliced map: the same label repeats across gaps and never
        // coalesces. The running union must still be correct (and cheap).
        let mut m = SpanMap::new();
        for i in 0..8 {
            m.add_policy(i * 3..i * 3 + 2, untrusted());
        }
        m.add_policy(30..32, sanitized());
        assert_eq!(m.span_count(), 9);
        let u = m.union_all();
        assert!(u.has::<UntrustedData>());
        assert!(u.has::<SqlSanitized>());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn empty_range_edit_is_noop() {
        let mut m = SpanMap::new();
        m.add_policy(3..3, untrusted());
        assert!(m.is_empty());
    }

    #[test]
    fn add_empty_label_is_noop() {
        let mut m = SpanMap::new();
        m.add_label(0..5, Label::EMPTY);
        assert!(m.is_empty());
    }

    #[test]
    fn inline_storage_spills_and_survives() {
        // Cross the 2-span inline boundary in both directions.
        let mut m = SpanMap::new();
        m.add_policy(0..1, untrusted());
        m.add_policy(2..3, sanitized());
        assert_eq!(m.span_count(), 2);
        m.add_policy(4..5, untrusted());
        m.add_policy(6..7, sanitized());
        assert_eq!(m.span_count(), 4);
        assert!(m.at(0).has::<UntrustedData>());
        assert!(m.at(6).has::<SqlSanitized>());
        m.remove_type::<UntrustedData>(0..7);
        let got: Vec<_> = m.iter().map(|(r, _)| r).collect();
        assert_eq!(got, vec![2..3, 6..7]);
    }

    #[test]
    fn edit_fills_gaps_between_spans() {
        let mut m = SpanMap::new();
        m.add_policy(1..2, untrusted());
        m.add_policy(4..5, untrusted());
        // Union a second policy over the whole window, covering the gaps.
        m.add_policy(0..6, sanitized());
        assert!(m.at(0).has::<SqlSanitized>());
        assert!(!m.at(0).has::<UntrustedData>());
        assert_eq!(m.at(1).len(), 2);
        assert!(m.at(3).has::<SqlSanitized>());
        assert_eq!(m.at(4).len(), 2);
        assert!(m.at(5).has::<SqlSanitized>());
    }
}
