//! Byte-range label maps.
//!
//! RESIN tracks policies at character granularity (§3.4): in PHP, "each
//! policy object contains a character range for which the policy applies"
//! (§4). [`SpanMap`] is that structure: a sorted, non-overlapping,
//! coalesced list of byte ranges, each carrying a non-empty interned
//! [`Label`]. Bytes not covered by any span carry [`Label::EMPTY`].
//!
//! Because labels are canonical handles, coalescing adjacent equal spans is
//! an integer compare and unioning a label into a range is an O(1)
//! memoized table hit — no structural policy comparison happens here.

use std::ops::Range;

use crate::label::{Label, PolicyId};
use crate::policy::{Policy, PolicyRef};

/// One labeled byte range. `end` is exclusive.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// First byte covered.
    pub start: usize,
    /// One past the last byte covered.
    pub end: usize,
    /// Label applying to every byte in `start..end` (never empty).
    pub label: Label,
}

impl Span {
    fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// A normalized map from byte ranges to labels.
#[derive(Debug, Clone, Default)]
pub struct SpanMap {
    spans: Vec<Span>,
}

impl SpanMap {
    /// The empty map (no byte carries a policy).
    pub const fn new() -> Self {
        SpanMap { spans: Vec::new() }
    }

    /// True when no byte carries a policy.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of distinct spans (after normalization).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates `(range, label)` pairs in byte order.
    pub fn iter(&self) -> impl Iterator<Item = (Range<usize>, Label)> + '_ {
        self.spans.iter().map(|s| (s.range(), s.label))
    }

    /// The label covering byte `idx` ([`Label::EMPTY`] if uncovered).
    pub fn at(&self, idx: usize) -> Label {
        match self
            .spans
            .binary_search_by(|s| {
                if idx < s.start {
                    std::cmp::Ordering::Greater
                } else if idx >= s.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
        {
            Some(i) => self.spans[i].label,
            None => Label::EMPTY,
        }
    }

    /// The union of all labels anywhere in the map — memoized label unions,
    /// no policy objects touched.
    pub fn union_all(&self) -> Label {
        let mut out = Label::EMPTY;
        for s in &self.spans {
            out = out.union(s.label);
        }
        out
    }

    /// Splits any span straddling `pos` so that `pos` is a span boundary.
    fn split_at(&mut self, pos: usize) {
        if let Some(i) = self.spans.iter().position(|s| s.start < pos && pos < s.end) {
            let tail = Span {
                start: pos,
                end: self.spans[i].end,
                label: self.spans[i].label,
            };
            self.spans[i].end = pos;
            self.spans.insert(i + 1, tail);
        }
    }

    /// Applies `f` to the label of every byte in `range` (uncovered bytes
    /// see [`Label::EMPTY`]), then renormalizes.
    pub fn edit<F>(&mut self, range: Range<usize>, f: F)
    where
        F: Fn(Label) -> Label,
    {
        if range.start >= range.end {
            return;
        }
        self.split_at(range.start);
        self.split_at(range.end);

        // Transform covered segments inside the range.
        for s in &mut self.spans {
            if s.start >= range.start && s.end <= range.end {
                s.label = f(s.label);
            }
        }

        // Fill gaps inside the range with f(EMPTY), if non-empty.
        let fill = f(Label::EMPTY);
        if !fill.is_empty() {
            let mut gaps: Vec<Span> = Vec::new();
            let mut cursor = range.start;
            for s in &self.spans {
                if s.end <= range.start || s.start >= range.end {
                    continue;
                }
                if s.start > cursor {
                    gaps.push(Span {
                        start: cursor,
                        end: s.start,
                        label: fill,
                    });
                }
                cursor = s.end;
            }
            if cursor < range.end {
                gaps.push(Span {
                    start: cursor,
                    end: range.end,
                    label: fill,
                });
            }
            self.spans.extend(gaps);
        }
        self.normalize();
    }

    /// Adds `policy` to every byte in `range`.
    pub fn add_policy(&mut self, range: Range<usize>, policy: PolicyRef) {
        let label = Label::of(&policy);
        self.add_label(range, label);
    }

    /// Unions `label` into every byte in `range`.
    pub fn add_label(&mut self, range: Range<usize>, label: Label) {
        if label.is_empty() {
            return;
        }
        self.edit(range, |cur| cur.union(label));
    }

    /// Removes any policy equal to `policy` from every byte in `range`.
    pub fn remove_policy(&mut self, range: Range<usize>, policy: &PolicyRef) {
        let id = PolicyId::intern(policy);
        self.edit(range, |l| l.remove(id));
    }

    /// Removes every policy of type `T` from every byte in `range`.
    pub fn remove_type<T: Policy>(&mut self, range: Range<usize>) {
        self.edit(range, |l| l.without_type::<T>());
    }

    /// Extracts the sub-map for `range`, rebased to offset zero.
    pub fn slice(&self, range: Range<usize>) -> SpanMap {
        let mut out = Vec::new();
        for s in &self.spans {
            let start = s.start.max(range.start);
            let end = s.end.min(range.end);
            if start < end {
                out.push(Span {
                    start: start - range.start,
                    end: end - range.start,
                    label: s.label,
                });
            }
        }
        let mut m = SpanMap { spans: out };
        m.normalize();
        m
    }

    /// Appends `other`'s spans shifted by `offset` (concatenation support).
    pub fn append(&mut self, other: &SpanMap, offset: usize) {
        for s in &other.spans {
            self.spans.push(Span {
                start: s.start + offset,
                end: s.end + offset,
                label: s.label,
            });
        }
        self.normalize();
    }

    /// True if every byte in `0..len` has a label satisfying `pred`.
    /// Vacuously true when `len == 0`.
    pub fn all_bytes<F>(&self, len: usize, pred: F) -> bool
    where
        F: Fn(Label) -> bool,
    {
        if len == 0 {
            return true;
        }
        let mut cursor = 0usize;
        for s in &self.spans {
            if s.start >= len {
                break;
            }
            if s.start > cursor {
                // An uncovered gap: the empty label must satisfy the predicate.
                if !pred(Label::EMPTY) {
                    return false;
                }
            }
            if !pred(s.label) {
                return false;
            }
            cursor = s.end;
        }
        if cursor < len && !pred(Label::EMPTY) {
            return false;
        }
        true
    }

    /// True if any byte in `0..len` has a label satisfying `pred`.
    pub fn any_byte<F>(&self, len: usize, pred: F) -> bool
    where
        F: Fn(Label) -> bool,
    {
        !self.all_bytes(len, |l| !pred(l))
    }

    /// Byte ranges (clipped to `0..len`) whose label satisfies `pred`.
    pub fn ranges_where<F>(&self, len: usize, pred: F) -> Vec<Range<usize>>
    where
        F: Fn(Label) -> bool,
    {
        let mut out = Vec::new();
        for s in &self.spans {
            if s.start >= len {
                break;
            }
            if pred(s.label) {
                out.push(s.start..s.end.min(len));
            }
        }
        out
    }

    /// Drops empty labels, sorts, and coalesces adjacent equal spans.
    /// Coalescing is an integer compare on label handles.
    fn normalize(&mut self) {
        self.spans
            .retain(|s| !s.label.is_empty() && s.start < s.end);
        self.spans.sort_by_key(|s| s.start);
        let mut out: Vec<Span> = Vec::with_capacity(self.spans.len());
        for s in self.spans.drain(..) {
            if let Some(last) = out.last_mut() {
                if last.end == s.start && last.label == s.label {
                    last.end = s.end;
                    continue;
                }
            }
            out.push(s);
        }
        self.spans = out;
    }

    /// Clamps all spans to `0..len` (used after truncation).
    pub fn clamp(&mut self, len: usize) {
        for s in &mut self.spans {
            s.end = s.end.min(len);
        }
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{SqlSanitized, UntrustedData};
    use std::sync::Arc;

    fn untrusted() -> PolicyRef {
        Arc::new(UntrustedData::new())
    }

    fn sanitized() -> PolicyRef {
        Arc::new(SqlSanitized::new())
    }

    #[test]
    fn add_and_lookup() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        assert!(m.at(1).is_empty());
        assert!(m.at(2).has::<UntrustedData>());
        assert!(m.at(4).has::<UntrustedData>());
        assert!(m.at(5).is_empty());
    }

    #[test]
    fn overlapping_adds_union() {
        let mut m = SpanMap::new();
        m.add_policy(0..6, untrusted());
        m.add_policy(3..9, sanitized());
        assert_eq!(m.at(1).len(), 1);
        assert_eq!(m.at(4).len(), 2);
        assert_eq!(m.at(7).len(), 1);
        assert!(m.at(7).has::<SqlSanitized>());
        assert_eq!(m.span_count(), 3);
    }

    #[test]
    fn coalescing_adjacent_equal_spans() {
        let mut m = SpanMap::new();
        m.add_policy(0..3, untrusted());
        m.add_policy(3..6, untrusted());
        assert_eq!(m.span_count(), 1, "adjacent equal spans coalesce");
        assert!(m.at(0).has::<UntrustedData>());
        assert!(m.at(5).has::<UntrustedData>());
    }

    #[test]
    fn remove_policy_splits() {
        let mut m = SpanMap::new();
        m.add_policy(0..10, untrusted());
        m.remove_type::<UntrustedData>(3..5);
        assert!(m.at(2).has::<UntrustedData>());
        assert!(m.at(3).is_empty());
        assert!(m.at(4).is_empty());
        assert!(m.at(5).has::<UntrustedData>());
        assert_eq!(m.span_count(), 2);
    }

    #[test]
    fn remove_specific_policy() {
        let mut m = SpanMap::new();
        m.add_policy(0..4, untrusted());
        m.add_policy(0..4, sanitized());
        m.remove_policy(0..4, &untrusted());
        assert!(!m.at(0).has::<UntrustedData>());
        assert!(m.at(0).has::<SqlSanitized>());
    }

    #[test]
    fn slice_rebases() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        let s = m.slice(3..8);
        assert!(s.at(0).has::<UntrustedData>());
        assert!(s.at(1).has::<UntrustedData>());
        assert!(s.at(2).is_empty());
    }

    #[test]
    fn append_shifts() {
        let mut a = SpanMap::new();
        a.add_policy(0..3, untrusted());
        let mut b = SpanMap::new();
        b.add_policy(0..3, sanitized());
        a.append(&b, 3);
        assert!(a.at(1).has::<UntrustedData>());
        assert!(a.at(4).has::<SqlSanitized>());
        assert!(!a.at(4).has::<UntrustedData>());
    }

    #[test]
    fn all_bytes_and_gaps() {
        let mut m = SpanMap::new();
        m.add_policy(0..3, untrusted());
        assert!(m.all_bytes(3, |l| l.has::<UntrustedData>()));
        assert!(
            !m.all_bytes(4, |l| l.has::<UntrustedData>()),
            "byte 3 uncovered"
        );
        m.add_policy(5..8, untrusted());
        assert!(!m.all_bytes(8, |l| l.has::<UntrustedData>()), "gap 3..5");
        assert!(m.any_byte(8, |l| l.has::<UntrustedData>()));
        assert!(!m.any_byte(8, |l| l.has::<SqlSanitized>()));
    }

    #[test]
    fn all_bytes_vacuous_on_empty() {
        let m = SpanMap::new();
        assert!(m.all_bytes(0, |_| false));
        assert!(!m.all_bytes(1, |l| !l.is_empty()));
    }

    #[test]
    fn ranges_where_reports_clipped() {
        let mut m = SpanMap::new();
        m.add_policy(2..5, untrusted());
        m.add_policy(7..12, untrusted());
        let r = m.ranges_where(10, |l| l.has::<UntrustedData>());
        assert_eq!(r, vec![2..5, 7..10]);
    }

    #[test]
    fn clamp_truncates() {
        let mut m = SpanMap::new();
        m.add_policy(0..10, untrusted());
        m.clamp(4);
        assert!(m.at(3).has::<UntrustedData>());
        assert!(m.at(4).is_empty());
    }

    #[test]
    fn union_all_collects() {
        let mut m = SpanMap::new();
        m.add_policy(0..2, untrusted());
        m.add_policy(4..6, sanitized());
        let u = m.union_all();
        assert!(u.has::<UntrustedData>());
        assert!(u.has::<SqlSanitized>());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn empty_range_edit_is_noop() {
        let mut m = SpanMap::new();
        m.add_policy(3..3, untrusted());
        assert!(m.is_empty());
    }

    #[test]
    fn add_empty_label_is_noop() {
        let mut m = SpanMap::new();
        m.add_label(0..5, Label::EMPTY);
        assert!(m.is_empty());
    }
}
