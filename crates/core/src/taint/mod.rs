//! Data tracking: policies that travel with data (§3.4).
//!
//! The module provides the tainted data types ([`TaintedString`],
//! [`Tainted`]) plus the free-function API of Table 3
//! ([`policy_add`], [`policy_remove`], [`policy_get`]), which mirrors the
//! paper's Python prototype where `policy_add` returns a new string with
//! the same contents but a different policy set. Policy sets are interned
//! [`Label`] handles throughout.

pub mod spans;
pub mod string;
pub mod value;

pub use spans::{Span, SpanMap};
pub use string::{TaintedStrBuilder, TaintedString};
pub use value::Tainted;

use crate::label::Label;
use crate::policy::PolicyRef;

/// Anything that can carry a policy label.
pub trait Labeled {
    /// The union of all attached policies, as an interned label.
    fn label(&self) -> Label;
    /// Attaches a policy to the whole datum.
    fn attach(&mut self, policy: PolicyRef);
    /// Removes a policy from the whole datum.
    fn detach(&mut self, policy: &PolicyRef);
}

impl Labeled for TaintedString {
    fn label(&self) -> Label {
        TaintedString::label(self)
    }
    fn attach(&mut self, policy: PolicyRef) {
        self.add_policy(policy);
    }
    fn detach(&mut self, policy: &PolicyRef) {
        self.remove_policy(policy);
    }
}

impl<T: Clone> Labeled for Tainted<T> {
    fn label(&self) -> Label {
        Tainted::label(self)
    }
    fn attach(&mut self, policy: PolicyRef) {
        self.add_policy(policy);
    }
    fn detach(&mut self, policy: &PolicyRef) {
        self.remove_policy(policy);
    }
}

/// Adds `policy` to `data`'s policy set, returning the labeled datum
/// (Table 3: `policy_add(data, policy)`).
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let pw = policy_add(TaintedString::from("s3cret"),
///                     Arc::new(PasswordPolicy::new("u@foo.com")));
/// assert!(pw.has_policy::<PasswordPolicy>());
/// ```
pub fn policy_add<L: Labeled>(mut data: L, policy: PolicyRef) -> L {
    data.attach(policy);
    data
}

/// Removes `policy` from `data`'s policy set (Table 3: `policy_remove`).
pub fn policy_remove<L: Labeled>(mut data: L, policy: &PolicyRef) -> L {
    data.detach(policy);
    data
}

/// Returns the label of policies associated with `data` (Table 3:
/// `policy_get`).
pub fn policy_get<L: Labeled>(data: &L) -> Label {
    data.label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::UntrustedData;
    use std::sync::Arc;

    #[test]
    fn table3_api_roundtrip() {
        let p: PolicyRef = Arc::new(UntrustedData::new());
        let s = policy_add(TaintedString::from("x"), p.clone());
        assert_eq!(policy_get(&s).len(), 1);
        let s = policy_remove(s, &p);
        assert!(policy_get(&s).is_empty());
    }

    #[test]
    fn table3_api_on_scalars() {
        let p: PolicyRef = Arc::new(UntrustedData::new());
        let v = policy_add(Tainted::new(1i64), p.clone());
        assert!(policy_get(&v).has::<UntrustedData>());
        let v = policy_remove(v, &p);
        assert!(policy_get(&v).is_empty());
    }
}
