//! Data tracking: policies that travel with data (§3.4).
//!
//! The module provides the tainted data types ([`TaintedString`],
//! [`Tainted`]) plus the free-function API of Table 3
//! ([`policy_add`], [`policy_remove`], [`policy_get`]), which mirrors the
//! paper's Python prototype where `policy_add` returns a new string with
//! the same contents but a different policy set.

pub mod spans;
pub mod string;
pub mod value;

pub use spans::{Span, SpanMap};
pub use string::TaintedString;
pub use value::Tainted;

use crate::policy::PolicyRef;
use crate::policy_set::PolicySet;

/// Anything that can carry a policy set.
pub trait Labeled {
    /// The union of all attached policies.
    fn policy_set(&self) -> PolicySet;
    /// Attaches a policy to the whole datum.
    fn attach(&mut self, policy: PolicyRef);
    /// Removes a policy from the whole datum.
    fn detach(&mut self, policy: &PolicyRef);
}

impl Labeled for TaintedString {
    fn policy_set(&self) -> PolicySet {
        self.policies()
    }
    fn attach(&mut self, policy: PolicyRef) {
        self.add_policy(policy);
    }
    fn detach(&mut self, policy: &PolicyRef) {
        self.remove_policy(policy);
    }
}

impl<T: Clone> Labeled for Tainted<T> {
    fn policy_set(&self) -> PolicySet {
        self.policies().clone()
    }
    fn attach(&mut self, policy: PolicyRef) {
        self.add_policy(policy);
    }
    fn detach(&mut self, policy: &PolicyRef) {
        self.remove_policy(policy);
    }
}

/// Adds `policy` to `data`'s policy set, returning the labeled datum
/// (Table 3: `policy_add(data, policy)`).
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use std::sync::Arc;
///
/// let pw = policy_add(TaintedString::from("s3cret"),
///                     Arc::new(PasswordPolicy::new("u@foo.com")));
/// assert!(pw.has_policy::<PasswordPolicy>());
/// ```
pub fn policy_add<L: Labeled>(mut data: L, policy: PolicyRef) -> L {
    data.attach(policy);
    data
}

/// Removes `policy` from `data`'s policy set (Table 3: `policy_remove`).
pub fn policy_remove<L: Labeled>(mut data: L, policy: &PolicyRef) -> L {
    data.detach(policy);
    data
}

/// Returns the set of policies associated with `data` (Table 3:
/// `policy_get`).
pub fn policy_get<L: Labeled>(data: &L) -> PolicySet {
    data.policy_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::UntrustedData;
    use std::sync::Arc;

    #[test]
    fn table3_api_roundtrip() {
        let p: PolicyRef = Arc::new(UntrustedData::new());
        let s = policy_add(TaintedString::from("x"), p.clone());
        assert_eq!(policy_get(&s).len(), 1);
        let s = policy_remove(s, &p);
        assert!(policy_get(&s).is_empty());
    }

    #[test]
    fn table3_api_on_scalars() {
        let p: PolicyRef = Arc::new(UntrustedData::new());
        let v = policy_add(Tainted::new(1i64), p.clone());
        assert!(policy_get(&v).has::<UntrustedData>());
        let v = policy_remove(v, &p);
        assert!(policy_get(&v).is_empty());
    }
}
