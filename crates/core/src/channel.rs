//! Data flow channels: the I/O boundaries of the runtime.
//!
//! RESIN pre-defines default filter objects on all I/O channels into and out
//! of the runtime — sockets, pipes, files, HTTP output, email, SQL, and code
//! import (§3.2.1). A [`Channel`] bundles a channel kind, a mutable
//! [`Context`](crate::context::Context), a stack of
//! [`Filter`](crate::filter::Filter) objects, and a capture buffer standing
//! in for "the outside world": anything that survives `filter_write` is
//! appended to the buffer, which tests and applications can inspect.

use std::fmt;

use crate::context::Context;
use crate::error::Result;
use crate::filter::{DefaultFilter, Filter};
use crate::taint::TaintedString;

/// The kind of I/O channel a boundary guards.
///
/// The kind doubles as the `type` entry of the channel's default context, so
/// policy `export_check` methods can distinguish (say) email from HTTP, as in
/// the HotCRP password policy of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// HTTP response body sent to a browser.
    Http,
    /// Outgoing email (e.g. a sendmail pipe). Context carries the recipient.
    Email,
    /// A network socket.
    Socket,
    /// An OS pipe.
    Pipe,
    /// A file in the (virtual) filesystem.
    File,
    /// A SQL query channel to the database.
    Sql,
    /// Script code flowing into the interpreter (§3.2.2).
    CodeImport,
    /// An application-defined boundary (e.g. a function-call interface).
    Custom(&'static str),
}

impl ChannelKind {
    /// The string used for the `type` key in a channel context.
    pub fn type_name(&self) -> &'static str {
        match self {
            ChannelKind::Http => "http",
            ChannelKind::Email => "email",
            ChannelKind::Socket => "socket",
            ChannelKind::Pipe => "pipe",
            ChannelKind::File => "file",
            ChannelKind::Sql => "sql",
            ChannelKind::CodeImport => "code",
            ChannelKind::Custom(name) => name,
        }
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// A guarded I/O boundary.
///
/// Writing through the channel invokes every filter's `filter_write` in
/// order; reading invokes `filter_read` in order. The channel owns its
/// [`Context`], which applications may annotate with channel-specific
/// key–value pairs (`sock.__filter.context['user'] = req.user` in the
/// paper's MoinMoin example, Figure 5).
pub struct Channel {
    kind: ChannelKind,
    context: Context,
    filters: Vec<Box<dyn Filter>>,
    /// Data that crossed the boundary outward (visible to "the world").
    written: Vec<TaintedString>,
    /// Queued data the next `read` will pull through the inbound filters.
    inbound: Vec<TaintedString>,
    /// Running byte offset of outbound writes.
    write_offset: u64,
    /// Running byte offset of inbound reads.
    read_offset: u64,
}

impl Channel {
    /// Creates a channel of `kind` guarded by the default filter (Figure 3).
    pub fn new(kind: ChannelKind) -> Self {
        let context = Context::new(kind.clone());
        Channel {
            kind,
            context,
            filters: vec![Box::new(DefaultFilter)],
            written: Vec::new(),
            inbound: Vec::new(),
            write_offset: 0,
            read_offset: 0,
        }
    }

    /// Creates a channel with no filters at all (an *unguarded* boundary).
    ///
    /// Used to model the "unmodified PHP" baseline and for tests that need to
    /// observe raw flows.
    pub fn unguarded(kind: ChannelKind) -> Self {
        let context = Context::new(kind.clone());
        Channel {
            kind,
            context,
            filters: Vec::new(),
            written: Vec::new(),
            inbound: Vec::new(),
            write_offset: 0,
            read_offset: 0,
        }
    }

    /// The channel's kind.
    pub fn kind(&self) -> &ChannelKind {
        &self.kind
    }

    /// Immutable access to the channel context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Mutable access to the channel context, for application annotations.
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.context
    }

    /// Pushes an additional filter object onto the channel.
    ///
    /// Filters run in insertion order on write and on read.
    pub fn add_filter(&mut self, filter: Box<dyn Filter>) {
        self.filters.push(filter);
    }

    /// Replaces all filters (used e.g. to override the interpreter's import
    /// filter from a global configuration, §5.2).
    pub fn set_filters(&mut self, filters: Vec<Box<dyn Filter>>) {
        self.filters = filters;
    }

    /// Number of filters guarding the channel.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Writes `data` across the boundary.
    ///
    /// Each filter may check or alter the in-transit data; a policy violation
    /// aborts the write and nothing becomes visible in [`Channel::output`].
    pub fn write(&mut self, data: TaintedString) -> Result<()> {
        let mut buf = data;
        let offset = self.write_offset;
        for f in &self.filters {
            buf = f.filter_write(buf, offset, &self.context)?;
        }
        self.write_offset += buf.len() as u64;
        self.written.push(buf);
        Ok(())
    }

    /// Writes a plain (policy-free) string across the boundary.
    pub fn write_str(&mut self, data: &str) -> Result<()> {
        self.write(TaintedString::from(data))
    }

    /// Queues data on the inbound side, as if it arrived from outside.
    pub fn feed(&mut self, data: TaintedString) {
        self.inbound.push(data);
    }

    /// Reads the next queued inbound datum through the read filters.
    ///
    /// Returns `Ok(None)` when no data is queued. Filters may assign initial
    /// policies (e.g. deserialize persistent policies) or reject the data
    /// (e.g. the code-import filter of Figure 6).
    pub fn read(&mut self) -> Result<Option<TaintedString>> {
        let Some(mut buf) = (if self.inbound.is_empty() {
            None
        } else {
            Some(self.inbound.remove(0))
        }) else {
            return Ok(None);
        };
        let offset = self.read_offset;
        for f in &self.filters {
            buf = f.filter_read(buf, offset, &self.context)?;
        }
        self.read_offset += buf.len() as u64;
        Ok(Some(buf))
    }

    /// Everything that successfully crossed the boundary outward.
    pub fn output(&self) -> &[TaintedString] {
        &self.written
    }

    /// The outbound data concatenated into one plain string.
    pub fn output_text(&self) -> String {
        self.written.iter().map(|t| t.as_str()).collect()
    }

    /// Discards all captured output (used by output buffering, §5.5).
    pub fn clear_output(&mut self) {
        self.written.clear();
    }

    /// Removes and returns captured output produced after `mark` writes.
    ///
    /// Building block for the output-buffering mechanism: the web layer
    /// records a mark at `try`-block entry and truncates back to it when the
    /// block raises.
    pub fn truncate_output(&mut self, mark: usize) -> Vec<TaintedString> {
        self.written.split_off(mark.min(self.written.len()))
    }

    /// Number of successful outbound writes (the "mark" for buffering).
    pub fn output_mark(&self) -> usize {
        self.written.len()
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("kind", &self.kind)
            .field("filters", &self.filters.len())
            .field("written", &self.written.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::PasswordPolicy;
    use crate::policy::PolicyRef;
    use std::sync::Arc;

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    #[test]
    fn kind_type_names() {
        assert_eq!(ChannelKind::Http.type_name(), "http");
        assert_eq!(ChannelKind::Email.type_name(), "email");
        assert_eq!(ChannelKind::Custom("enc").type_name(), "enc");
        assert_eq!(ChannelKind::CodeImport.to_string(), "code");
    }

    #[test]
    fn plain_data_passes_default_filter() {
        let mut ch = Channel::new(ChannelKind::Http);
        ch.write_str("hello").unwrap();
        assert_eq!(ch.output_text(), "hello");
    }

    #[test]
    fn password_blocked_on_http_allowed_on_own_email() {
        let mut http = Channel::new(ChannelKind::Http);
        let mut secret = TaintedString::from("s3cret");
        secret.add_policy(pw("u@foo.com"));
        let err = http.write(secret.clone()).unwrap_err();
        assert!(err.is_violation());
        assert_eq!(http.output_text(), "", "nothing visible after violation");

        let mut mail = Channel::new(ChannelKind::Email);
        mail.context_mut().set_str("email", "u@foo.com");
        mail.write(secret).unwrap();
        assert_eq!(mail.output_text(), "s3cret");
    }

    #[test]
    fn context_annotation_reaches_policy() {
        let mut mail = Channel::new(ChannelKind::Email);
        mail.context_mut().set_str("email", "other@foo.com");
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@foo.com"));
        assert!(mail.write(secret).is_err(), "wrong recipient must fail");
    }

    #[test]
    fn unguarded_channel_leaks() {
        let mut ch = Channel::unguarded(ChannelKind::Http);
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@foo.com"));
        ch.write(secret).unwrap();
        assert_eq!(ch.output_text(), "pw", "no filters, no protection");
    }

    #[test]
    fn read_pulls_through_filters() {
        let mut ch = Channel::new(ChannelKind::Socket);
        assert!(ch.read().unwrap().is_none());
        ch.feed(TaintedString::from("in"));
        let got = ch.read().unwrap().unwrap();
        assert_eq!(got.as_str(), "in");
        assert!(ch.read().unwrap().is_none());
    }

    #[test]
    fn truncate_output_supports_buffering() {
        let mut ch = Channel::new(ChannelKind::Http);
        ch.write_str("keep").unwrap();
        let mark = ch.output_mark();
        ch.write_str("discard1").unwrap();
        ch.write_str("discard2").unwrap();
        let dropped = ch.truncate_output(mark);
        assert_eq!(dropped.len(), 2);
        assert_eq!(ch.output_text(), "keep");
    }

    #[test]
    fn write_offset_advances() {
        let mut ch = Channel::new(ChannelKind::File);
        ch.write_str("abc").unwrap();
        ch.write_str("de").unwrap();
        assert_eq!(ch.write_offset, 5);
    }
}
