//! v1 channel API: deprecated aliases over [`Gate`](crate::gate::Gate).
//!
//! Earlier revisions exposed I/O boundaries as `Channel` and their kinds as
//! `ChannelKind`. Both survive as thin aliases so v1 code keeps compiling;
//! new code should build gates with
//! [`GateBuilder`](crate::gate::GateBuilder) or resolve them from the
//! [`Runtime`](crate::runtime::Runtime)'s registry.

/// v1 name for [`GateKind`](crate::gate::GateKind).
#[deprecated(since = "0.2.0", note = "use `GateKind`")]
pub type ChannelKind = crate::gate::GateKind;

/// v1 name for [`Gate`](crate::gate::Gate).
#[deprecated(
    since = "0.2.0",
    note = "use `Gate` (built via `GateBuilder` or opened \
    from the `Runtime` registry)"
)]
pub type Channel = crate::gate::Gate;

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    //! The seed channel tests, running against the shims to prove the
    //! delegation is faithful.

    use super::*;
    use crate::policies::PasswordPolicy;
    use crate::policy::PolicyRef;
    use crate::taint::TaintedString;
    use std::sync::Arc;

    fn pw(email: &str) -> PolicyRef {
        Arc::new(PasswordPolicy::new(email))
    }

    #[test]
    fn kind_type_names() {
        assert_eq!(ChannelKind::Http.type_name(), "http");
        assert_eq!(ChannelKind::Email.type_name(), "email");
        assert_eq!(ChannelKind::Custom("enc").type_name(), "enc");
        assert_eq!(ChannelKind::CodeImport.to_string(), "code");
    }

    #[test]
    fn plain_data_passes_default_filter() {
        let mut ch = Channel::new(ChannelKind::Http);
        ch.write_str("hello").unwrap();
        assert_eq!(ch.output_text(), "hello");
    }

    #[test]
    fn password_blocked_on_http_allowed_on_own_email() {
        let mut http = Channel::new(ChannelKind::Http);
        let mut secret = TaintedString::from("s3cret");
        secret.add_policy(pw("u@foo.com"));
        let err = http.write(secret.clone()).unwrap_err();
        assert!(err.is_violation());
        assert_eq!(http.output_text(), "", "nothing visible after violation");

        let mut mail = Channel::new(ChannelKind::Email);
        mail.context_mut().set_str("email", "u@foo.com");
        mail.write(secret).unwrap();
        assert_eq!(mail.output_text(), "s3cret");
    }

    #[test]
    fn context_annotation_reaches_policy() {
        let mut mail = Channel::new(ChannelKind::Email);
        mail.context_mut().set_str("email", "other@foo.com");
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@foo.com"));
        assert!(mail.write(secret).is_err(), "wrong recipient must fail");
    }

    #[test]
    fn unguarded_channel_leaks() {
        let mut ch = Channel::unguarded(ChannelKind::Http);
        let mut secret = TaintedString::from("pw");
        secret.add_policy(pw("u@foo.com"));
        ch.write(secret).unwrap();
        assert_eq!(ch.output_text(), "pw", "no filters, no protection");
    }

    #[test]
    fn read_pulls_through_filters() {
        let mut ch = Channel::new(ChannelKind::Socket);
        assert!(ch.read().unwrap().is_none());
        ch.feed(TaintedString::from("in"));
        let got = ch.read().unwrap().unwrap();
        assert_eq!(got.as_str(), "in");
        assert!(ch.read().unwrap().is_none());
    }

    #[test]
    fn truncate_output_supports_buffering() {
        let mut ch = Channel::new(ChannelKind::Http);
        ch.write_str("keep").unwrap();
        let mark = ch.output_mark();
        ch.write_str("discard1").unwrap();
        ch.write_str("discard2").unwrap();
        let dropped = ch.truncate_output(mark);
        assert_eq!(dropped.len(), 2);
        assert_eq!(ch.output_text(), "keep");
    }

    #[test]
    fn write_offset_advances() {
        let mut ch = Channel::new(ChannelKind::File);
        ch.write_str("abc").unwrap();
        ch.write_str("de").unwrap();
        assert_eq!(ch.write_offset(), 5);
    }
}
