//! Filter objects: the boundary-interposition mechanism (§3.2).
//!
//! A filter object interposes on a [`Gate`](crate::gate::Gate). When data
//! crosses the boundary, the gate invokes `filter_read` / `filter_write`
//! (Table 3), which may check or alter the in-transit data.
//! [`DefaultFilter`] reproduces the paper's Figure 3: it calls
//! `export_check` on every policy of the in-transit data and always lets
//! policy-free data through.

use std::borrow::Cow;

use crate::context::Context;
use crate::error::{FlowError, Result};
use crate::taint::TaintedString;

/// The boundary-interposition interface (Table 3's `filter::*` rows).
///
/// Both hooks receive the data by value and return (possibly altered) data;
/// returning an error aborts the flow. `offset` is the running byte offset
/// on the gate, mirroring the paper's `filter_read(data, offset)`
/// signature.
pub trait Filter: Send + Sync {
    /// Invoked when data comes *in* through a data flow boundary; may assign
    /// initial policies (e.g. deserialize persistent policies) or reject.
    fn filter_read(
        &self,
        data: TaintedString,
        _offset: u64,
        _context: &Context,
    ) -> Result<TaintedString> {
        Ok(data)
    }

    /// Invoked when data is *exported* through a data flow boundary;
    /// typically invokes assertion checks.
    fn filter_write(
        &self,
        data: TaintedString,
        _offset: u64,
        _context: &Context,
    ) -> Result<TaintedString> {
        Ok(data)
    }

    /// Copy-on-write variant of [`filter_write`](Filter::filter_write):
    /// the [`Gate`](crate::gate::Gate) outbound path hands each filter a
    /// [`Cow`], so a filter that only *checks* (the overwhelmingly common
    /// case — the default filter, guard filters, persistent-filter mounts)
    /// can forward borrowed data untouched and the whole chain completes
    /// without cloning the in-transit `TaintedString`.
    ///
    /// The provided implementation routes through `filter_write`, cloning a
    /// borrowed value first — always correct. Filters that pass data
    /// through unmodified should override this to return `Ok(data)` after
    /// their checks.
    fn filter_write_cow<'a>(
        &self,
        data: Cow<'a, TaintedString>,
        offset: u64,
        context: &Context,
    ) -> Result<Cow<'a, TaintedString>> {
        self.filter_write(data.into_owned(), offset, context)
            .map(Cow::Owned)
    }
}

/// The default filter attached to every guarded gate (Figure 3).
///
/// On write it invokes `export_check(context)` on each distinct policy
/// present anywhere in the data; data without policies always passes. Note
/// the asymmetry the paper points out in §5.2: the default filter *permits*
/// data that has no policy — assertions that require a policy's presence
/// (like `CodeApproval`) need a programmer-specified filter.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultFilter;

impl DefaultFilter {
    /// Figure 3: `export_check` on every distinct policy of the data.
    /// Collecting the distinct policies is label arithmetic (memoized span
    /// unions); only the final resolution touches policy objects.
    fn check(data: &TaintedString, context: &Context) -> Result<()> {
        let label = data.label();
        if label.is_empty() {
            return Ok(());
        }
        for policy in label.policies().iter() {
            policy
                .export_check(context)
                .map_err(|v| FlowError::Denied(v.on_channel(context.kind().clone())))?;
        }
        Ok(())
    }
}

impl Filter for DefaultFilter {
    fn filter_write(
        &self,
        data: TaintedString,
        _offset: u64,
        context: &Context,
    ) -> Result<TaintedString> {
        Self::check(&data, context)?;
        Ok(data)
    }

    // Pure check: the data is forwarded exactly as it arrived, so a
    // borrowed value stays borrowed across the whole chain.
    fn filter_write_cow<'a>(
        &self,
        data: Cow<'a, TaintedString>,
        _offset: u64,
        context: &Context,
    ) -> Result<Cow<'a, TaintedString>> {
        Self::check(&data, context)?;
        Ok(data)
    }
}

/// A filter built from closures, for one-off application-specific boundaries.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
///
/// // Reject any CR-LF-CR-LF in transit (HTTP response splitting, §3.2).
/// let mut gate = Gate::builder(GateKind::Http)
///     .filter(FnFilter::on_write(|data, _, _| {
///         if data.contains("\r\n\r\n") {
///             Err(FlowError::rejected("response splitting"))
///         } else {
///             Ok(data)
///         }
///     }))
///     .build();
/// assert!(gate.write_str("a\r\n\r\nb").is_err());
/// ```
pub struct FnFilter {
    read: Option<FilterFn>,
    write: Option<FilterFn>,
}

type FilterFn = Box<dyn Fn(TaintedString, u64, &Context) -> Result<TaintedString> + Send + Sync>;

impl FnFilter {
    /// A filter that only hooks writes.
    pub fn on_write<F>(f: F) -> Self
    where
        F: Fn(TaintedString, u64, &Context) -> Result<TaintedString> + Send + Sync + 'static,
    {
        FnFilter {
            read: None,
            write: Some(Box::new(f)),
        }
    }

    /// A filter that only hooks reads.
    pub fn on_read<F>(f: F) -> Self
    where
        F: Fn(TaintedString, u64, &Context) -> Result<TaintedString> + Send + Sync + 'static,
    {
        FnFilter {
            read: Some(Box::new(f)),
            write: None,
        }
    }
}

impl Filter for FnFilter {
    fn filter_read(
        &self,
        data: TaintedString,
        offset: u64,
        context: &Context,
    ) -> Result<TaintedString> {
        match &self.read {
            Some(f) => f(data, offset, context),
            None => Ok(data),
        }
    }

    fn filter_write(
        &self,
        data: TaintedString,
        offset: u64,
        context: &Context,
    ) -> Result<TaintedString> {
        match &self.write {
            Some(f) => f(data, offset, context),
            None => Ok(data),
        }
    }

    fn filter_write_cow<'a>(
        &self,
        data: Cow<'a, TaintedString>,
        offset: u64,
        context: &Context,
    ) -> Result<Cow<'a, TaintedString>> {
        match &self.write {
            // A closure may alter the data, so it needs ownership.
            Some(f) => f(data.into_owned(), offset, context).map(Cow::Owned),
            None => Ok(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::policies::{PasswordPolicy, UntrustedData};
    use crate::policy::PolicyRef;
    use std::sync::Arc;

    #[test]
    fn default_filter_checks_every_policy() {
        let ctx = Context::new(GateKind::Http);
        let mut data = TaintedString::from("pw");
        data.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        let err = DefaultFilter.filter_write(data, 0, &ctx).unwrap_err();
        assert!(err.is_violation());
        let v = err.as_violation().unwrap();
        assert_eq!(v.channel, Some(GateKind::Http));
    }

    #[test]
    fn default_filter_passes_policy_free_data() {
        let ctx = Context::new(GateKind::Http);
        let out = DefaultFilter
            .filter_write(TaintedString::from("ok"), 0, &ctx)
            .unwrap();
        assert_eq!(out.as_str(), "ok");
    }

    #[test]
    fn default_filter_passes_marker_policies() {
        // UntrustedData's export_check allows; only special filters act on it.
        let ctx = Context::new(GateKind::Http);
        let mut data = TaintedString::from("x");
        data.add_policy(Arc::new(UntrustedData::new()));
        assert!(DefaultFilter.filter_write(data, 0, &ctx).is_ok());
    }

    #[test]
    fn fn_filter_can_alter_data() {
        let f = FnFilter::on_write(|data, _, _| Ok(data.replace_str("\r\n\r\n", "")));
        let ctx = Context::new(GateKind::Http);
        let out = f
            .filter_write(TaintedString::from("a\r\n\r\nb"), 0, &ctx)
            .unwrap();
        assert_eq!(out.as_str(), "ab");
    }

    #[test]
    fn fn_filter_read_hook() {
        let f = FnFilter::on_read(|mut data, _, _| {
            data.add_policy(Arc::new(UntrustedData::new()) as PolicyRef);
            Ok(data)
        });
        let ctx = Context::new(GateKind::Socket);
        let out = f.filter_read(TaintedString::from("in"), 0, &ctx).unwrap();
        assert!(out.has_policy::<UntrustedData>());
        // Write hook not installed: passthrough.
        let w = f.filter_write(TaintedString::from("w"), 0, &ctx).unwrap();
        assert!(w.is_untainted());
    }

    #[test]
    fn gate_call_strips_policy_like_encryption() {
        // An encryption function is a natural boundary: strip passwords.
        let gate = crate::gate::Gate::internal("encrypt").strip::<PasswordPolicy>();
        let mut secret = TaintedString::from("pw");
        secret.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        let out = gate
            .call(vec![secret], |args| {
                // "Encrypt" = reverse.
                let s: String = args[0].as_str().chars().rev().collect();
                Ok(TaintedString::from(s))
            })
            .unwrap();
        assert_eq!(out.as_str(), "wp");
        assert!(!out.has_policy::<PasswordPolicy>());
    }
}
