//! SQL engine error types.

use std::fmt;

use resin_core::FlowError;

/// Errors produced by the SQL engine and the RESIN query filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error in the query text.
    Lex { pos: usize, message: String },
    /// Syntax error.
    Parse { pos: usize, message: String },
    /// Schema error (unknown table/column, duplicate, arity mismatch...).
    Schema(String),
    /// Type error during evaluation.
    Type(String),
    /// A policy (injection guard, merge, serialization) rejected the query.
    Policy(FlowError),
    /// The durable store failed (I/O error, corrupt snapshot, unsupported
    /// format version).
    Storage(String),
}

impl SqlError {
    /// Shorthand for a schema error.
    pub fn schema(msg: impl Into<String>) -> Self {
        SqlError::Schema(msg.into())
    }

    /// True if the error is a data flow assertion failure.
    pub fn is_violation(&self) -> bool {
        matches!(self, SqlError::Policy(e) if e.is_violation())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            SqlError::Schema(m) => write!(f, "schema error: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Policy(e) => write!(f, "{e}"),
            SqlError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<FlowError> for SqlError {
    fn from(e: FlowError) -> Self {
        SqlError::Policy(e)
    }
}

impl From<resin_core::SerializeError> for SqlError {
    fn from(e: resin_core::SerializeError) -> Self {
        SqlError::Policy(FlowError::Serialize(e))
    }
}

impl From<resin_core::PolicyViolation> for SqlError {
    fn from(v: resin_core::PolicyViolation) -> Self {
        SqlError::Policy(FlowError::Denied(v))
    }
}

/// Result alias for SQL operations.
pub type Result<T, E = SqlError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::PolicyViolation;

    #[test]
    fn display_and_violation() {
        let e = SqlError::Lex {
            pos: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(!e.is_violation());
        let v: SqlError = PolicyViolation::new("SqlGuard", "injected").into();
        assert!(v.is_violation());
    }
}
