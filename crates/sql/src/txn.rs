//! Transactions with commit-time integrity assertions (§8, future work).
//!
//! The paper's planned approach to data *integrity* invariants: "using
//! transactions to buffer database or file system changes, and checking a
//! programmer-specified assertion before committing them." A
//! [`Transaction`] buffers changes, applies queries, and runs the
//! programmer's integrity checks at commit; if any check fails, every
//! buffered change is rolled back.
//!
//! Snapshots are **lazy and per table**: a table is copied only when the
//! transaction first writes it. An earlier revision cloned the whole
//! database at `begin`, which made opening a transaction O(total rows) —
//! ruinous once one hot table sits next to large cold ones. The write
//! target of each statement is read off the *prepared* statement — the
//! parse produced after any guard rewriting (`prepare_query`), i.e.
//! exactly what executes — so every executed write is covered and no
//! statement is parsed twice.

use std::collections::BTreeMap;

use resin_core::{PolicyViolation, TaintedString};

use crate::ast::Statement;
use crate::engine::Table;
use crate::error::{Result, SqlError};
use crate::rewrite::{prepare_query, ResinDb, TaintedResult};

/// A programmer-specified integrity assertion, checked at commit time
/// against the post-transaction database state.
///
/// Checks must be read-only: a write performed inside a check bypasses the
/// transaction's snapshot tracking and is not rolled back.
pub type IntegrityCheck<'c> = Box<dyn Fn(&mut ResinDb) -> Result<(), PolicyViolation> + 'c>;

/// The table a prepared statement writes (`None` for reads). Total over
/// [`Statement`], so every statement that can execute has its write
/// coverage known before it runs.
pub(crate) fn statement_write_target(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::Select(_) => None,
        Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
        Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::CreateIndex { table, .. }
        | Statement::DropIndex { table, .. } => Some(table),
    }
}

/// The lazy per-table snapshot set shared by [`Transaction`] and
/// [`crate::shard::SharedTransaction`]: first write records a copy,
/// rollback drains the copies back through a storage-specific restore.
#[derive(Default)]
pub(crate) struct TxnSnapshots {
    /// name → state at first touch (`None` = did not exist, so rollback
    /// removes it).
    map: BTreeMap<String, Option<Table>>,
}

impl TxnSnapshots {
    /// Records `name` on first touch, fetching its current state lazily.
    pub(crate) fn record_with(&mut self, name: &str, fetch: impl FnOnce() -> Option<Table>) {
        if !self.map.contains_key(name) {
            self.map.insert(name.to_string(), fetch());
        }
    }

    /// Snapshotted table names, sorted.
    pub(crate) fn names(&self) -> Vec<&str> {
        self.map.keys().map(|s| s.as_str()).collect()
    }

    /// Takes the snapshots for restoring (leaves the set empty).
    pub(crate) fn drain(&mut self) -> BTreeMap<String, Option<Table>> {
        std::mem::take(&mut self.map)
    }
}

/// An open transaction on a [`ResinDb`].
///
/// Dropping an uncommitted transaction rolls it back.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use resin_sql::{ResinDb, Transaction};
///
/// let mut db = ResinDb::new();
/// db.query_str("CREATE TABLE grades (student TEXT, score INTEGER)").unwrap();
/// db.query_str("INSERT INTO grades VALUES ('ada', 91)").unwrap();
///
/// // Invariant: no score may exceed 100.
/// let mut txn = Transaction::begin(&mut db);
/// txn.add_check(Box::new(|db| {
///     let r = db.query_str("SELECT COUNT(*) FROM grades WHERE score > 100")
///         .map_err(|e| PolicyViolation::new("GradeInvariant", e.to_string()))?;
///     match r.rows[0][0].as_int().map(|v| *v.value()) {
///         Some(0) => Ok(()),
///         _ => Err(PolicyViolation::new("GradeInvariant", "score above 100")),
///     }
/// }));
/// txn.query_str("UPDATE grades SET score = 250 WHERE student = 'ada'").unwrap();
/// assert!(txn.commit().is_err());                  // invariant fails...
/// let r = db.query_str("SELECT score FROM grades").unwrap();
/// assert_eq!(r.rows[0][0].as_int().unwrap().value(), &91); // ...rolled back
/// ```
pub struct Transaction<'a, 'c> {
    db: &'a mut ResinDb,
    snapshots: TxnSnapshots,
    checks: Vec<IntegrityCheck<'c>>,
    wal: Vec<TaintedString>,
    finished: bool,
    /// Keeps labels interned during the transaction safe from a
    /// concurrent label-table sweep.
    _epoch_pin: resin_core::EpochPin<'static>,
}

impl<'a, 'c> Transaction<'a, 'c> {
    /// Opens a transaction. No data is copied here — tables are
    /// snapshotted lazily, on their first write.
    pub fn begin(db: &'a mut ResinDb) -> Self {
        Transaction {
            db,
            snapshots: TxnSnapshots::default(),
            checks: Vec::new(),
            wal: Vec::new(),
            finished: false,
            _epoch_pin: resin_core::LabelTable::global().pin(),
        }
    }

    /// Registers an integrity assertion to run at commit.
    pub fn add_check(&mut self, check: IntegrityCheck<'c>) {
        self.checks.push(check);
    }

    /// Table names snapshotted so far (sorted). Untouched tables never
    /// appear here — that is the copy-on-write guarantee.
    pub fn snapshotted_tables(&self) -> Vec<&str> {
        self.snapshots.names()
    }

    /// Executes a query inside the transaction (all RESIN rewriting and
    /// guards apply as usual).
    pub fn query(&mut self, sql: &TaintedString) -> Result<TaintedResult> {
        let (sql, stmt) = prepare_query(sql, self.db.guard_mode())?;
        let is_write = statement_write_target(&stmt).is_some();
        if let Some(name) = statement_write_target(&stmt) {
            let name = name.to_string();
            let db = &*self.db;
            self.snapshots
                .record_with(&name, || db.raw().table(&name).cloned());
        }
        let res = self.db.run_prepared(&sql, stmt)?;
        if is_write && self.db.is_durable() {
            // Buffered until commit: a rolled-back transaction must not
            // replay after a restart.
            self.wal.push(sql.into_owned());
        }
        Ok(res)
    }

    /// Executes an untainted query inside the transaction.
    pub fn query_str(&mut self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    fn restore(&mut self) {
        for (name, snap) in self.snapshots.drain() {
            self.db.restore_table(&name, snap);
        }
    }

    /// Runs the integrity checks; keeps the changes if all pass, restores
    /// the touched tables otherwise.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let checks = std::mem::take(&mut self.checks);
        for check in &checks {
            if let Err(v) = check(self.db) {
                self.restore();
                return Err(SqlError::Policy(resin_core::FlowError::Denied(v)));
            }
        }
        let wal = std::mem::take(&mut self.wal);
        if let Err(e) = self.db.wal_log_batch(&wal) {
            // The commit could not be made durable: roll the live tables
            // back too, so the observed state matches what a restart
            // would recover.
            self.restore();
            return Err(e);
        }
        self.db.mark_tables_dirty(self.snapshots.names());
        Ok(())
    }

    /// Discards all changes made inside the transaction.
    pub fn rollback(mut self) {
        self.finished = true;
        self.restore();
    }
}

impl Drop for Transaction<'_, '_> {
    fn drop(&mut self) {
        if !self.finished {
            self.restore();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::UntrustedData;
    use std::sync::Arc;

    fn grades_db() -> ResinDb {
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE grades (student TEXT, score INTEGER)")
            .unwrap();
        db.query_str("INSERT INTO grades VALUES ('ada', 91), ('bob', 72)")
            .unwrap();
        db
    }

    fn max_100_check<'c>() -> IntegrityCheck<'c> {
        Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM grades WHERE score > 100")
                .map_err(|e| PolicyViolation::new("GradeInvariant", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) == Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("GradeInvariant", "score above 100"))
            }
        })
    }

    #[test]
    fn commit_keeps_valid_changes() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.query_str("UPDATE grades SET score = 95 WHERE student = 'bob'")
            .unwrap();
        txn.commit().unwrap();
        let r = db
            .query_str("SELECT score FROM grades WHERE student = 'bob'")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &95);
    }

    #[test]
    fn failed_check_rolls_back_everything() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.query_str("UPDATE grades SET score = 95 WHERE student = 'bob'")
            .unwrap();
        txn.query_str("UPDATE grades SET score = 250 WHERE student = 'ada'")
            .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(err.is_violation());
        // *Both* updates rolled back, not just the offending one.
        let r = db
            .query_str("SELECT score FROM grades ORDER BY student")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &91);
        assert_eq!(r.rows[1][0].as_int().unwrap().value(), &72);
    }

    #[test]
    fn explicit_rollback() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.query_str("DELETE FROM grades").unwrap();
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = grades_db();
        {
            let mut txn = Transaction::begin(&mut db);
            txn.query_str("DELETE FROM grades").unwrap();
            // Dropped here.
        }
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn policies_tracked_inside_transactions() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        let mut q = TaintedString::from("INSERT INTO grades VALUES ('");
        q.push_tainted(&TaintedString::with_policy(
            "eve",
            Arc::new(UntrustedData::new()),
        ));
        q.push_str("', 50)");
        txn.query(&q).unwrap();
        txn.commit().unwrap();
        let r = db
            .query_str("SELECT student FROM grades WHERE score = 50")
            .unwrap();
        let cell = r.cell(0, "student").unwrap().as_text().unwrap();
        assert!(cell.has_policy::<UntrustedData>());
    }

    #[test]
    fn multiple_checks_all_run() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.add_check(Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM grades")
                .map_err(|e| PolicyViolation::new("NonEmpty", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) > Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("NonEmpty", "grades table emptied"))
            }
        }));
        txn.query_str("DELETE FROM grades").unwrap();
        assert!(txn.commit().is_err(), "second check fires");
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn untouched_tables_are_never_snapshotted() {
        // The copy-on-write guarantee: begin is free, and a write to one
        // table does not clone its neighbours.
        let mut db = grades_db();
        db.query_str("CREATE TABLE audit (entry TEXT)").unwrap();
        let mut txn = Transaction::begin(&mut db);
        assert!(txn.snapshotted_tables().is_empty(), "begin copies nothing");
        txn.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert!(
            txn.snapshotted_tables().is_empty(),
            "reads never snapshot either"
        );
        txn.query_str("UPDATE grades SET score = 1 WHERE student = 'ada'")
            .unwrap();
        assert_eq!(
            txn.snapshotted_tables(),
            vec!["grades"],
            "only the written table is copied"
        );
        txn.rollback();
        let r = db
            .query_str("SELECT score FROM grades ORDER BY student")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &91);
    }

    #[test]
    fn create_inside_txn_rolls_back_to_absent() {
        let mut db = grades_db();
        {
            let mut txn = Transaction::begin(&mut db);
            txn.query_str("CREATE TABLE scratch (x INTEGER)").unwrap();
            txn.query_str("INSERT INTO scratch VALUES (1)").unwrap();
        }
        assert!(db.raw().table("scratch").is_none(), "create rolled back");
    }

    #[test]
    fn guard_rewritten_query_snapshots_its_own_table_only() {
        // A statement whose *raw* text does not parse strictly (untrusted
        // quote mid-literal) but that the AutoSanitize guard rewrites into
        // valid SQL: the write set must come from the post-guard parse, so
        // only the written table is snapshotted — never everything.
        let mut db = grades_db();
        db.set_guard(crate::GuardMode::AutoSanitize);
        db.query_str("CREATE TABLE audit (entry TEXT)").unwrap();
        let mut txn = Transaction::begin(&mut db);
        let mut q = TaintedString::from("INSERT INTO grades VALUES ('");
        q.push_tainted(&TaintedString::with_policy(
            "o'hara",
            Arc::new(UntrustedData::new()),
        ));
        q.push_str("', 50)");
        txn.query(&q).unwrap();
        assert_eq!(
            txn.snapshotted_tables(),
            vec!["grades"],
            "post-guard write set, not a whole-db fallback"
        );
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn unparseable_statement_errors_without_executing() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        assert!(txn.query_str("not sql at all").is_err());
        assert!(
            txn.snapshotted_tables().is_empty(),
            "nothing executed, nothing snapshotted"
        );
    }

    #[test]
    fn write_target_extraction() {
        let t = |sql: &str| {
            let stmt = crate::parser::parse_str(sql).unwrap();
            statement_write_target(&stmt).map(str::to_string)
        };
        assert_eq!(t("SELECT * FROM a"), None);
        assert_eq!(t("INSERT INTO a VALUES (1)"), Some("a".to_string()));
        assert_eq!(t("UPDATE b SET x = 1"), Some("b".to_string()));
        assert_eq!(t("DELETE FROM c"), Some("c".to_string()));
        assert_eq!(t("DROP TABLE d"), Some("d".to_string()));
        assert_eq!(
            t("CREATE INDEX i ON e (x)"),
            Some("e".to_string()),
            "index DDL mutates its table (snapshot + WAL coverage)"
        );
        assert_eq!(t("DROP INDEX i ON f"), Some("f".to_string()));
    }
}
