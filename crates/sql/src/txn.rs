//! Transactions with commit-time integrity assertions (§8, future work).
//!
//! The paper's planned approach to data *integrity* invariants: "using
//! transactions to buffer database or file system changes, and checking a
//! programmer-specified assertion before committing them." A
//! [`Transaction`] snapshots the database, applies queries, and runs the
//! programmer's integrity checks at commit; if any check fails, every
//! buffered change is rolled back.

use resin_core::{PolicyViolation, TaintedString};

use crate::engine::Database;
use crate::error::{Result, SqlError};
use crate::rewrite::{ResinDb, TaintedResult};

/// A programmer-specified integrity assertion, checked at commit time
/// against the post-transaction database state.
pub type IntegrityCheck<'c> = Box<dyn Fn(&mut ResinDb) -> Result<(), PolicyViolation> + 'c>;

/// An open transaction on a [`ResinDb`].
///
/// Dropping an uncommitted transaction rolls it back.
///
/// # Examples
///
/// ```
/// use resin_core::prelude::*;
/// use resin_sql::{ResinDb, Transaction};
///
/// let mut db = ResinDb::new();
/// db.query_str("CREATE TABLE grades (student TEXT, score INTEGER)").unwrap();
/// db.query_str("INSERT INTO grades VALUES ('ada', 91)").unwrap();
///
/// // Invariant: no score may exceed 100.
/// let mut txn = Transaction::begin(&mut db);
/// txn.add_check(Box::new(|db| {
///     let r = db.query_str("SELECT COUNT(*) FROM grades WHERE score > 100")
///         .map_err(|e| PolicyViolation::new("GradeInvariant", e.to_string()))?;
///     match r.rows[0][0].as_int().map(|v| *v.value()) {
///         Some(0) => Ok(()),
///         _ => Err(PolicyViolation::new("GradeInvariant", "score above 100")),
///     }
/// }));
/// txn.query_str("UPDATE grades SET score = 250 WHERE student = 'ada'").unwrap();
/// assert!(txn.commit().is_err());                  // invariant fails...
/// let r = db.query_str("SELECT score FROM grades").unwrap();
/// assert_eq!(r.rows[0][0].as_int().unwrap().value(), &91); // ...rolled back
/// ```
pub struct Transaction<'a, 'c> {
    db: &'a mut ResinDb,
    snapshot: Database,
    checks: Vec<IntegrityCheck<'c>>,
    finished: bool,
}

impl<'a, 'c> Transaction<'a, 'c> {
    /// Opens a transaction, snapshotting the current state.
    pub fn begin(db: &'a mut ResinDb) -> Self {
        let snapshot = db.raw().clone();
        Transaction {
            db,
            snapshot,
            checks: Vec::new(),
            finished: false,
        }
    }

    /// Registers an integrity assertion to run at commit.
    pub fn add_check(&mut self, check: IntegrityCheck<'c>) {
        self.checks.push(check);
    }

    /// Executes a query inside the transaction (all RESIN rewriting and
    /// guards apply as usual).
    pub fn query(&mut self, sql: &TaintedString) -> Result<TaintedResult> {
        self.db.query(sql)
    }

    /// Executes an untainted query inside the transaction.
    pub fn query_str(&mut self, sql: &str) -> Result<TaintedResult> {
        self.db.query_str(sql)
    }

    /// Runs the integrity checks; keeps the changes if all pass, restores
    /// the snapshot otherwise.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let checks = std::mem::take(&mut self.checks);
        for check in &checks {
            if let Err(v) = check(self.db) {
                self.db.restore(std::mem::take(&mut self.snapshot));
                return Err(SqlError::Policy(resin_core::FlowError::Denied(v)));
            }
        }
        Ok(())
    }

    /// Discards all changes made inside the transaction.
    pub fn rollback(mut self) {
        self.finished = true;
        self.db.restore(std::mem::take(&mut self.snapshot));
    }
}

impl Drop for Transaction<'_, '_> {
    fn drop(&mut self) {
        if !self.finished {
            self.db.restore(std::mem::take(&mut self.snapshot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::UntrustedData;
    use std::sync::Arc;

    fn grades_db() -> ResinDb {
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE grades (student TEXT, score INTEGER)")
            .unwrap();
        db.query_str("INSERT INTO grades VALUES ('ada', 91), ('bob', 72)")
            .unwrap();
        db
    }

    fn max_100_check<'c>() -> IntegrityCheck<'c> {
        Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM grades WHERE score > 100")
                .map_err(|e| PolicyViolation::new("GradeInvariant", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) == Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("GradeInvariant", "score above 100"))
            }
        })
    }

    #[test]
    fn commit_keeps_valid_changes() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.query_str("UPDATE grades SET score = 95 WHERE student = 'bob'")
            .unwrap();
        txn.commit().unwrap();
        let r = db
            .query_str("SELECT score FROM grades WHERE student = 'bob'")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &95);
    }

    #[test]
    fn failed_check_rolls_back_everything() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.query_str("UPDATE grades SET score = 95 WHERE student = 'bob'")
            .unwrap();
        txn.query_str("UPDATE grades SET score = 250 WHERE student = 'ada'")
            .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(err.is_violation());
        // *Both* updates rolled back, not just the offending one.
        let r = db
            .query_str("SELECT score FROM grades ORDER BY student")
            .unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &91);
        assert_eq!(r.rows[1][0].as_int().unwrap().value(), &72);
    }

    #[test]
    fn explicit_rollback() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.query_str("DELETE FROM grades").unwrap();
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = grades_db();
        {
            let mut txn = Transaction::begin(&mut db);
            txn.query_str("DELETE FROM grades").unwrap();
            // Dropped here.
        }
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }

    #[test]
    fn policies_tracked_inside_transactions() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        let mut q = TaintedString::from("INSERT INTO grades VALUES ('");
        q.push_tainted(&TaintedString::with_policy(
            "eve",
            Arc::new(UntrustedData::new()),
        ));
        q.push_str("', 50)");
        txn.query(&q).unwrap();
        txn.commit().unwrap();
        let r = db
            .query_str("SELECT student FROM grades WHERE score = 50")
            .unwrap();
        let cell = r.cell(0, "student").unwrap().as_text().unwrap();
        assert!(cell.has_policy::<UntrustedData>());
    }

    #[test]
    fn multiple_checks_all_run() {
        let mut db = grades_db();
        let mut txn = Transaction::begin(&mut db);
        txn.add_check(max_100_check());
        txn.add_check(Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM grades")
                .map_err(|e| PolicyViolation::new("NonEmpty", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) > Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("NonEmpty", "grades table emptied"))
            }
        }));
        txn.query_str("DELETE FROM grades").unwrap();
        assert!(txn.commit().is_err(), "second check fires");
        let r = db.query_str("SELECT COUNT(*) FROM grades").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
    }
}
