//! SQL tokens and the lexer.
//!
//! Tokens record their byte range in the source query so the RESIN SQL
//! filter can check the *taint of the query's structure* (the
//! SQL-injection assertion, §5.3) and extract per-literal policies for the
//! policy-column rewrite (§3.4.1).
//!
//! The lexer has two modes:
//!
//! * **strict** — standard SQL lexing; `''` escapes a quote in a literal.
//! * **tolerant** — the §5.3 "variation on the second strategy": a quote
//!   character that carries `UntrustedData` does *not* terminate a string
//!   literal; contiguous untrusted bytes stay inside one token, so
//!   untrusted data cannot affect the command structure of the query.

use std::ops::Range;

use resin_core::{TaintedStrBuilder, TaintedString, UntrustedData};

use crate::error::{Result, SqlError};

/// The kind and payload of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A reserved keyword, uppercased.
    Kw(String),
    /// An identifier (table/column name), case preserved.
    Ident(String),
    /// An integer literal (text preserved for span math).
    Num(i64),
    /// A string literal; payload is the *decoded* content.
    Str(String),
    /// Single-character punctuation: `( ) , ; * .`
    Punct(char),
    /// An operator: `= != <> < > <= >= + -`
    Op(&'static str),
    /// A `?` bind-parameter placeholder; payload is its 0-based ordinal in
    /// text order. A placeholder is query *structure* (its value arrives
    /// out-of-band at execution time), so a tainted `?` smuggled in
    /// through data trips the structure-taint guard like any keyword.
    Param(usize),
}

/// A token plus its byte range in the query text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token value.
    pub tok: Tok,
    /// Byte range in the source query covering the whole token (for string
    /// literals this includes the quotes).
    pub span: Range<usize>,
}

impl Token {
    /// True for tokens that are query *structure* (keywords, identifiers,
    /// operators, punctuation) as opposed to data (literals).
    pub fn is_structure(&self) -> bool {
        !matches!(self.tok, Tok::Num(_) | Tok::Str(_))
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO", "VALUES", "CREATE", "TABLE",
    "UPDATE", "SET", "DELETE", "DROP", "ORDER", "BY", "LIMIT", "ASC", "DESC", "LIKE", "NULL", "IS",
    "INTEGER", "TEXT", "IF", "EXISTS", "COUNT", "IN", "PRIMARY", "KEY", "INDEX", "ON", "USING",
    "HASH", "BTREE",
];

/// Lexes a plain query in strict mode.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    lex_inner(src, None)
}

/// Lexes a tainted query.
///
/// With `tolerant` set, quote characters carrying `UntrustedData` are
/// treated as literal content rather than delimiters.
pub fn lex_tainted(query: &TaintedString, tolerant: bool) -> Result<Vec<Token>> {
    if tolerant {
        lex_inner(query.as_str(), Some(query))
    } else {
        lex_inner(query.as_str(), None)
    }
}

fn lex_inner(src: &str, taint: Option<&TaintedString>) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    // Resolve the untrusted ranges once (tolerant mode only) instead of a
    // label-table hit per quote position.
    let untrusted: Vec<std::ops::Range<usize>> = taint
        .map(|q| q.ranges_with::<UntrustedData>())
        .unwrap_or_default();
    let is_untrusted_at = |pos: usize| untrusted.iter().any(|r| r.contains(&pos));
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut next_param = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' | ')' | ',' | ';' | '*' | '.' => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    span: i..i + 1,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    tok: Tok::Op("="),
                    span: i..i + 1,
                });
                i += 1;
            }
            '?' => {
                out.push(Token {
                    tok: Tok::Param(next_param),
                    span: i..i + 1,
                });
                next_param += 1;
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Op("+"),
                    span: i..i + 1,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Op("!="),
                        span: i..i + 2,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        pos: i,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => {
                let (tok, n) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Op("<="), 2),
                    Some(b'>') => (Tok::Op("!="), 2),
                    _ => (Tok::Op("<"), 1),
                };
                out.push(Token {
                    tok,
                    span: i..i + n,
                });
                i += n;
            }
            '>' => {
                let (tok, n) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Op(">="), 2),
                    _ => (Tok::Op(">"), 1),
                };
                out.push(Token {
                    tok,
                    span: i..i + n,
                });
                i += n;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut content = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            });
                        }
                        Some(b'\'') => {
                            // Tolerant mode: an *untrusted* quote is data.
                            if is_untrusted_at(i) {
                                content.push('\'');
                                i += 1;
                                continue;
                            }
                            // Escaped quote `''`.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                content.push('\'');
                                i += 2;
                                continue;
                            }
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            content.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(content),
                    span: start..i,
                });
            }
            '-' => {
                // Negative number literal or minus operator.
                if bytes
                    .get(i + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false)
                {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: i64 = src[start..i].parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: "integer out of range".into(),
                    })?;
                    out.push(Token {
                        tok: Tok::Num(n),
                        span: start..i,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Op("-"),
                        span: i..i + 1,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|_| SqlError::Lex {
                    pos: start,
                    message: "integer out of range".into(),
                })?;
                out.push(Token {
                    tok: Tok::Num(n),
                    span: start..i,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                let tok = if KEYWORDS.contains(&upper.as_str()) {
                    Tok::Kw(upper)
                } else {
                    Tok::Ident(word.to_string())
                };
                out.push(Token {
                    tok,
                    span: start..i,
                });
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(out)
}

/// Re-emits a tolerantly-lexed tainted query as a *sanitized* tainted query:
/// string-literal content is re-escaped (quotes doubled), so untrusted
/// quotes can no longer change the query structure. Taint is preserved
/// byte-for-byte for the copied content.
pub fn sanitize_query(query: &TaintedString, tokens: &[Token]) -> TaintedString {
    let mut out = TaintedStrBuilder::with_capacity(query.len() + tokens.len());
    for (idx, t) in tokens.iter().enumerate() {
        if idx > 0 {
            out.push_char(' ');
        }
        match &t.tok {
            Tok::Str(_) => {
                // Slice the literal's interior (excluding delimiters) from
                // the tainted source, then re-escape quotes. Both bytes of
                // each emitted `''` carry the source quote's label — an
                // untainted replacement here would launder the attacker's
                // quote through the guard's own rewrite (the escape pair
                // later collapses back to one byte in storage, and that
                // byte must still read as untrusted).
                let inner = query.slice(t.span.start + 1..t.span.end - 1);
                out.push_char('\'');
                let bytes = inner.as_str().as_bytes();
                let mut start = 0usize;
                for (i, &b) in bytes.iter().enumerate() {
                    if b == b'\'' {
                        out.push_tainted(&inner.slice(start..i));
                        out.push_label("''", inner.label_at(i));
                        start = i + 1;
                    }
                }
                out.push_tainted(&inner.slice(start..bytes.len()));
                out.push_char('\'');
            }
            _ => {
                out.push_tainted(&query.slice(t.span.clone()));
            }
        }
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::TaintedString;
    use std::sync::Arc;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_basic_select() {
        assert_eq!(
            toks("SELECT a, b FROM t WHERE a = 'x'"),
            vec![
                Tok::Kw("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Punct(','),
                Tok::Ident("b".into()),
                Tok::Kw("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Kw("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Op("="),
                Tok::Str("x".into()),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("select"), vec![Tok::Kw("SELECT".into())]);
        assert_eq!(toks("SeLeCt"), vec![Tok::Kw("SELECT".into())]);
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(toks("42 -7"), vec![Tok::Num(42), Tok::Num(-7)]);
        assert_eq!(
            toks("a - 7"),
            vec![Tok::Ident("a".into()), Tok::Op("-"), Tok::Num(7)]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= != <> < > ="),
            vec![
                Tok::Op("<="),
                Tok::Op(">="),
                Tok::Op("!="),
                Tok::Op("!="),
                Tok::Op("<"),
                Tok::Op(">"),
                Tok::Op("=")
            ]
        );
    }

    #[test]
    fn escaped_quotes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn spans_cover_source() {
        let ts = lex("SELECT 'ab'").unwrap();
        assert_eq!(ts[0].span, 0..6);
        assert_eq!(ts[1].span, 7..11, "includes quotes");
        assert!(ts[0].is_structure());
        assert!(!ts[1].is_structure());
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn params_get_text_order_ordinals() {
        assert_eq!(
            toks("a = ? AND b = ?"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op("="),
                Tok::Param(0),
                Tok::Kw("AND".into()),
                Tok::Ident("b".into()),
                Tok::Op("="),
                Tok::Param(1),
            ]
        );
        let ts = lex("? ?").unwrap();
        assert!(ts[0].is_structure(), "placeholders are structure");
        assert_eq!(ts[1].span, 2..3);
    }

    #[test]
    fn tolerant_mode_keeps_untrusted_quote_inside_literal() {
        // Build: SELECT * FROM t WHERE name = '<input>' with a hostile input.
        let mut q = TaintedString::from("SELECT * FROM t WHERE name = '");
        let evil =
            TaintedString::with_policy("x' OR '1'='1", Arc::new(resin_core::UntrustedData::new()));
        q.push_tainted(&evil);
        q.push_str("'");

        // Strict lexing sees the injected quote as a delimiter: the query
        // "works" for the attacker (5 extra structure tokens).
        let strict = lex_tainted(&q, false).unwrap();
        assert!(strict.len() > 8);

        // Tolerant lexing keeps the whole input in one literal.
        let tolerant = lex_tainted(&q, true).unwrap();
        let strs: Vec<&Tok> = tolerant
            .iter()
            .map(|t| &t.tok)
            .filter(|t| matches!(t, Tok::Str(_)))
            .collect();
        assert_eq!(strs, vec![&Tok::Str("x' OR '1'='1".into())]);
    }

    #[test]
    fn sanitize_roundtrip() {
        let mut q = TaintedString::from("SELECT * FROM t WHERE name = '");
        let evil =
            TaintedString::with_policy("x' OR '1'='1", Arc::new(resin_core::UntrustedData::new()));
        q.push_tainted(&evil);
        q.push_str("'");
        let tokens = lex_tainted(&q, true).unwrap();
        let clean = sanitize_query(&q, &tokens);
        // The sanitized query escapes the hostile quotes...
        assert!(clean.as_str().contains("x'' OR ''1''=''1"));
        // ...and still carries the taint on the copied content.
        assert!(clean.has_policy::<resin_core::UntrustedData>());
        // Strict lexing of the sanitized query yields one literal again.
        let relexed = lex(clean.as_str()).unwrap();
        let strs: Vec<&Tok> = relexed
            .iter()
            .map(|t| &t.tok)
            .filter(|t| matches!(t, Tok::Str(_)))
            .collect();
        assert_eq!(strs, vec![&Tok::Str("x' OR '1'='1".into())]);
    }
}
