//! A minimal access-path planner.
//!
//! Runs **post-guard / post-rewrite**: by the time a statement reaches
//! the planner it has already passed the injection guard and had its
//! policy columns attached, so planning is pure engine-side work on
//! trusted structure. The planner decomposes the `WHERE` clause into
//! AND-conjuncts, matches each against the table's secondary indexes,
//! and picks one of three access paths:
//!
//! 1. **Equality probe** (`col = lit`, `col IN (lits)`): the
//!    session/login/post-by-id shape the forum and wiki hammer. Hash
//!    indexes are preferred; an ordered index serves equality too.
//! 2. **Range probe** (`col > lit`, chains of range conjuncts on one
//!    column with bound tightening) over an ordered index. When the
//!    range column is also the `ORDER BY` column and the index is exact,
//!    rows come back already sorted and `LIMIT` pushes down.
//! 3. **Ordered iteration**: no usable predicate conjunct, but the
//!    `ORDER BY` column has an exact ordered index — skip the sort.
//!
//! Anything else falls back to the full scan. Probes return *candidate*
//! ids only; the executor re-applies the complete predicate to each
//! candidate, so a plan can never change a result, only the amount of
//! work to produce it. The planner is deliberately conservative about
//! [`Value::compare`]'s cross-type leniency: a conjunct whose literal is
//! not of the index's declared key type is never matched to an index
//! (an INTEGER probe for `'5'` would miss `Int(5)` cells that lenient
//! equality matches — see [`crate::index`] on non-transitivity).

use std::ops::Bound;

use crate::ast::{BinOp, Expr, IndexKind, LitValue, SelectStmt};
use crate::engine::{matches_where, Table};
use crate::error::Result;
use crate::index::{kind_name, Index};
use crate::value::Value;

/// The chosen access path for a statement over one table.
pub(crate) enum Access {
    /// Walk every row in storage order.
    Scan,
    /// Candidate row ids, ascending (scan order). The full predicate must
    /// be re-applied to each.
    Ids(Vec<usize>),
    /// Candidate row ids already in `ORDER BY` order (ties in row order).
    /// The full predicate must be re-applied; `LIMIT` may stop early.
    KeyOrdered(Vec<usize>),
}

/// One matched index strategy, before materializing row ids.
enum Choice<'t> {
    Scan,
    /// `col = k` / `col IN (ks)` via `ix`.
    Eq {
        ix: &'t Index,
        keys: Vec<Value>,
    },
    /// A (possibly half-open) key range on `ix`; `ordered` means the ids
    /// may be emitted in key order to satisfy ORDER BY.
    Range {
        ix: &'t Index,
        lo: Bound<Value>,
        hi: Bound<Value>,
        ordered: bool,
        desc: bool,
    },
    /// Full-key iteration of `ix` to satisfy ORDER BY without sorting.
    OrderIter {
        ix: &'t Index,
        desc: bool,
    },
}

/// Plans the access path for a SELECT.
pub(crate) fn plan_select(t: &Table, sel: &SelectStmt, params: &[Value]) -> Access {
    let order = sel.order_by.as_ref().map(|(c, d)| (c.as_str(), *d));
    // With no WHERE clause every iterated row survives, so LIMIT caps the
    // order-only iteration itself (O(limit) instead of O(table)). A
    // predicate can reject rows, so there the iteration must stay full.
    let cap = match (&sel.where_clause, sel.limit) {
        (None, Some(n)) => n,
        _ => usize::MAX,
    };
    materialize(choose(t, sel.where_clause.as_ref(), order, params), cap)
}

/// Row ids matching `where_clause`, ascending — the shared path for
/// UPDATE and DELETE (and any caller that needs exact hits rather than
/// result rows). Uses an index probe when one matches, then re-applies
/// the full predicate.
pub(crate) fn matching_row_ids(
    t: &Table,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<Vec<usize>> {
    let mut hits = Vec::new();
    match materialize(choose(t, where_clause, None, params), usize::MAX) {
        Access::Scan => {
            for (ri, row) in t.rows.iter().enumerate() {
                if matches_where(t, row, where_clause, params)? {
                    hits.push(ri);
                }
            }
        }
        Access::Ids(ids) | Access::KeyOrdered(ids) => {
            for id in ids {
                if matches_where(t, &t.rows[id], where_clause, params)? {
                    hits.push(id);
                }
            }
        }
    }
    Ok(hits)
}

/// A one-line description of the plan for a SELECT — `EXPLAIN` for tests
/// and diagnostics.
pub(crate) fn explain_select(t: &Table, sel: &SelectStmt, params: &[Value]) -> String {
    let order = sel.order_by.as_ref().map(|(c, d)| (c.as_str(), *d));
    match choose(t, sel.where_clause.as_ref(), order, params) {
        Choice::Scan => format!("scan({})", sel.table),
        Choice::Eq { ix, keys } => format!(
            "probe-eq({} via {} [{}], {} key{})",
            sel.table,
            ix.name(),
            kind_name(ix.kind()),
            keys.len(),
            if keys.len() == 1 { "" } else { "s" }
        ),
        Choice::Range { ix, ordered, .. } => format!(
            "probe-range({} via {}{})",
            sel.table,
            ix.name(),
            if ordered { ", pre-ordered" } else { "" }
        ),
        Choice::OrderIter { ix, desc } => format!(
            "order-iter({} via {}{})",
            sel.table,
            ix.name(),
            if desc { ", desc" } else { "" }
        ),
    }
}

fn materialize(choice: Choice<'_>, order_cap: usize) -> Access {
    match choice {
        Choice::Scan => Access::Scan,
        Choice::Eq { ix, keys } => {
            let mut ids: Vec<usize> = Vec::new();
            for k in &keys {
                ids.extend_from_slice(ix.probe_eq(k));
            }
            ids.extend_from_slice(ix.residue());
            ids.sort_unstable();
            ids.dedup();
            Access::Ids(ids)
        }
        Choice::Range {
            ix,
            lo,
            hi,
            ordered,
            desc,
        } => {
            if ordered {
                Access::KeyOrdered(ix.probe_range(lo.as_ref(), hi.as_ref(), desc))
            } else {
                let mut ids = ix.probe_range(lo.as_ref(), hi.as_ref(), false);
                ids.extend_from_slice(ix.residue());
                ids.sort_unstable();
                Access::Ids(ids)
            }
        }
        Choice::OrderIter { ix, desc } => {
            Access::KeyOrdered(ix.ordered_ids_capped(desc, order_cap))
        }
    }
}

fn choose<'t>(
    t: &'t Table,
    where_clause: Option<&Expr>,
    order: Option<(&str, bool)>,
    params: &[Value],
) -> Choice<'t> {
    let mut cs = Vec::new();
    if let Some(e) = where_clause {
        conjuncts(e, &mut cs);
    }

    // 1. Equality probe: the most selective shape we recognize.
    for c in &cs {
        if let Some((col, keys)) = eq_shape(c, params) {
            if let Some(ix) = index_for(t, col, /* needs_order: */ false) {
                if keys.iter().all(|k| ix.covers_literal(k)) {
                    return Choice::Eq { ix, keys };
                }
            }
        }
    }

    // 2. Range probe with bound tightening across conjuncts per column.
    //    Prefer a range on the ORDER BY column (enables sort skipping).
    let mut ranges: Vec<(&str, &'t Index, Bound<Value>, Bound<Value>)> = Vec::new();
    for c in &cs {
        let Some((col, op, key)) = range_shape(c, params) else {
            continue;
        };
        let Some(ix) = ordered_index_on(t, col) else {
            continue;
        };
        if !ix.covers_literal(&key) {
            continue;
        }
        let slot = match ranges.iter_mut().find(|(rc, ..)| *rc == col) {
            Some(s) => s,
            None => {
                ranges.push((col, ix, Bound::Unbounded, Bound::Unbounded));
                ranges.last_mut().expect("just pushed")
            }
        };
        match op {
            BinOp::Gt => tighten_lo(&mut slot.2, Bound::Excluded(key)),
            BinOp::Ge => tighten_lo(&mut slot.2, Bound::Included(key)),
            BinOp::Lt => tighten_hi(&mut slot.3, Bound::Excluded(key)),
            BinOp::Le => tighten_hi(&mut slot.3, Bound::Included(key)),
            _ => unreachable!("range_shape only yields range ops"),
        }
    }
    if !ranges.is_empty() {
        let on_order = order.and_then(|(oc, desc)| {
            ranges
                .iter()
                .position(|(rc, ix, ..)| *rc == oc && ix.supports_ordered_iteration())
                .map(|i| (i, desc))
        });
        let (i, ordered, desc) = match on_order {
            Some((i, desc)) => (i, true, desc),
            None => (0, false, false),
        };
        let (_, ix, lo, hi) = ranges.swap_remove(i);
        return Choice::Range {
            ix,
            lo,
            hi,
            ordered,
            desc,
        };
    }

    // 3. No usable predicate: ordered iteration for ORDER BY alone.
    if let Some((oc, desc)) = order {
        if let Some(ix) = ordered_index_on(t, oc) {
            if ix.supports_ordered_iteration() {
                return Choice::OrderIter { ix, desc };
            }
        }
    }
    Choice::Scan
}

/// Splits nested `AND`s into a conjunct list.
fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            conjuncts(left, out);
            conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// `col = lit`, `lit = col`, or `col IN (lit, ...)` — returns the column
/// and the probe keys. NULL keys never match anything under `=`/`IN`, so
/// they disqualify the shape (the scan handles them, matching nothing).
fn eq_shape<'e>(e: &'e Expr, params: &[Value]) -> Option<(&'e str, Vec<Value>)> {
    match e {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => {
            let (col, lit) = column_and_value(left, right, params)?;
            if lit.is_null() {
                return None;
            }
            Some((col, vec![lit]))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let Expr::Column(col) = expr.as_ref() else {
                return None;
            };
            let mut keys = Vec::with_capacity(list.len());
            for item in list {
                let v = const_value(item, params)?;
                // A NULL element matches nothing; skip it rather than
                // disqualifying the whole list.
                if !v.is_null() {
                    keys.push(v);
                }
            }
            Some((col, keys))
        }
        _ => None,
    }
}

/// `col <op> lit` or `lit <op> col` for a range operator; the operator is
/// returned as if the column were on the left.
fn range_shape<'e>(e: &'e Expr, params: &[Value]) -> Option<(&'e str, BinOp, Value)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
        return None;
    }
    if let (Expr::Column(c), Some(v)) = (left.as_ref(), const_value(right, params)) {
        if v.is_null() {
            return None;
        }
        return Some((c, *op, v));
    }
    if let (Some(v), Expr::Column(c)) = (const_value(left, params), right.as_ref()) {
        if v.is_null() {
            return None;
        }
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            _ => unreachable!("filtered above"),
        };
        return Some((c, flipped, v));
    }
    None
}

fn column_and_value<'e>(
    left: &'e Expr,
    right: &'e Expr,
    params: &[Value],
) -> Option<(&'e str, Value)> {
    if let (Expr::Column(c), Some(v)) = (left, const_value(right, params)) {
        return Some((c, v));
    }
    if let (Some(v), Expr::Column(c)) = (const_value(left, params), right) {
        return Some((c, v));
    }
    None
}

/// The constant value of a literal or bound parameter, if any. An unbound
/// parameter yields `None`, which routes the statement to the scan path
/// where evaluation reports the missing binding.
fn const_value(e: &Expr, params: &[Value]) -> Option<Value> {
    match e {
        Expr::Lit(l) => Some(match &l.value {
            LitValue::Int(i) => Value::Int(*i),
            LitValue::Text(s) => Value::Text(s.clone()),
            LitValue::Null => Value::Null,
        }),
        Expr::Param(i) => params.get(*i).cloned(),
        _ => None,
    }
}

/// An index on `col`, preferring hash over ordered for equality probes.
fn index_for<'t>(t: &'t Table, col: &str, needs_order: bool) -> Option<&'t Index> {
    let mut best: Option<&Index> = None;
    for ix in t.indexes() {
        if ix.column() != col {
            continue;
        }
        match ix.kind() {
            IndexKind::Ordered => {
                if best.is_none() {
                    best = Some(ix);
                }
            }
            IndexKind::Hash => {
                if !needs_order {
                    return Some(ix);
                }
            }
        }
    }
    best
}

fn ordered_index_on<'t>(t: &'t Table, col: &str) -> Option<&'t Index> {
    t.indexes()
        .find(|ix| ix.column() == col && ix.kind() == IndexKind::Ordered)
}

fn tighten_lo(cur: &mut Bound<Value>, new: Bound<Value>) {
    if bound_beats(&new, cur, /* is_lower: */ true) {
        *cur = new;
    }
}

fn tighten_hi(cur: &mut Bound<Value>, new: Bound<Value>) {
    if bound_beats(&new, cur, /* is_lower: */ false) {
        *cur = new;
    }
}

/// Whether `new` is a strictly tighter bound than `cur`. Both bound
/// values are of the index key type (checked via `covers_literal`), so
/// `Value::compare` is total here.
fn bound_beats(new: &Bound<Value>, cur: &Bound<Value>, is_lower: bool) -> bool {
    use std::cmp::Ordering::*;
    let (nv, n_excl) = match new {
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
        Bound::Unbounded => return false,
    };
    let (cv, c_excl) = match cur {
        Bound::Included(v) => (v, false),
        Bound::Excluded(v) => (v, true),
        Bound::Unbounded => return true,
    };
    match nv.compare(cv) {
        Some(Greater) => is_lower,
        Some(Less) => !is_lower,
        Some(Equal) => n_excl && !c_excl,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::parser::parse_str;
    use crate::Statement;

    fn planned(db: &Database, sql: &str) -> String {
        let Statement::Select(sel) = parse_str(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        let t = db.table(&sel.table).unwrap();
        explain_select(t, &sel, &[])
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE users (id INTEGER, name TEXT, age INTEGER)")
            .unwrap();
        db.execute_str(
            "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)",
        )
        .unwrap();
        db.execute_str("CREATE INDEX ix_id ON users (id) USING HASH")
            .unwrap();
        db.execute_str("CREATE INDEX ix_age ON users (age)")
            .unwrap();
        db
    }

    #[test]
    fn eq_prefers_hash() {
        let db = db();
        let plan = planned(&db, "SELECT name FROM users WHERE id = 2");
        assert!(
            plan.contains("probe-eq") && plan.contains("ix_id"),
            "{plan}"
        );
    }

    #[test]
    fn eq_on_ordered_index_works() {
        let db = db();
        let plan = planned(&db, "SELECT name FROM users WHERE age = 25");
        assert!(
            plan.contains("probe-eq") && plan.contains("ix_age"),
            "{plan}"
        );
    }

    #[test]
    fn in_list_probes() {
        let db = db();
        let plan = planned(&db, "SELECT name FROM users WHERE id IN (1, 3)");
        assert!(
            plan.contains("probe-eq") && plan.contains("2 keys"),
            "{plan}"
        );
    }

    #[test]
    fn range_uses_ordered_only() {
        let db = db();
        let plan = planned(&db, "SELECT name FROM users WHERE age > 26");
        assert!(plan.contains("probe-range"), "{plan}");
        // Hash index cannot serve a range.
        let plan = planned(&db, "SELECT name FROM users WHERE id > 1");
        assert_eq!(plan, "scan(users)");
    }

    #[test]
    fn range_on_order_column_pre_orders() {
        let db = db();
        let plan = planned(
            &db,
            "SELECT name FROM users WHERE age > 20 ORDER BY age LIMIT 1",
        );
        assert!(plan.contains("pre-ordered"), "{plan}");
    }

    #[test]
    fn order_only_iterates_index() {
        let db = db();
        let plan = planned(&db, "SELECT name FROM users ORDER BY age DESC");
        assert!(
            plan.contains("order-iter") && plan.contains("desc"),
            "{plan}"
        );
    }

    #[test]
    fn mismatched_literal_type_falls_back_to_scan() {
        let db = db();
        // '2' could leniently equal Int(2) cells the probe would miss.
        let plan = planned(&db, "SELECT name FROM users WHERE id = '2'");
        assert_eq!(plan, "scan(users)");
    }

    #[test]
    fn unindexed_predicate_scans() {
        let db = db();
        let plan = planned(&db, "SELECT id FROM users WHERE name = 'bob'");
        assert_eq!(plan, "scan(users)");
    }
}
