//! The storage and execution engine.
//!
//! A straightforward in-memory engine: tables are vectors of rows, queries
//! scan. It is deliberately policy-oblivious — the RESIN integration
//! (policy columns, injection guards) lives in [`crate::rewrite`], exactly
//! as the paper layers its SQL filter over an unmodified database.
//!
//! The per-table operations (`table_insert`, `table_select`,
//! `table_update`, `table_delete`) are free functions over a single
//! [`Table`], so they serve two storage layouts: the single-threaded
//! [`Database`] here (a plain map of tables) and the lock-sharded
//! [`crate::shard::ShardedDatabase`] (one `RwLock` per table).

use std::collections::BTreeMap;

use crate::ast::{BinOp, ColumnDef, Expr, IndexKind, LitValue, Projection, SelectStmt, Statement};
use crate::error::{Result, SqlError};
use crate::index::Index;
use crate::plan::{self, Access};
use crate::value::{like_match, Value};

/// A table: schema, row storage, and secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Row-major storage.
    pub rows: Vec<Vec<Value>>,
    /// Secondary indexes (see [`crate::index`]). Kept inside the table so
    /// transaction snapshots and rollbacks restore index state for free.
    pub(crate) indexes: Vec<Index>,
}

impl Table {
    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The table's secondary indexes, in creation order.
    pub fn indexes(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    /// Builds an index over `column` and registers it. Returns `false`
    /// when `if_not_exists` suppressed a duplicate.
    pub(crate) fn create_index(
        &mut self,
        name: &str,
        column: &str,
        kind: IndexKind,
        if_not_exists: bool,
    ) -> Result<bool> {
        if self.indexes.iter().any(|ix| ix.name() == name) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(SqlError::schema(format!("index `{name}` already exists")));
        }
        let ix = Index::build(name, column, kind, &self.columns, &self.rows)?;
        self.indexes.push(ix);
        Ok(true)
    }

    /// Removes the index called `name`.
    pub(crate) fn drop_index(&mut self, name: &str) -> Result<()> {
        match self.indexes.iter().position(|ix| ix.name() == name) {
            Some(i) => {
                self.indexes.remove(i);
                Ok(())
            }
            None => Err(SqlError::schema(format!("no such index `{name}`"))),
        }
    }
}

/// Rejects table names in the reserved `__rp_` namespace (policy columns
/// and the durable index catalog live there).
pub(crate) fn check_table_name(name: &str) -> Result<()> {
    if name.starts_with(crate::rewrite::POLICY_COL_PREFIX) {
        return Err(SqlError::schema(format!(
            "table name `{name}` uses the reserved `{}` prefix",
            crate::rewrite::POLICY_COL_PREFIX
        )));
    }
    Ok(())
}

/// The result of executing a statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Result column names (empty for non-SELECT statements).
    pub columns: Vec<String>,
    /// Result rows (empty for non-SELECT statements).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
}

/// The in-memory database.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The schema of `table`, if it exists.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        self.execute_with_params(stmt, &[])
    }

    /// Executes a parsed statement with bind-parameter values. `params[i]`
    /// is the value of the `i`-th `?` placeholder in text order.
    pub fn execute_with_params(
        &mut self,
        stmt: &Statement,
        params: &[Value],
    ) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
                primary_key,
            } => self.create_table(name, columns, *if_not_exists, primary_key.as_deref()),
            Statement::DropTable { name } => {
                if self.tables.remove(name).is_none() {
                    return Err(SqlError::schema(format!("no such table `{name}`")));
                }
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                kind,
                if_not_exists,
            } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
                t.create_index(name, column, *kind, *if_not_exists)?;
                Ok(QueryResult::default())
            }
            Statement::DropIndex { name, table } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
                t.drop_index(name)?;
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(table, columns.as_deref(), rows, params),
            Statement::Select(sel) => self.select(sel, params),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.update(table, assignments, where_clause.as_ref(), params),
            Statement::Delete {
                table,
                where_clause,
            } => self.delete(table, where_clause.as_ref(), params),
        }
    }

    /// Parses and executes a query string.
    pub fn execute_str(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = crate::parser::parse_str(sql)?;
        self.execute(&stmt)
    }

    /// The access path the planner would pick for a SELECT — a one-line
    /// `EXPLAIN` (e.g. `probe-eq(users via pk_users [BTREE], 1 key)`)
    /// for tests and diagnostics. Non-SELECT statements report
    /// `(not a select)`.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = crate::parser::parse_str(sql)?;
        let Statement::Select(sel) = stmt else {
            return Ok("(not a select)".to_string());
        };
        let t = self
            .table(&sel.table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{}`", sel.table)))?;
        Ok(plan::explain_select(t, &sel, &[]))
    }

    /// Installs `table` under `name` (transaction-rollback support).
    pub(crate) fn set_table(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Removes `name` entirely (transaction-rollback support).
    pub(crate) fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
        primary_key: Option<&str>,
    ) -> Result<QueryResult> {
        check_table_name(name)?;
        if self.tables.contains_key(name) {
            if if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::schema(format!("table `{name}` already exists")));
        }
        let mut table = new_table(columns)?;
        if let Some(pk) = primary_key {
            table.create_index(&format!("pk_{name}"), pk, IndexKind::Ordered, false)?;
        }
        self.tables.insert(name.to_string(), table);
        Ok(QueryResult::default())
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        params: &[Value],
    ) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_insert(t, table, columns, rows, params)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    fn select(&mut self, sel: &SelectStmt, params: &[Value]) -> Result<QueryResult> {
        let t = self
            .tables
            .get(&sel.table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{}`", sel.table)))?;
        table_select(t, sel, params)
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        where_clause: Option<&Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_update(t, assignments, where_clause, params)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    fn delete(
        &mut self,
        table: &str,
        where_clause: Option<&Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_delete(t, where_clause, params)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }
}

// ---- per-table operations, shared by both storage layouts ----

/// Validates `columns` and builds an empty [`Table`].
pub(crate) fn new_table(columns: &[ColumnDef]) -> Result<Table> {
    let mut seen = std::collections::BTreeSet::new();
    for c in columns {
        if !seen.insert(&c.name) {
            return Err(SqlError::schema(format!("duplicate column `{}`", c.name)));
        }
    }
    Ok(Table {
        columns: columns.to_vec(),
        rows: Vec::new(),
        indexes: Vec::new(),
    })
}

/// Inserts `rows` into `t` (`name` is for error messages only), returning
/// the number of rows added. All rows are validated before any is stored.
pub(crate) fn table_insert(
    t: &mut Table,
    name: &str,
    columns: Option<&[String]>,
    rows: &[Vec<Expr>],
    params: &[Value],
) -> Result<usize> {
    // Map provided positions to storage positions.
    let positions: Vec<usize> = match columns {
        None => (0..t.columns.len()).collect(),
        Some(cols) => cols
            .iter()
            .map(|c| {
                t.col_index(c)
                    .ok_or_else(|| SqlError::schema(format!("no column `{c}` in `{name}`")))
            })
            .collect::<Result<_>>()?,
    };
    let width = t.columns.len();
    let mut staged = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != positions.len() {
            return Err(SqlError::schema(format!(
                "expected {} values, got {}",
                positions.len(),
                row.len()
            )));
        }
        let mut storage = vec![Value::Null; width];
        for (expr, &pos) in row.iter().zip(&positions) {
            storage[pos] = eval_const(expr, params)?;
        }
        staged.push(storage);
    }
    let affected = staged.len();
    let base = t.rows.len();
    t.rows.extend(staged);
    let Table { rows, indexes, .. } = t;
    for ix in indexes.iter_mut() {
        for (id, row) in rows.iter().enumerate().skip(base) {
            ix.add(id, &row[ix.col]);
        }
    }
    Ok(affected)
}

/// Runs a SELECT against one table.
///
/// The [`crate::plan`] module picks the access path: a full scan, an
/// index probe (candidate ids that the full predicate is re-applied to,
/// so probes are exactly as selective as scans), or ordered-index
/// iteration that yields rows already in ORDER BY order (skipping the
/// sort and stopping at LIMIT).
pub(crate) fn table_select(t: &Table, sel: &SelectStmt, params: &[Value]) -> Result<QueryResult> {
    let order = match &sel.order_by {
        Some((col, desc)) => {
            let idx = t
                .col_index(col)
                .ok_or_else(|| SqlError::schema(format!("no column `{col}`")))?;
            Some((idx, *desc))
        }
        None => None,
    };
    let clause = sel.where_clause.as_ref();
    let mut matched: Vec<&Vec<Value>> = Vec::new();
    let mut pre_ordered = false;
    match plan::plan_select(t, sel, params) {
        Access::Scan => {
            for row in &t.rows {
                if matches_where(t, row, clause, params)? {
                    matched.push(row);
                }
            }
        }
        Access::Ids(ids) => {
            for id in ids {
                let row = &t.rows[id];
                if matches_where(t, row, clause, params)? {
                    matched.push(row);
                }
            }
        }
        Access::KeyOrdered(ids) => {
            // Rows arrive in ORDER BY order (planner guarantees the index
            // is exact: ordered kind, no residue), so LIMIT pushes down.
            pre_ordered = true;
            let cap = sel.limit.unwrap_or(usize::MAX);
            for id in ids {
                if matched.len() >= cap {
                    break;
                }
                let row = &t.rows[id];
                if matches_where(t, row, clause, params)? {
                    matched.push(row);
                }
            }
        }
    }
    if let Some((idx, desc)) = order {
        if !pre_ordered {
            // NULL is not comparable (`Value::compare` returns `None`), so
            // an ordering over it would be arbitrary; fail loudly instead
            // of silently treating incomparable keys as equal.
            if matched.iter().any(|r| r[idx].is_null()) {
                let (col, _) = sel.order_by.as_ref().expect("order resolved from order_by");
                return Err(SqlError::schema(format!(
                    "cannot ORDER BY `{col}`: a matching row has a NULL key"
                )));
            }
            matched.sort_by(|a, b| {
                let ord = a[idx]
                    .compare(&b[idx])
                    .expect("non-NULL cells always compare");
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
    }
    if !pre_ordered {
        if let Some(limit) = sel.limit {
            matched.truncate(limit);
        }
    }
    match &sel.projection {
        Projection::CountStar => Ok(QueryResult {
            columns: vec!["count".to_string()],
            rows: vec![vec![Value::Int(matched.len() as i64)]],
            affected: 0,
        }),
        Projection::Star => Ok(QueryResult {
            columns: t.columns.iter().map(|c| c.name.clone()).collect(),
            rows: matched.into_iter().cloned().collect(),
            affected: 0,
        }),
        Projection::Columns(cols) => {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| {
                    t.col_index(c)
                        .ok_or_else(|| SqlError::schema(format!("no column `{c}`")))
                })
                .collect::<Result<_>>()?;
            let rows = matched
                .into_iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect();
            Ok(QueryResult {
                columns: cols.clone(),
                rows,
                affected: 0,
            })
        }
    }
}

/// Applies an UPDATE to one table, returning the affected-row count.
/// Matching rows are found via the planner (probe or scan); indexes on
/// assigned columns are maintained in place.
pub(crate) fn table_update(
    t: &mut Table,
    assignments: &[(String, Expr)],
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<usize> {
    let idxs: Vec<(usize, Value)> = assignments
        .iter()
        .map(|(c, e)| {
            let i = t
                .col_index(c)
                .ok_or_else(|| SqlError::schema(format!("no column `{c}`")))?;
            Ok((i, eval_const(e, params)?))
        })
        .collect::<Result<_>>()?;
    let hits = plan::matching_row_ids(t, where_clause, params)?;
    let affected = hits.len();
    let Table { rows, indexes, .. } = t;
    for &ri in &hits {
        for (ci, v) in &idxs {
            let old = std::mem::replace(&mut rows[ri][*ci], v.clone());
            if old != *v {
                for ix in indexes.iter_mut() {
                    if ix.col == *ci {
                        ix.replace(ri, &old, v);
                    }
                }
            }
        }
    }
    Ok(affected)
}

/// Applies a DELETE to one table, returning the affected-row count.
/// Index posting lists drop the deleted ids and shift the survivors to
/// match the compacted row storage.
pub(crate) fn table_delete(
    t: &mut Table,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<usize> {
    let hits = plan::matching_row_ids(t, where_clause, params)?;
    let affected = hits.len();
    if affected > 0 {
        for ix in t.indexes.iter_mut() {
            ix.apply_delete(&hits);
        }
        let mut hit_iter = hits.into_iter().peekable();
        let mut idx = 0usize;
        t.rows.retain(|_| {
            let drop_row = hit_iter.peek() == Some(&idx);
            if drop_row {
                hit_iter.next();
            }
            idx += 1;
            !drop_row
        });
    }
    Ok(affected)
}

fn eval_const(expr: &Expr, params: &[Value]) -> Result<Value> {
    match expr {
        Expr::Lit(l) => Ok(match &l.value {
            LitValue::Int(i) => Value::Int(*i),
            LitValue::Text(s) => Value::Text(s.clone()),
            LitValue::Null => Value::Null,
        }),
        Expr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Type(format!("parameter ?{} has no bound value", *i + 1))),
        other => Err(SqlError::Type(format!(
            "expected a literal value, found {other:?}"
        ))),
    }
}

pub(crate) fn matches_where(
    t: &Table,
    row: &[Value],
    clause: Option<&Expr>,
    params: &[Value],
) -> Result<bool> {
    match clause {
        None => Ok(true),
        Some(e) => Ok(eval_expr(t, row, e, params)?.truthy()),
    }
}

fn eval_expr(t: &Table, row: &[Value], expr: &Expr, params: &[Value]) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let i = t
                .col_index(name)
                .ok_or_else(|| SqlError::schema(format!("no column `{name}`")))?;
            Ok(row[i].clone())
        }
        Expr::Lit(_) | Expr::Param(_) => eval_const(expr, params),
        Expr::Not(inner) => {
            let v = eval_expr(t, row, inner, params)?;
            Ok(Value::Int(if v.truthy() { 0 } else { 1 }))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(t, row, expr, params)?;
            Ok(Value::Int(if v.is_null() != *negated { 1 } else { 0 }))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(t, row, expr, params)?;
            let mut found = false;
            for item in list {
                let w = eval_expr(t, row, item, params)?;
                if v.compare(&w) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Int(if found != *negated { 1 } else { 0 }))
        }
        Expr::Binary { op, left, right } => {
            let l = eval_expr(t, row, left, params)?;
            let r = eval_expr(t, row, right, params)?;
            let b = match op {
                BinOp::And => l.truthy() && r.truthy(),
                BinOp::Or => l.truthy() || r.truthy(),
                BinOp::Like => match (&l, &r) {
                    (Value::Text(s), Value::Text(p)) => like_match(s, p),
                    _ => false,
                },
                cmp => {
                    let ord = l.compare(&r);
                    match (cmp, ord) {
                        (_, None) => false,
                        (BinOp::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                        (BinOp::Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                        (BinOp::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                        (BinOp::Le, Some(o)) => o != std::cmp::Ordering::Greater,
                        (BinOp::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                        (BinOp::Ge, Some(o)) => o != std::cmp::Ordering::Less,
                        _ => unreachable!("and/or/like handled above"),
                    }
                }
            };
            Ok(Value::Int(if b { 1 } else { 0 }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_users() -> Database {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE users (id INTEGER, name TEXT, age INTEGER)")
            .unwrap();
        db.execute_str(
            "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT name FROM users WHERE age > 26")
            .unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn select_star_and_order() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT * FROM users ORDER BY age DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Text("carol".into()));
        assert_eq!(r.rows[1][1], Value::Text("alice".into()));
    }

    #[test]
    fn count_star() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT COUNT(*) FROM users WHERE age < 31")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn update_rows() {
        let mut db = db_with_users();
        let r = db
            .execute_str("UPDATE users SET age = 26 WHERE name = 'bob'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = db
            .execute_str("SELECT age FROM users WHERE name = 'bob'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(26));
    }

    #[test]
    fn delete_rows() {
        let mut db = db_with_users();
        let r = db.execute_str("DELETE FROM users WHERE age >= 30").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute_str("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn insert_with_columns_fills_null() {
        let mut db = db_with_users();
        db.execute_str("INSERT INTO users (id, name) VALUES (4, 'dan')")
            .unwrap();
        let r = db
            .execute_str("SELECT age FROM users WHERE id = 4")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        let r = db
            .execute_str("SELECT name FROM users WHERE age IS NULL")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("dan".into()));
    }

    #[test]
    fn like_and_in_filters() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT name FROM users WHERE name LIKE '%o%'")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "bob and carol");
        let r = db
            .execute_str("SELECT name FROM users WHERE id IN (1, 3)")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = db
            .execute_str("SELECT name FROM users WHERE id NOT IN (1, 3)")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn schema_errors() {
        let mut db = db_with_users();
        assert!(db.execute_str("SELECT nope FROM users").is_err());
        assert!(db.execute_str("SELECT * FROM nope").is_err());
        assert!(db.execute_str("INSERT INTO users VALUES (1)").is_err());
        assert!(db
            .execute_str("INSERT INTO users (zzz) VALUES (1)")
            .is_err());
        assert!(db.execute_str("CREATE TABLE users (id INTEGER)").is_err());
        assert!(db.execute_str("CREATE TABLE t2 (a TEXT, a TEXT)").is_err());
        assert!(db.execute_str("DROP TABLE nope").is_err());
        assert!(db.execute_str("UPDATE users SET nope = 1").is_err());
    }

    #[test]
    fn if_not_exists_is_idempotent() {
        let mut db = db_with_users();
        assert!(db
            .execute_str("CREATE TABLE IF NOT EXISTS users (id INTEGER)")
            .is_ok());
        // Original schema retained.
        assert_eq!(db.table("users").unwrap().columns.len(), 3);
    }

    #[test]
    fn drop_table() {
        let mut db = db_with_users();
        db.execute_str("DROP TABLE users").unwrap();
        assert!(db.table("users").is_none());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn classic_injection_dumps_table_without_guard() {
        // The raw engine happily executes an injected query — protection is
        // the RESIN filter's job, not the database's.
        let mut db = db_with_users();
        let name_input = "x' OR '1'='1";
        let q = format!("SELECT name FROM users WHERE name = '{name_input}");
        // The trailing quote from the template closes the injected literal.
        let q = format!("{q}'");
        let r = db.execute_str(&q).unwrap();
        assert_eq!(r.rows.len(), 3, "injection dumps every row");
    }

    #[test]
    fn multi_insert_affected_count() {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE t (a INTEGER)").unwrap();
        let r = db
            .execute_str("INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        assert_eq!(r.affected, 3);
    }

    #[test]
    fn order_by_null_key_is_an_error_not_an_arbitrary_order() {
        // `compare` returns None for NULL; an earlier revision silently
        // treated incomparable keys as Equal, yielding an arbitrary,
        // stable-sort-dependent order. Fail loudly instead.
        let mut db = db_with_users();
        db.execute_str("INSERT INTO users (id, name) VALUES (4, 'dan')")
            .unwrap();
        let err = db
            .execute_str("SELECT name FROM users ORDER BY age")
            .unwrap_err();
        assert!(err.to_string().contains("NULL key"), "{err}");
        // Rows with NULL keys that the WHERE clause excludes don't error.
        let r = db
            .execute_str("SELECT name FROM users WHERE age > 0 ORDER BY age")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn primary_key_auto_creates_ordered_index() {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        let t = db.table("t").unwrap();
        let ix = t.indexes().next().unwrap();
        assert_eq!(ix.name(), "pk_t");
        assert_eq!(ix.kind(), crate::ast::IndexKind::Ordered);
        db.execute_str("INSERT INTO t VALUES (2, 'b'), (1, 'a')")
            .unwrap();
        assert!(db
            .explain("SELECT v FROM t WHERE id = 1")
            .unwrap()
            .contains("probe-eq"));
        let r = db.execute_str("SELECT v FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows[0][0], Value::Text("a".into()));
    }

    #[test]
    fn indexes_stay_correct_through_insert_update_delete() {
        let mut db = db_with_users();
        db.execute_str("CREATE INDEX ix_age ON users (age)")
            .unwrap();
        db.execute_str("INSERT INTO users VALUES (4, 'dan', 25)")
            .unwrap();
        let r = db
            .execute_str("SELECT name FROM users WHERE age = 25")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "insert maintained the index");
        db.execute_str("UPDATE users SET age = 31 WHERE name = 'bob'")
            .unwrap();
        let r = db
            .execute_str("SELECT name FROM users WHERE age = 25")
            .unwrap();
        assert_eq!(r.rows.len(), 1, "update moved bob out of the bucket");
        db.execute_str("DELETE FROM users WHERE age = 31").unwrap();
        let r = db
            .execute_str("SELECT name FROM users WHERE age = 25 OR age = 30 OR age = 35")
            .unwrap();
        assert_eq!(r.rows.len(), 3, "delete remapped surviving row ids");
        let r = db
            .execute_str("SELECT name FROM users ORDER BY age")
            .unwrap();
        assert_eq!(
            r.rows.iter().map(|r| &r[0]).collect::<Vec<_>>(),
            vec![
                &Value::Text("dan".into()),
                &Value::Text("alice".into()),
                &Value::Text("carol".into())
            ]
        );
    }

    #[test]
    fn probe_results_equal_scan_results() {
        let mut indexed = db_with_users();
        indexed
            .execute_str("CREATE INDEX ix_id ON users (id) USING HASH")
            .unwrap();
        indexed
            .execute_str("CREATE INDEX ix_age ON users (age)")
            .unwrap();
        let mut plain = db_with_users();
        for q in [
            "SELECT * FROM users WHERE id = 2",
            "SELECT * FROM users WHERE id IN (1, 3)",
            "SELECT * FROM users WHERE age > 26",
            "SELECT * FROM users WHERE age >= 25 AND age < 35",
            "SELECT * FROM users ORDER BY age DESC",
            "SELECT * FROM users WHERE age > 20 ORDER BY age LIMIT 2",
        ] {
            let a = indexed.execute_str(q).unwrap();
            let b = plain.execute_str(q).unwrap();
            assert_eq!(a.rows, b.rows, "{q}");
        }
    }

    #[test]
    fn index_ddl_errors() {
        let mut db = db_with_users();
        db.execute_str("CREATE INDEX i ON users (id)").unwrap();
        assert!(db.execute_str("CREATE INDEX i ON users (age)").is_err());
        db.execute_str("CREATE INDEX IF NOT EXISTS i ON users (age)")
            .unwrap();
        assert!(db.execute_str("CREATE INDEX j ON users (nope)").is_err());
        assert!(db.execute_str("CREATE INDEX j ON nope (id)").is_err());
        assert!(db.execute_str("DROP INDEX nope ON users").is_err());
        db.execute_str("DROP INDEX i ON users").unwrap();
        assert_eq!(db.table("users").unwrap().indexes().count(), 0);
    }

    #[test]
    fn reserved_table_namespace_rejected() {
        let mut db = Database::new();
        assert!(db.execute_str("CREATE TABLE __rp_x (a INTEGER)").is_err());
    }

    #[test]
    fn bind_params_evaluate_and_report_unbound() {
        let mut db = db_with_users();
        let stmt = crate::parser::parse_str("SELECT name FROM users WHERE id = ?").unwrap();
        let r = db.execute_with_params(&stmt, &[Value::Int(2)]).unwrap();
        assert_eq!(r.rows[0][0], Value::Text("bob".into()));
        let err = db.execute_with_params(&stmt, &[]).unwrap_err();
        assert!(err.to_string().contains("parameter ?1"), "{err}");
    }

    #[test]
    fn probe_with_bound_param_uses_index() {
        let mut db = db_with_users();
        db.execute_str("CREATE INDEX ix_id ON users (id) USING HASH")
            .unwrap();
        let stmt = crate::parser::parse_str("SELECT name FROM users WHERE id = ?").unwrap();
        // The planner sees the bound value, so the probe applies.
        let t = db.table("users").unwrap();
        let Statement::Select(sel) = &stmt else {
            unreachable!()
        };
        let plan = plan::explain_select(t, sel, &[Value::Int(3)]);
        assert!(plan.contains("probe-eq"), "{plan}");
        // Unbound: planner falls back to scan (eval then reports).
        let plan = plan::explain_select(t, sel, &[]);
        assert_eq!(plan, "scan(users)");
        let r = db.execute_with_params(&stmt, &[Value::Int(3)]).unwrap();
        assert_eq!(r.rows[0][0], Value::Text("carol".into()));
    }
}
