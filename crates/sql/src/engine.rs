//! The storage and execution engine.
//!
//! A straightforward in-memory engine: tables are vectors of rows, queries
//! scan. It is deliberately policy-oblivious — the RESIN integration
//! (policy columns, injection guards) lives in [`crate::rewrite`], exactly
//! as the paper layers its SQL filter over an unmodified database.
//!
//! The per-table operations (`table_insert`, `table_select`,
//! `table_update`, `table_delete`) are free functions over a single
//! [`Table`], so they serve two storage layouts: the single-threaded
//! [`Database`] here (a plain map of tables) and the lock-sharded
//! [`crate::shard::ShardedDatabase`] (one `RwLock` per table).

use std::collections::BTreeMap;

use crate::ast::{BinOp, ColumnDef, Expr, LitValue, Projection, SelectStmt, Statement};
use crate::error::{Result, SqlError};
use crate::value::{like_match, Value};

/// A table: schema plus row storage.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Row-major storage.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// The result of executing a statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Result column names (empty for non-SELECT statements).
    pub columns: Vec<String>,
    /// Result rows (empty for non-SELECT statements).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
}

/// The in-memory database.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The schema of `table`, if it exists.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => self.create_table(name, columns, *if_not_exists),
            Statement::DropTable { name } => {
                if self.tables.remove(name).is_none() {
                    return Err(SqlError::schema(format!("no such table `{name}`")));
                }
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(table, columns.as_deref(), rows),
            Statement::Select(sel) => self.select(sel),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.update(table, assignments, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => self.delete(table, where_clause.as_ref()),
        }
    }

    /// Parses and executes a query string.
    pub fn execute_str(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = crate::parser::parse_str(sql)?;
        self.execute(&stmt)
    }

    /// Installs `table` under `name` (transaction-rollback support).
    pub(crate) fn set_table(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Removes `name` entirely (transaction-rollback support).
    pub(crate) fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
    ) -> Result<QueryResult> {
        if self.tables.contains_key(name) {
            if if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::schema(format!("table `{name}` already exists")));
        }
        let table = new_table(columns)?;
        self.tables.insert(name.to_string(), table);
        Ok(QueryResult::default())
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
    ) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_insert(t, table, columns, rows)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    fn select(&mut self, sel: &SelectStmt) -> Result<QueryResult> {
        let t = self
            .tables
            .get(&sel.table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{}`", sel.table)))?;
        table_select(t, sel)
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_update(t, assignments, where_clause)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    fn delete(&mut self, table: &str, where_clause: Option<&Expr>) -> Result<QueryResult> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        let affected = table_delete(t, where_clause)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }
}

// ---- per-table operations, shared by both storage layouts ----

/// Validates `columns` and builds an empty [`Table`].
pub(crate) fn new_table(columns: &[ColumnDef]) -> Result<Table> {
    let mut seen = std::collections::BTreeSet::new();
    for c in columns {
        if !seen.insert(&c.name) {
            return Err(SqlError::schema(format!("duplicate column `{}`", c.name)));
        }
    }
    Ok(Table {
        columns: columns.to_vec(),
        rows: Vec::new(),
    })
}

/// Inserts `rows` into `t` (`name` is for error messages only), returning
/// the number of rows added. All rows are validated before any is stored.
pub(crate) fn table_insert(
    t: &mut Table,
    name: &str,
    columns: Option<&[String]>,
    rows: &[Vec<Expr>],
) -> Result<usize> {
    // Map provided positions to storage positions.
    let positions: Vec<usize> = match columns {
        None => (0..t.columns.len()).collect(),
        Some(cols) => cols
            .iter()
            .map(|c| {
                t.col_index(c)
                    .ok_or_else(|| SqlError::schema(format!("no column `{c}` in `{name}`")))
            })
            .collect::<Result<_>>()?,
    };
    let width = t.columns.len();
    let mut staged = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != positions.len() {
            return Err(SqlError::schema(format!(
                "expected {} values, got {}",
                positions.len(),
                row.len()
            )));
        }
        let mut storage = vec![Value::Null; width];
        for (expr, &pos) in row.iter().zip(&positions) {
            storage[pos] = eval_const(expr)?;
        }
        staged.push(storage);
    }
    let affected = staged.len();
    t.rows.extend(staged);
    Ok(affected)
}

/// Runs a SELECT against one table.
pub(crate) fn table_select(t: &Table, sel: &SelectStmt) -> Result<QueryResult> {
    let mut matched: Vec<&Vec<Value>> = Vec::new();
    for row in &t.rows {
        if matches_where(t, row, sel.where_clause.as_ref())? {
            matched.push(row);
        }
    }
    if let Some((col, desc)) = &sel.order_by {
        let idx = t
            .col_index(col)
            .ok_or_else(|| SqlError::schema(format!("no column `{col}`")))?;
        matched.sort_by(|a, b| {
            let ord = a[idx].compare(&b[idx]).unwrap_or(std::cmp::Ordering::Equal);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = sel.limit {
        matched.truncate(limit);
    }
    match &sel.projection {
        Projection::CountStar => Ok(QueryResult {
            columns: vec!["count".to_string()],
            rows: vec![vec![Value::Int(matched.len() as i64)]],
            affected: 0,
        }),
        Projection::Star => Ok(QueryResult {
            columns: t.columns.iter().map(|c| c.name.clone()).collect(),
            rows: matched.into_iter().cloned().collect(),
            affected: 0,
        }),
        Projection::Columns(cols) => {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| {
                    t.col_index(c)
                        .ok_or_else(|| SqlError::schema(format!("no column `{c}`")))
                })
                .collect::<Result<_>>()?;
            let rows = matched
                .into_iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect();
            Ok(QueryResult {
                columns: cols.clone(),
                rows,
                affected: 0,
            })
        }
    }
}

/// Applies an UPDATE to one table, returning the affected-row count.
pub(crate) fn table_update(
    t: &mut Table,
    assignments: &[(String, Expr)],
    where_clause: Option<&Expr>,
) -> Result<usize> {
    let idxs: Vec<(usize, Value)> = assignments
        .iter()
        .map(|(c, e)| {
            let i = t
                .col_index(c)
                .ok_or_else(|| SqlError::schema(format!("no column `{c}`")))?;
            Ok((i, eval_const(e)?))
        })
        .collect::<Result<_>>()?;
    // Evaluate the predicate against the immutable borrow first.
    let mut hits = Vec::new();
    for (ri, row) in t.rows.iter().enumerate() {
        if matches_where(t, row, where_clause)? {
            hits.push(ri);
        }
    }
    let affected = hits.len();
    for ri in hits {
        for (ci, v) in &idxs {
            t.rows[ri][*ci] = v.clone();
        }
    }
    Ok(affected)
}

/// Applies a DELETE to one table, returning the affected-row count.
pub(crate) fn table_delete(t: &mut Table, where_clause: Option<&Expr>) -> Result<usize> {
    let mut hits = Vec::new();
    for (ri, row) in t.rows.iter().enumerate() {
        if matches_where(t, row, where_clause)? {
            hits.push(ri);
        }
    }
    let affected = hits.len();
    if affected > 0 {
        let mut hit_iter = hits.into_iter().peekable();
        let mut idx = 0usize;
        t.rows.retain(|_| {
            let drop_row = hit_iter.peek() == Some(&idx);
            if drop_row {
                hit_iter.next();
            }
            idx += 1;
            !drop_row
        });
    }
    Ok(affected)
}

fn eval_const(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Lit(l) => Ok(match &l.value {
            LitValue::Int(i) => Value::Int(*i),
            LitValue::Text(s) => Value::Text(s.clone()),
            LitValue::Null => Value::Null,
        }),
        other => Err(SqlError::Type(format!(
            "expected a literal value, found {other:?}"
        ))),
    }
}

fn matches_where(t: &Table, row: &[Value], clause: Option<&Expr>) -> Result<bool> {
    match clause {
        None => Ok(true),
        Some(e) => Ok(eval_expr(t, row, e)?.truthy()),
    }
}

fn eval_expr(t: &Table, row: &[Value], expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let i = t
                .col_index(name)
                .ok_or_else(|| SqlError::schema(format!("no column `{name}`")))?;
            Ok(row[i].clone())
        }
        Expr::Lit(_) => eval_const(expr),
        Expr::Not(inner) => {
            let v = eval_expr(t, row, inner)?;
            Ok(Value::Int(if v.truthy() { 0 } else { 1 }))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(t, row, expr)?;
            Ok(Value::Int(if v.is_null() != *negated { 1 } else { 0 }))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(t, row, expr)?;
            let mut found = false;
            for item in list {
                let w = eval_expr(t, row, item)?;
                if v.compare(&w) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Int(if found != *negated { 1 } else { 0 }))
        }
        Expr::Binary { op, left, right } => {
            let l = eval_expr(t, row, left)?;
            let r = eval_expr(t, row, right)?;
            let b = match op {
                BinOp::And => l.truthy() && r.truthy(),
                BinOp::Or => l.truthy() || r.truthy(),
                BinOp::Like => match (&l, &r) {
                    (Value::Text(s), Value::Text(p)) => like_match(s, p),
                    _ => false,
                },
                cmp => {
                    let ord = l.compare(&r);
                    match (cmp, ord) {
                        (_, None) => false,
                        (BinOp::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                        (BinOp::Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                        (BinOp::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                        (BinOp::Le, Some(o)) => o != std::cmp::Ordering::Greater,
                        (BinOp::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                        (BinOp::Ge, Some(o)) => o != std::cmp::Ordering::Less,
                        _ => unreachable!("and/or/like handled above"),
                    }
                }
            };
            Ok(Value::Int(if b { 1 } else { 0 }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_users() -> Database {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE users (id INTEGER, name TEXT, age INTEGER)")
            .unwrap();
        db.execute_str(
            "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT name FROM users WHERE age > 26")
            .unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn select_star_and_order() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT * FROM users ORDER BY age DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Text("carol".into()));
        assert_eq!(r.rows[1][1], Value::Text("alice".into()));
    }

    #[test]
    fn count_star() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT COUNT(*) FROM users WHERE age < 31")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn update_rows() {
        let mut db = db_with_users();
        let r = db
            .execute_str("UPDATE users SET age = 26 WHERE name = 'bob'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = db
            .execute_str("SELECT age FROM users WHERE name = 'bob'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(26));
    }

    #[test]
    fn delete_rows() {
        let mut db = db_with_users();
        let r = db.execute_str("DELETE FROM users WHERE age >= 30").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute_str("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn insert_with_columns_fills_null() {
        let mut db = db_with_users();
        db.execute_str("INSERT INTO users (id, name) VALUES (4, 'dan')")
            .unwrap();
        let r = db
            .execute_str("SELECT age FROM users WHERE id = 4")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        let r = db
            .execute_str("SELECT name FROM users WHERE age IS NULL")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("dan".into()));
    }

    #[test]
    fn like_and_in_filters() {
        let mut db = db_with_users();
        let r = db
            .execute_str("SELECT name FROM users WHERE name LIKE '%o%'")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "bob and carol");
        let r = db
            .execute_str("SELECT name FROM users WHERE id IN (1, 3)")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = db
            .execute_str("SELECT name FROM users WHERE id NOT IN (1, 3)")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn schema_errors() {
        let mut db = db_with_users();
        assert!(db.execute_str("SELECT nope FROM users").is_err());
        assert!(db.execute_str("SELECT * FROM nope").is_err());
        assert!(db.execute_str("INSERT INTO users VALUES (1)").is_err());
        assert!(db
            .execute_str("INSERT INTO users (zzz) VALUES (1)")
            .is_err());
        assert!(db.execute_str("CREATE TABLE users (id INTEGER)").is_err());
        assert!(db.execute_str("CREATE TABLE t2 (a TEXT, a TEXT)").is_err());
        assert!(db.execute_str("DROP TABLE nope").is_err());
        assert!(db.execute_str("UPDATE users SET nope = 1").is_err());
    }

    #[test]
    fn if_not_exists_is_idempotent() {
        let mut db = db_with_users();
        assert!(db
            .execute_str("CREATE TABLE IF NOT EXISTS users (id INTEGER)")
            .is_ok());
        // Original schema retained.
        assert_eq!(db.table("users").unwrap().columns.len(), 3);
    }

    #[test]
    fn drop_table() {
        let mut db = db_with_users();
        db.execute_str("DROP TABLE users").unwrap();
        assert!(db.table("users").is_none());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn classic_injection_dumps_table_without_guard() {
        // The raw engine happily executes an injected query — protection is
        // the RESIN filter's job, not the database's.
        let mut db = db_with_users();
        let name_input = "x' OR '1'='1";
        let q = format!("SELECT name FROM users WHERE name = '{name_input}");
        // The trailing quote from the template closes the injected literal.
        let q = format!("{q}'");
        let r = db.execute_str(&q).unwrap();
        assert_eq!(r.rows.len(), 3, "injection dumps every row");
    }

    #[test]
    fn multi_insert_affected_count() {
        let mut db = Database::new();
        db.execute_str("CREATE TABLE t (a INTEGER)").unwrap();
        let r = db
            .execute_str("INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        assert_eq!(r.affected, 3);
    }
}
