//! The RESIN SQL filter: policy persistence and injection guards.
//!
//! RESIN attaches a default filter object to the function used to issue SQL
//! queries and uses it to *rewrite queries and results* (§3.4.1, Figure 4):
//!
//! * `CREATE TABLE` gains a shadow **policy column** per data column;
//! * writes store each cell's serialized policy into its policy column;
//! * reads fetch the policy columns and re-attach deserialized policy
//!   objects to the corresponding data cells.
//!
//! The same filter is where the SQL-injection data flow assertion lives
//! (§5.3). Both strategies from the paper are implemented, plus the
//! tolerant-tokenizer auto-sanitizing variation:
//!
//! * [`GuardMode::MarkerCheck`] — strategy 1: any byte with
//!   `UntrustedData` but not `SqlSanitized` rejects the query;
//! * [`GuardMode::StructureCheck`] — strategy 2: any *structure* token
//!   (keyword, identifier, operator, punctuation) carrying `UntrustedData`
//!   rejects the query;
//! * [`GuardMode::AutoSanitize`] — the variation: untrusted quotes cannot
//!   terminate literals, and the query is re-emitted safely escaped.

use std::borrow::Cow;
use std::ops::Range;

use resin_core::{
    deserialize_label, deserialize_spans, serialize_label, serialize_spans, Context, Filter,
    FlowError, Gate, GateKind, Label, PolicyViolation, Runtime, SqlSanitized, Tainted,
    TaintedStrBuilder, TaintedString, UntrustedData,
};

use crate::ast::{ColumnDef, ColumnType, Expr, LitValue, Literal, Projection, Statement};
use crate::engine::{Database, QueryResult, Table};
use crate::error::{Result, SqlError};
use crate::token::{lex, lex_tainted, sanitize_query, Tok, Token};
use crate::value::Value;

/// Prefix of shadow policy columns.
pub const POLICY_COL_PREFIX: &str = "__rp_";

/// Whether query/result rewriting for persistent policies is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tracking {
    /// Unmodified runtime: queries pass through untouched, taint is lost.
    Off,
    /// RESIN runtime: policy columns maintained transparently.
    #[default]
    On,
}

/// Which SQL-injection assertion guards the query channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// No injection checking.
    #[default]
    Off,
    /// Strategy 1 (§5.3): untrusted bytes must carry `SqlSanitized`.
    MarkerCheck,
    /// Strategy 2 (§5.3): query structure must be untainted.
    StructureCheck,
    /// Strategy-2 variation: tolerant tokenizer + automatic sanitization.
    AutoSanitize,
}

/// A result cell with policies re-attached.
#[derive(Debug, Clone)]
pub enum TCell {
    /// SQL NULL.
    Null,
    /// Integer with a (whole-datum) policy set.
    Int(Tainted<i64>),
    /// Text with byte-range policies.
    Text(TaintedString),
}

impl TCell {
    /// The cell as tainted text, if it is text.
    pub fn as_text(&self) -> Option<&TaintedString> {
        match self {
            TCell::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The cell as a tainted integer, if it is one.
    pub fn as_int(&self) -> Option<&Tainted<i64>> {
        match self {
            TCell::Int(i) => Some(i),
            _ => None,
        }
    }

    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, TCell::Null)
    }

    /// Renders the cell as a tainted string (NULL → empty, int → digits with
    /// the int's policies applied to every digit).
    pub fn to_tainted_string(&self) -> TaintedString {
        match self {
            TCell::Null => TaintedString::new(),
            TCell::Int(i) => {
                let mut s = TaintedString::from(i.value().to_string());
                s.add_label(i.label());
                s
            }
            TCell::Text(t) => t.clone(),
        }
    }
}

/// A query result with policies re-attached to each cell.
#[derive(Debug, Clone, Default)]
pub struct TaintedResult {
    /// Data column names (policy columns are hidden).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<TCell>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
}

impl TaintedResult {
    /// The cell at `(row, column-name)`, if present.
    pub fn cell(&self, row: usize, col: &str) -> Option<&TCell> {
        let i = self.columns.iter().position(|c| c == col)?;
        self.rows.get(row)?.get(i)
    }
}

/// The SQL-injection data flow assertion as a gate filter (§5.3).
///
/// [`ResinDb`] mounts one of these onto the [`Runtime`] registry's sql
/// gate and exports every query through it, so the injection guard runs at
/// the same interposition point as every other boundary check. Standalone
/// use works too: mount it on any gate whose writes are SQL text.
///
/// Error mapping: violations surface as [`FlowError::Denied`]; a query the
/// guard's tokenizer cannot lex surfaces as [`FlowError::Rejected`] with
/// the lex message (the structured `SqlError::Lex` position is only
/// available from the engine's own parse step).
#[derive(Debug, Clone, Copy)]
pub struct SqlGuardFilter {
    mode: GuardMode,
}

impl SqlGuardFilter {
    /// A guard filter enforcing `mode`.
    pub fn new(mode: GuardMode) -> Self {
        SqlGuardFilter { mode }
    }

    /// The enforced guard mode.
    pub fn mode(&self) -> GuardMode {
        self.mode
    }
}

impl Filter for SqlGuardFilter {
    fn filter_write(
        &self,
        data: TaintedString,
        offset: u64,
        context: &Context,
    ) -> Result<TaintedString, FlowError> {
        self.filter_write_cow(Cow::Owned(data), offset, context)
            .map(Cow::into_owned)
    }

    // Only `AutoSanitize` rewrites the query; the checking modes forward
    // borrowed data untouched, so a `write_ref`/`export_cow` through the
    // sql gate stays copy-free.
    fn filter_write_cow<'a>(
        &self,
        data: Cow<'a, TaintedString>,
        _offset: u64,
        _context: &Context,
    ) -> Result<Cow<'a, TaintedString>, FlowError> {
        guard_query_cow(self.mode, data).map_err(|e| match e {
            SqlError::Policy(flow) => flow,
            other => FlowError::Rejected(other.to_string()),
        })
    }
}

/// Applies an injection-guard `mode` to one query, rewriting it only when
/// the mode calls for it.
fn guard_query_cow<'a>(
    mode: GuardMode,
    sql: Cow<'a, TaintedString>,
) -> Result<Cow<'a, TaintedString>> {
    match mode {
        GuardMode::Off => Ok(sql),
        GuardMode::MarkerCheck => {
            let bad = sql.ranges_where(|l| l.has::<UntrustedData>() && !l.has::<SqlSanitized>());
            if let Some(r) = bad.first() {
                let snippet = sql.slice(r.clone());
                return Err(PolicyViolation::new(
                    "SqlGuard",
                    format!(
                        "unsanitized untrusted data in SQL query at bytes {}..{}: `{}`",
                        r.start,
                        r.end,
                        snippet.as_str()
                    ),
                )
                .into());
            }
            Ok(sql)
        }
        GuardMode::StructureCheck => {
            let tokens = lex_tainted(&sql, false)?;
            check_structure_untainted(&sql, &tokens)?;
            Ok(sql)
        }
        GuardMode::AutoSanitize => {
            let tokens = lex_tainted(&sql, true)?;
            check_structure_untainted(&sql, &tokens)?;
            Ok(Cow::Owned(sanitize_query(&sql, &tokens)))
        }
    }
}

/// What the RESIN rewriting layer needs from a storage engine.
///
/// Implemented by the single-threaded [`Database`] (exclusive `&mut`
/// access) and by `&`[`crate::shard::ShardedDatabase`] (interior
/// table-level locking), so the exact same rewriting + guard pipeline
/// serves [`ResinDb`] and [`crate::shard::SharedDb`].
pub(crate) trait QueryBackend {
    /// Executes one parsed statement; `params[i]` is the raw value of the
    /// `i`-th `?` placeholder.
    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<QueryResult>;

    /// All column names of `table` (including policy columns), or a schema
    /// error when the table does not exist.
    fn columns_of(&self, table: &str) -> Result<Vec<String>>;
}

impl QueryBackend for Database {
    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<QueryResult> {
        Database::execute_with_params(self, stmt, params)
    }

    fn columns_of(&self, table: &str) -> Result<Vec<String>> {
        let t = self
            .table(table)
            .ok_or_else(|| SqlError::schema(format!("no such table `{table}`")))?;
        Ok(t.columns.iter().map(|c| c.name.clone()).collect())
    }
}

/// The registry's sql gate with `guard` mounted on the filter chain.
pub(crate) fn query_gate(guard: GuardMode) -> Gate {
    let mut gate = Runtime::global().open(GateKind::Sql);
    gate.add_filter(Box::new(SqlGuardFilter::new(guard)));
    gate
}

/// The guard + parse front half of the query pipeline: the query crosses
/// the SQL gate (borrowed export — only cloned if a guard rewrites it)
/// and comes back parsed. Transactions call this directly so they can
/// read the statement's write set *after* any guard rewriting.
pub(crate) fn prepare_query<'a>(
    sql: &'a TaintedString,
    guard: GuardMode,
) -> Result<(Cow<'a, TaintedString>, Statement)> {
    let gate = query_gate(guard);
    let sql = gate
        .export_cow(Cow::Borrowed(sql))
        .map_err(SqlError::from)?;
    let tokens = lex(sql.as_str())?;
    let stmt = crate::parser::parse(&tokens)?;
    Ok((sql, stmt))
}

/// The rewrite + execute back half of the pipeline, on an already
/// guarded-and-parsed statement. `params` carries the bind-parameter
/// values (empty for plain text queries): raw values flow to the engine,
/// labels flow into the policy-column blobs.
pub(crate) fn run_prepared<B: QueryBackend>(
    backend: &mut B,
    sql: &TaintedString,
    stmt: Statement,
    tracking: Tracking,
    params: &[BindValue],
) -> Result<TaintedResult> {
    let raw: Vec<Value> = params.iter().map(BindValue::raw).collect();
    if tracking == Tracking::Off {
        let res = backend.execute(&stmt, &raw)?;
        return Ok(plain_result(res));
    }
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
            primary_key,
        } => create_rewritten(backend, &name, columns, if_not_exists, primary_key),
        Statement::Insert {
            table,
            columns,
            rows,
        } => insert_rewritten(backend, sql, &table, columns, rows, params, &raw),
        Statement::Select(sel) => select_rewritten(backend, sel, &raw),
        Statement::Update {
            table,
            assignments,
            where_clause,
        } => update_rewritten(
            backend,
            sql,
            &table,
            assignments,
            where_clause,
            params,
            &raw,
        ),
        Statement::CreateIndex { ref column, .. } if column.starts_with(POLICY_COL_PREFIX) => Err(
            SqlError::schema(format!("cannot index policy column `{column}` directly")),
        ),
        other @ (Statement::Delete { .. }
        | Statement::DropTable { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropIndex { .. }) => {
            // DELETE/DROP need no rewriting — the paper notes DELETE's
            // low overhead for exactly this reason (§7.2). Index DDL keys
            // on raw cell values only (labels stay with the stored cells),
            // so it passes through unchanged too.
            let res = backend.execute(&other, &raw)?;
            Ok(plain_result(res))
        }
    }
}

/// A value bound to a `?` placeholder of a [`Prepared`] statement.
///
/// Bind values enter the pipeline **as data**: they are never spliced
/// into query text, so nothing an attacker puts in one can reach the
/// query's structure — the bind-parameter API is injection-proof by
/// construction rather than by checking. Labels ride along: a tainted
/// bind value stores its policies into the row's policy columns exactly
/// as a tainted literal would.
#[derive(Debug, Clone)]
pub enum BindValue {
    /// SQL NULL.
    Null,
    /// An integer with a (whole-datum) policy set.
    Int(Tainted<i64>),
    /// Text with byte-range policies.
    Text(TaintedString),
}

impl BindValue {
    /// The raw engine value (labels stripped — they travel separately
    /// into the policy columns).
    pub(crate) fn raw(&self) -> Value {
        match self {
            BindValue::Null => Value::Null,
            BindValue::Int(i) => Value::Int(*i.value()),
            BindValue::Text(t) => Value::Text(t.as_str().to_string()),
        }
    }
}

impl From<i64> for BindValue {
    fn from(v: i64) -> Self {
        BindValue::Int(Tainted::new(v))
    }
}

impl From<Tainted<i64>> for BindValue {
    fn from(v: Tainted<i64>) -> Self {
        BindValue::Int(v)
    }
}

impl From<&str> for BindValue {
    fn from(v: &str) -> Self {
        BindValue::Text(TaintedString::from(v))
    }
}

impl From<String> for BindValue {
    fn from(v: String) -> Self {
        BindValue::Text(TaintedString::from(v))
    }
}

impl From<TaintedString> for BindValue {
    fn from(v: TaintedString) -> Self {
        BindValue::Text(v)
    }
}

impl From<&TaintedString> for BindValue {
    fn from(v: &TaintedString) -> Self {
        BindValue::Text(v.clone())
    }
}

/// A guarded, parsed, ready-to-bind statement.
///
/// Produced by [`ResinDb::prepare`] /
/// [`SharedDb::prepare`](crate::shard::SharedDb::prepare). The expensive
/// per-query work — the injection-guard gate crossing, lexing, parsing,
/// and the write-target extraction that drives WAL logging — happens
/// once here; each execution only binds values and plans against current
/// index metadata. The template text is authored by the application (a
/// plain `&str`, not tainted input), so the guard sees placeholder
/// structure only; values bound later never touch the text.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Post-guard query text.
    text: TaintedString,
    /// The parsed statement (placeholders appear as [`Expr::Param`]).
    stmt: Statement,
    /// Byte spans of the `?` placeholders, in ordinal order.
    param_spans: Vec<Range<usize>>,
    /// Cached write target (WAL/transaction decision).
    write_target: Option<String>,
}

impl Prepared {
    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// The (post-guard) template text.
    pub fn sql(&self) -> &str {
        self.text.as_str()
    }

    /// The template text with its labels (WAL rendering, error context).
    pub(crate) fn text_tainted(&self) -> &TaintedString {
        &self.text
    }

    /// Number of `?` placeholders.
    pub fn param_count(&self) -> usize {
        self.param_spans.len()
    }

    /// The table this statement writes, if any.
    pub(crate) fn write_target(&self) -> Option<&str> {
        self.write_target.as_deref()
    }

    /// Binds one value per placeholder, in text order.
    pub fn bind(&self, values: Vec<BindValue>) -> Result<BoundStatement<'_>> {
        if values.len() != self.param_spans.len() {
            return Err(SqlError::Type(format!(
                "statement has {} parameter(s), {} value(s) bound",
                self.param_spans.len(),
                values.len()
            )));
        }
        Ok(BoundStatement {
            prepared: self,
            values,
        })
    }
}

/// A [`Prepared`] statement plus its bound parameter values, ready to run.
#[derive(Debug)]
pub struct BoundStatement<'a> {
    pub(crate) prepared: &'a Prepared,
    pub(crate) values: Vec<BindValue>,
}

/// Guards, lexes, and parses a template into a [`Prepared`] statement.
pub(crate) fn prepare_statement(sql: &str, guard: GuardMode) -> Result<Prepared> {
    let gate = query_gate(guard);
    let text = gate
        .export_cow(Cow::Owned(TaintedString::from(sql)))
        .map_err(SqlError::from)?
        .into_owned();
    let tokens = lex(text.as_str())?;
    let stmt = crate::parser::parse(&tokens)?;
    let param_spans: Vec<Range<usize>> = tokens
        .iter()
        .filter(|t| matches!(t.tok, Tok::Param(_)))
        .map(|t| t.span.clone())
        .collect();
    let write_target = crate::txn::statement_write_target(&stmt).map(str::to_string);
    Ok(Prepared {
        text,
        stmt,
        param_spans,
        write_target,
    })
}

/// Renders a bound statement as standalone tainted SQL text for the WAL:
/// each `?` is replaced by its value as an escaped literal whose bytes
/// carry the value's labels. Recovery replays the rendered text through
/// the normal rewrite, reproducing byte-identical cells *and policy
/// blobs* (escaped quote pairs carry the source label on both bytes, and
/// `decode_literal` unions them back onto the collapsed byte).
pub(crate) fn render_bound_sql(prepared: &Prepared, values: &[BindValue]) -> TaintedString {
    let text = &prepared.text;
    let mut out = TaintedStrBuilder::with_capacity(text.len() + 16 * values.len());
    let mut pos = 0usize;
    for (span, v) in prepared.param_spans.iter().zip(values) {
        out.push_tainted(&text.slice(pos..span.start));
        match v {
            BindValue::Null => out.push_label("NULL", Label::EMPTY),
            BindValue::Int(i) => out.push_label(&i.value().to_string(), i.label()),
            BindValue::Text(t) => {
                out.push_char('\'');
                let bytes = t.as_str().as_bytes();
                let mut start = 0usize;
                for (i, &b) in bytes.iter().enumerate() {
                    if b == b'\'' {
                        out.push_tainted(&t.slice(start..i));
                        out.push_label("''", t.label_at(i));
                        start = i + 1;
                    }
                }
                out.push_tainted(&t.slice(start..bytes.len()));
                out.push_char('\'');
            }
        }
        pos = span.end;
    }
    out.push_tainted(&text.slice(pos..text.len()));
    out.build()
}

/// A database wrapped by the RESIN SQL filter.
///
/// By default the database is in-memory only. [`ResinDb::open`] attaches
/// a durable [`resin_store`] snapshot+WAL underneath: every mutating
/// statement is logged (post-guard, with its byte-range policies) before
/// it executes, [`checkpoint`](ResinDb::checkpoint) folds the WAL into a
/// fresh snapshot, and reopening the same directory — even after a crash
/// that tore the WAL tail mid-record — recovers every cell *and every
/// cell's policies*.
#[derive(Debug, Default)]
pub struct ResinDb {
    db: Database,
    tracking: Tracking,
    guard: GuardMode,
    store: Option<crate::durable::SqlStore>,
    torn_recovery: bool,
    torn_cross_segment: bool,
}

impl ResinDb {
    /// A RESIN-tracked database with no injection guard.
    pub fn new() -> Self {
        ResinDb::default()
    }

    /// A database with explicit tracking and guard settings.
    pub fn with_modes(tracking: Tracking, guard: GuardMode) -> Self {
        ResinDb {
            db: Database::new(),
            tracking,
            guard,
            store: None,
            torn_recovery: false,
            torn_cross_segment: false,
        }
    }

    /// Opens (creating if needed) a durable database rooted at `dir`,
    /// recovering the last checkpoint plus the WAL's surviving prefix.
    ///
    /// Tracking is on and the guard off; use
    /// [`open_with_modes`](ResinDb::open_with_modes) for other settings —
    /// a store must be reopened with the same tracking mode it was
    /// written under. Applications persisting **custom** policy classes
    /// must register them (`register_policy_class`) before opening: WAL
    /// replay revives each logged query's taint, which deserializes its
    /// policies (snapshot cells stay serialized until a SELECT revives
    /// them, exactly as in a live database).
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::open_with_modes(dir, Tracking::On, GuardMode::Off)
    }

    /// [`open`](ResinDb::open) with explicit tracking and guard settings.
    pub fn open_with_modes(
        dir: impl AsRef<std::path::Path>,
        tracking: Tracking,
        guard: GuardMode,
    ) -> Result<Self> {
        let (store, recovered) = crate::durable::SqlStore::open(dir)?;
        let mut db = ResinDb {
            db: Database::new(),
            tracking,
            guard,
            store: None, // replay must not re-log
            torn_recovery: recovered.torn_tail,
            torn_cross_segment: recovered.torn_cross_segment,
        };
        for (name, table) in recovered.tables {
            db.db.set_table(&name, table);
        }
        for sql in &recovered.replay {
            // The logged text is post-guard, so replay skips the gate and
            // re-runs the same rewrite. A statement that errors here
            // failed identically before the crash — skip it.
            let _ = db.replay_stmt(sql);
        }
        db.store = Some(store);
        Ok(db)
    }

    /// True when this open discarded a torn WAL tail: the store is
    /// consistent, but acknowledged-but-unsynced work from the crashed
    /// process may have been lost — worth logging or alerting on.
    pub fn recovered_from_torn_wal(&self) -> bool {
        self.torn_recovery
    }

    /// True when the torn tail spanned a segment boundary, so recovery
    /// dropped one or more whole later segments — a wider loss window
    /// than one in-flight append.
    pub fn recovered_torn_cross_segment(&self) -> bool {
        self.torn_cross_segment
    }

    /// Live storage counters (segments, WAL bytes, checkpoint cost) of
    /// the underlying store, or `None` when not durable.
    pub fn store_stats(&self) -> Option<resin_store::StoreStats> {
        self.store.as_ref().map(crate::durable::SqlStore::stats)
    }

    /// Marks tables as written since the last checkpoint (transactions
    /// call this at commit, when their buffered WAL record lands).
    pub(crate) fn mark_tables_dirty<'a>(&self, names: impl IntoIterator<Item = &'a str>) {
        if let Some(store) = self.store.as_ref() {
            for name in names {
                store.mark_dirty(name);
            }
        }
    }

    fn replay_stmt(&mut self, sql: &TaintedString) -> Result<()> {
        let tokens = lex(sql.as_str())?;
        let stmt = crate::parser::parse(&tokens)?;
        run_prepared(&mut self.db, sql, stmt, self.tracking, &[])?;
        Ok(())
    }

    /// True when a durable store backs this database.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Folds the WAL into a fresh snapshot (no-op without a store).
    pub fn checkpoint(&mut self) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            let db = &self.db;
            store.checkpoint(
                db.table_names()
                    .into_iter()
                    .map(|n| (n, db.table(n).expect("listed table exists"))),
            )?;
        }
        Ok(())
    }

    /// Checkpoints and releases the store. Skipping `close` loses nothing
    /// — reopening replays the WAL — it just makes the next open fold the
    /// log instead of loading one snapshot.
    pub fn close(mut self) -> Result<()> {
        self.checkpoint()
    }

    /// Whether WAL appends fsync before returning (default `true`;
    /// benches and tests may trade tail durability for throughput).
    pub fn set_wal_sync(&mut self, sync: bool) {
        if let Some(store) = self.store.as_mut() {
            store.set_sync(sync);
        }
    }

    /// Appends one post-guard statement to the WAL.
    pub(crate) fn wal_log(&mut self, sql: &TaintedString) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.log(sql)?;
        }
        Ok(())
    }

    /// Appends a transaction's buffered statements as one atomic WAL
    /// record: a crash mid-commit persists the whole transaction or none
    /// of it, never a prefix.
    pub(crate) fn wal_log_batch(&mut self, stmts: &[TaintedString]) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.log_batch(stmts)?;
        }
        Ok(())
    }

    /// Sets the injection guard.
    pub fn set_guard(&mut self, guard: GuardMode) {
        self.guard = guard;
    }

    /// The underlying engine (for tests and diagnostics).
    pub fn raw(&self) -> &Database {
        &self.db
    }

    /// Restores one table to a snapshot (transaction rollback support):
    /// `Some` puts the saved table back, `None` drops a table that did not
    /// exist when the snapshot was taken.
    pub(crate) fn restore_table(&mut self, name: &str, snapshot: Option<Table>) {
        match snapshot {
            Some(t) => self.db.set_table(name, t),
            None => {
                self.db.remove_table(name);
            }
        }
    }

    /// Executes an untainted query string.
    pub fn query_str(&mut self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    /// Executes a (possibly tainted) query through the RESIN SQL filter.
    ///
    /// On a durable database, mutating statements hit the WAL (write-ahead)
    /// between the guard and execution — the `prepare_query`/`run_prepared`
    /// seam — so what is logged is exactly what executes.
    pub fn query(&mut self, sql: &TaintedString) -> Result<TaintedResult> {
        let (sql, stmt) = prepare_query(sql, self.guard)?;
        if self.store.is_some() && crate::txn::statement_write_target(&stmt).is_some() {
            self.wal_log(&sql)?;
            self.mark_tables_dirty(crate::txn::statement_write_target(&stmt));
        }
        run_prepared(&mut self.db, &sql, stmt, self.tracking, &[])
    }

    /// Guards, lexes, and parses a statement template once; `?`
    /// placeholders become bind parameters. The returned [`Prepared`] is
    /// reusable across executions (and across databases — it holds no
    /// reference to this one).
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        prepare_statement(sql, self.guard)
    }

    /// Executes a prepared statement with bound values
    /// ([`Prepared::bind`]). Bound values reach the engine as data —
    /// never as query text — so this path is injection-proof by
    /// construction. On a durable database a mutating statement is
    /// WAL-logged as rendered SQL (values spliced back as escaped,
    /// label-carrying literals) so recovery replays it byte- and
    /// policy-identically.
    pub fn run(&mut self, bound: &BoundStatement<'_>) -> Result<TaintedResult> {
        let p = bound.prepared;
        if self.store.is_some() && p.write_target().is_some() {
            let rendered = render_bound_sql(p, &bound.values);
            self.wal_log(&rendered)?;
            self.mark_tables_dirty(p.write_target());
        }
        run_prepared(
            &mut self.db,
            &p.text,
            p.stmt.clone(),
            self.tracking,
            &bound.values,
        )
    }

    /// [`prepare`](ResinDb::prepare)-bind-[`run`](ResinDb::run) in one
    /// call, for one-shot parameterized statements.
    pub fn exec_prepared(
        &mut self,
        prepared: &Prepared,
        values: Vec<BindValue>,
    ) -> Result<TaintedResult> {
        let bound = prepared.bind(values)?;
        self.run(&bound)
    }

    /// The current guard mode (transactions prepare with it).
    pub(crate) fn guard_mode(&self) -> GuardMode {
        self.guard
    }

    /// Runs the back half of the pipeline on a prepared statement
    /// (transaction support — the caller already guarded and parsed).
    pub(crate) fn run_prepared(
        &mut self,
        sql: &TaintedString,
        stmt: Statement,
    ) -> Result<TaintedResult> {
        run_prepared(&mut self.db, sql, stmt, self.tracking, &[])
    }
}

// ---- rewriting ----

fn user_columns<B: QueryBackend>(backend: &B, table: &str) -> Result<Vec<String>> {
    Ok(backend
        .columns_of(table)?
        .into_iter()
        .filter(|n| !n.starts_with(POLICY_COL_PREFIX))
        .collect())
}

fn create_rewritten<B: QueryBackend>(
    backend: &mut B,
    name: &str,
    mut columns: Vec<ColumnDef>,
    if_not_exists: bool,
    primary_key: Option<String>,
) -> Result<TaintedResult> {
    for c in &columns {
        if c.name.starts_with(POLICY_COL_PREFIX) {
            return Err(SqlError::schema(format!(
                "column name `{}` collides with the policy column prefix",
                c.name
            )));
        }
    }
    let shadows: Vec<ColumnDef> = columns
        .iter()
        .map(|c| ColumnDef {
            name: format!("{POLICY_COL_PREFIX}{}", c.name),
            ty: ColumnType::Text,
        })
        .collect();
    columns.extend(shadows);
    let res = backend.execute(
        &Statement::CreateTable {
            name: name.to_string(),
            columns,
            if_not_exists,
            primary_key,
        },
        &[],
    )?;
    Ok(plain_result(res))
}

fn insert_rewritten<B: QueryBackend>(
    backend: &mut B,
    sql: &TaintedString,
    table: &str,
    columns: Option<Vec<String>>,
    rows: Vec<Vec<Expr>>,
    params: &[BindValue],
    raw: &[Value],
) -> Result<TaintedResult> {
    let cols = match columns {
        Some(c) => c,
        None => user_columns(backend, table)?,
    };
    let mut new_cols = cols.clone();
    new_cols.extend(cols.iter().map(|c| format!("{POLICY_COL_PREFIX}{c}")));
    let mut new_rows = Vec::with_capacity(rows.len());
    for row in rows {
        let mut shadows = Vec::with_capacity(row.len());
        for expr in &row {
            shadows.push(Expr::Lit(Literal {
                value: LitValue::Text(policy_blob_for(sql, expr, params)),
                span: 0..0,
            }));
        }
        let mut new_row = row;
        new_row.extend(shadows);
        new_rows.push(new_row);
    }
    let res = backend.execute(
        &Statement::Insert {
            table: table.to_string(),
            columns: Some(new_cols),
            rows: new_rows,
        },
        raw,
    )?;
    Ok(plain_result(res))
}

fn update_rewritten<B: QueryBackend>(
    backend: &mut B,
    sql: &TaintedString,
    table: &str,
    assignments: Vec<(String, Expr)>,
    where_clause: Option<Expr>,
    params: &[BindValue],
    raw: &[Value],
) -> Result<TaintedResult> {
    let mut new_assignments = Vec::with_capacity(assignments.len() * 2);
    for (col, expr) in assignments {
        let blob = policy_blob_for(sql, &expr, params);
        new_assignments.push((
            format!("{POLICY_COL_PREFIX}{col}"),
            Expr::Lit(Literal {
                value: LitValue::Text(blob),
                span: 0..0,
            }),
        ));
        new_assignments.push((col, expr));
    }
    let res = backend.execute(
        &Statement::Update {
            table: table.to_string(),
            assignments: new_assignments,
            where_clause,
        },
        raw,
    )?;
    Ok(plain_result(res))
}

fn select_rewritten<B: QueryBackend>(
    backend: &mut B,
    sel: crate::ast::SelectStmt,
    raw: &[Value],
) -> Result<TaintedResult> {
    let data_cols: Vec<String> = match &sel.projection {
        Projection::CountStar => {
            let res = backend.execute(&Statement::Select(sel), raw)?;
            return Ok(plain_result(res));
        }
        Projection::Star => user_columns(backend, &sel.table)?,
        Projection::Columns(cols) => {
            for c in cols {
                if c.starts_with(POLICY_COL_PREFIX) {
                    return Err(SqlError::schema(format!(
                        "cannot select policy column `{c}` directly"
                    )));
                }
            }
            cols.clone()
        }
    };
    let mut fetch = data_cols.clone();
    fetch.extend(data_cols.iter().map(|c| format!("{POLICY_COL_PREFIX}{c}")));
    let rewritten = crate::ast::SelectStmt {
        projection: Projection::Columns(fetch),
        ..sel
    };
    let res = backend.execute(&Statement::Select(rewritten), raw)?;
    // Re-attach policies: columns [0..n) are data, [n..2n) policies.
    let n = data_cols.len();
    let mut rows = Vec::with_capacity(res.rows.len());
    for row in res.rows {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(revive_cell(&row[i], &row[n + i])?);
        }
        rows.push(out);
    }
    Ok(TaintedResult {
        columns: data_cols,
        rows,
        affected: 0,
    })
}

fn check_structure_untainted(sql: &TaintedString, tokens: &[Token]) -> Result<()> {
    for t in tokens {
        if !t.is_structure() {
            continue;
        }
        let tainted = span_has_untrusted(sql, &t.span);
        if tainted {
            let snippet = sql.slice(t.span.clone());
            return Err(PolicyViolation::new(
                "SqlGuard",
                format!(
                    "untrusted data in SQL query structure at bytes {}..{}: `{}`",
                    t.span.start,
                    t.span.end,
                    snippet.as_str()
                ),
            )
            .into());
        }
    }
    Ok(())
}

fn span_has_untrusted(sql: &TaintedString, span: &Range<usize>) -> bool {
    sql.slice(span.clone()).has_policy::<UntrustedData>()
}

/// Decodes a string literal's interior from the tainted query, carrying
/// byte policies through `''` escape pairs: the collapsed quote gets the
/// **union of both escape bytes' labels**, so an attacker-controlled quote
/// that survives sanitization re-enters storage tainted. (An earlier
/// revision used an untainted replacement here, leaving a 1-byte blind
/// spot per escape pair that a stored-injection payload could hide in.)
fn decode_literal(sql: &TaintedString, span: &Range<usize>) -> TaintedString {
    let interior = sql.slice(span.start + 1..span.end.saturating_sub(1));
    if !interior.contains("''") {
        return interior;
    }
    let bytes = interior.as_str().as_bytes();
    let mut out = TaintedStrBuilder::with_capacity(bytes.len());
    let (mut i, mut start) = (0usize, 0usize);
    while i < bytes.len() {
        if bytes[i] == b'\'' && bytes.get(i + 1) == Some(&b'\'') {
            out.push_tainted(&interior.slice(start..i));
            out.push_label("'", interior.label_at(i).union(interior.label_at(i + 1)));
            i += 2;
            start = i;
        } else {
            i += 1;
        }
    }
    out.push_tainted(&interior.slice(start..bytes.len()));
    out.build()
}

/// The serialized policy blob for one inserted/assigned value. Literals
/// carry their labels in the query text's byte ranges; bind parameters
/// carry them on the [`BindValue`] itself.
fn policy_blob_for(sql: &TaintedString, expr: &Expr, params: &[BindValue]) -> String {
    if let Expr::Param(i) = expr {
        return match params.get(*i) {
            Some(BindValue::Text(t)) => {
                if t.is_untainted() {
                    String::new()
                } else {
                    serialize_spans(t)
                }
            }
            Some(BindValue::Int(v)) => {
                if v.label().is_empty() {
                    String::new()
                } else {
                    serialize_label(v.label())
                }
            }
            Some(BindValue::Null) | None => String::new(),
        };
    }
    let Some(lit) = expr.as_literal() else {
        return String::new();
    };
    match &lit.value {
        LitValue::Text(_) => {
            let decoded = decode_literal(sql, &lit.span);
            if decoded.is_untainted() {
                String::new()
            } else {
                serialize_spans(&decoded)
            }
        }
        LitValue::Int(_) => {
            let label = sql.slice(lit.span.clone()).label();
            if label.is_empty() {
                String::new()
            } else {
                serialize_label(label)
            }
        }
        LitValue::Null => String::new(),
    }
}

fn revive_cell(data: &Value, policy: &Value) -> Result<TCell> {
    let blob = policy.as_text().unwrap_or("");
    Ok(match data {
        Value::Null => TCell::Null,
        Value::Int(i) => {
            let label = if blob.is_empty() {
                Label::EMPTY
            } else {
                deserialize_label(blob)?
            };
            TCell::Int(Tainted::with_label(*i, label))
        }
        Value::Text(s) => {
            if blob.is_empty() {
                TCell::Text(TaintedString::from(s.as_str()))
            } else {
                TCell::Text(deserialize_spans(s, blob)?)
            }
        }
    })
}

fn plain_result(res: QueryResult) -> TaintedResult {
    TaintedResult {
        columns: res.columns,
        rows: res
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|v| match v {
                        Value::Null => TCell::Null,
                        Value::Int(i) => TCell::Int(Tainted::new(i)),
                        Value::Text(s) => TCell::Text(TaintedString::from(s)),
                    })
                    .collect()
            })
            .collect(),
        affected: res.affected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::PasswordPolicy;
    use std::sync::Arc;

    fn untrusted(s: &str) -> TaintedString {
        TaintedString::with_policy(s, Arc::new(UntrustedData::new()))
    }

    fn setup() -> ResinDb {
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE users (name TEXT, pw TEXT)")
            .unwrap();
        db
    }

    #[test]
    fn policy_columns_created() {
        let db = setup();
        let t = db.raw().table("users").unwrap();
        let names: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["name", "pw", "__rp_name", "__rp_pw"]);
    }

    #[test]
    fn figure4_password_roundtrip() {
        // Figure 4: a password with a policy is INSERTed; the policy is
        // serialized into the policy column; SELECT revives it.
        let mut db = setup();
        let mut q = TaintedString::from("INSERT INTO users VALUES ('u', '");
        let mut pw = TaintedString::from("s3cret");
        pw.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
        q.push_tainted(&pw);
        q.push_str("')");
        db.query(&q).unwrap();

        // The engine's policy column holds the serialized policy.
        let t = db.raw().table("users").unwrap();
        let blob = t.rows[0][3].as_text().unwrap();
        assert!(blob.contains("PasswordPolicy"), "{blob}");
        assert!(t.rows[0][2].as_text().unwrap().is_empty(), "name untainted");

        // SELECT revives the policy on the data cell.
        let r = db.query_str("SELECT name, pw FROM users").unwrap();
        let cell = r.cell(0, "pw").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "s3cret");
        assert!(cell.has_policy::<PasswordPolicy>());
        let name = r.cell(0, "name").unwrap().as_text().unwrap();
        assert!(name.is_untainted());
    }

    #[test]
    fn select_star_hides_policy_columns() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('a', 'b')").unwrap();
        let r = db.query_str("SELECT * FROM users").unwrap();
        assert_eq!(r.columns, vec!["name", "pw"]);
        assert_eq!(r.rows[0].len(), 2);
    }

    #[test]
    fn select_policy_column_rejected() {
        let mut db = setup();
        assert!(db.query_str("SELECT __rp_pw FROM users").is_err());
        assert!(db.query_str("CREATE TABLE bad (__rp_x TEXT)").is_err());
    }

    #[test]
    fn update_rewrites_policy() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('u', 'old')")
            .unwrap();
        let mut q = TaintedString::from("UPDATE users SET pw = '");
        q.push_tainted(&TaintedString::with_policy(
            "new",
            Arc::new(PasswordPolicy::new("u@x")),
        ));
        q.push_str("' WHERE name = 'u'");
        let r = db.query(&q).unwrap();
        assert_eq!(r.affected, 1);
        let r = db.query_str("SELECT pw FROM users").unwrap();
        let cell = r.cell(0, "pw").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "new");
        assert!(cell.has_policy::<PasswordPolicy>());
    }

    #[test]
    fn delete_needs_no_rewrite() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('a', 'b')").unwrap();
        let r = db.query_str("DELETE FROM users WHERE name = 'a'").unwrap();
        assert_eq!(r.affected, 1);
    }

    #[test]
    fn int_cells_carry_policy_sets() {
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE t (n INTEGER)").unwrap();
        let mut q = TaintedString::from("INSERT INTO t VALUES (");
        q.push_tainted(&untrusted("42"));
        q.push_str(")");
        db.query(&q).unwrap();
        let r = db.query_str("SELECT n FROM t").unwrap();
        let cell = r.cell(0, "n").unwrap().as_int().unwrap();
        assert_eq!(cell.value(), &42);
        assert!(cell.has_policy::<UntrustedData>());
        let rendered = r.cell(0, "n").unwrap().to_tainted_string();
        assert_eq!(rendered.as_str(), "42");
        assert!(rendered.all_bytes_have::<UntrustedData>());
    }

    #[test]
    fn tracking_off_loses_taint() {
        let mut db = ResinDb::with_modes(Tracking::Off, GuardMode::Off);
        db.query_str("CREATE TABLE t (a TEXT)").unwrap();
        let mut q = TaintedString::from("INSERT INTO t VALUES ('");
        q.push_tainted(&untrusted("x"));
        q.push_str("')");
        db.query(&q).unwrap();
        // No policy columns exist at all.
        assert_eq!(db.raw().table("t").unwrap().columns.len(), 1);
        let r = db.query_str("SELECT a FROM t").unwrap();
        assert!(r.cell(0, "a").unwrap().as_text().unwrap().is_untainted());
    }

    // ---- injection guards ----

    fn build_login_query(name: &TaintedString) -> TaintedString {
        let mut q = TaintedString::from("SELECT pw FROM users WHERE name = '");
        q.push_tainted(name);
        q.push_str("'");
        q
    }

    #[test]
    fn marker_check_blocks_unsanitized() {
        let mut db = setup();
        db.set_guard(GuardMode::MarkerCheck);
        let q = build_login_query(&untrusted("x' OR '1'='1"));
        let err = db.query(&q).unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn marker_check_allows_sanitized() {
        let mut db = setup();
        db.set_guard(GuardMode::MarkerCheck);
        // The sanitizer escapes and appends the SqlSanitized marker.
        let mut input = untrusted("x' OR '1'='1");
        input = input.replace_str("'", "''");
        input.add_policy(Arc::new(SqlSanitized::new()));
        let q = build_login_query(&input);
        let r = db.query(&q).unwrap();
        assert!(r.rows.is_empty(), "escaped input matches nothing");
    }

    #[test]
    fn marker_check_catches_wrong_sanitizer() {
        // §5.3: HTML-sanitized data used in SQL is still an error.
        let mut db = setup();
        db.set_guard(GuardMode::MarkerCheck);
        let mut input = untrusted("x");
        input.add_policy(Arc::new(resin_core::HtmlSanitized::new()));
        let q = build_login_query(&input);
        assert!(db.query(&q).unwrap_err().is_violation());
    }

    #[test]
    fn structure_check_blocks_injected_structure() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('u', 'pw1')")
            .unwrap();
        db.set_guard(GuardMode::StructureCheck);
        let q = build_login_query(&untrusted("x' OR '1'='1"));
        let err = db.query(&q).unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn structure_check_allows_benign_input() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('alice', 'pw1')")
            .unwrap();
        db.set_guard(GuardMode::StructureCheck);
        let q = build_login_query(&untrusted("alice"));
        let r = db.query(&q).unwrap();
        assert_eq!(
            r.rows.len(),
            1,
            "benign untrusted input inside a literal is fine"
        );
    }

    #[test]
    fn auto_sanitize_neutralizes_injection() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('u', 'pw1')")
            .unwrap();
        db.set_guard(GuardMode::AutoSanitize);
        let q = build_login_query(&untrusted("x' OR '1'='1"));
        let r = db.query(&q).unwrap();
        assert!(r.rows.is_empty(), "injection neutralized, matches nothing");
    }

    #[test]
    fn auto_sanitize_still_blocks_structural_taint() {
        // Numeric-context injection can't be quoted away: id = 1 OR 1=1.
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE t (id INTEGER)").unwrap();
        db.set_guard(GuardMode::AutoSanitize);
        let mut q = TaintedString::from("SELECT id FROM t WHERE id = ");
        q.push_tainted(&untrusted("1 OR 1=1"));
        assert!(db.query(&q).unwrap_err().is_violation());
    }

    #[test]
    fn escape_pair_collapse_keeps_taint() {
        // The former 1-byte blind spot: `''` collapsing to `'` dropped the
        // pair's policies, letting an attacker-controlled quote re-enter
        // storage untainted. The collapsed byte must carry the union of
        // both escape bytes' labels.
        let mut db = setup();
        let mut q = TaintedString::from("INSERT INTO users VALUES ('u', 'a");
        q.push_tainted(&untrusted("''"));
        q.push_str("b')");
        db.query(&q).unwrap();
        let r = db.query_str("SELECT pw FROM users").unwrap();
        let cell = r.cell(0, "pw").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "a'b");
        assert!(
            cell.label_at(1).has::<UntrustedData>(),
            "collapsed quote keeps the pair's policies"
        );
        assert!(cell.label_at(0).is_empty(), "neighbours unchanged");
        assert!(cell.label_at(2).is_empty());
    }

    #[test]
    fn auto_sanitized_quote_stays_tainted_in_storage() {
        // End to end through the AutoSanitize guard: the hostile quote is
        // escaped on the way in and collapses back to one byte in the
        // stored cell — which must still be fully untrusted, so a later
        // naive query built from it is caught by the structure check.
        let mut db = setup();
        db.set_guard(GuardMode::AutoSanitize);
        let mut q = TaintedString::from("INSERT INTO users VALUES ('u', '");
        q.push_tainted(&untrusted("x' OR '1'='1"));
        q.push_str("')");
        db.query(&q).unwrap();
        let r = db.query_str("SELECT pw FROM users").unwrap();
        let cell = r.cell(0, "pw").unwrap().as_text().unwrap().clone();
        assert_eq!(cell.as_str(), "x' OR '1'='1");
        assert!(
            cell.all_bytes_have::<UntrustedData>(),
            "every stored byte — quotes included — stays untrusted"
        );
        db.set_guard(GuardMode::StructureCheck);
        let q2 = build_login_query(&cell);
        assert!(db.query(&q2).unwrap_err().is_violation());
    }

    #[test]
    fn second_order_injection_blocked() {
        // Stored untrusted data keeps its policy via the policy column; a
        // second query built from it is still guarded (§5.3's point about
        // de-serialized policies protecting stolen passwords applies to
        // UntrustedData too).
        let mut db = setup();
        let mut q = TaintedString::from("INSERT INTO users VALUES ('");
        q.push_tainted(&untrusted("evil' OR '1'='1"));
        q.push_str("', 'pw')");
        // First write sanitizes nothing but we use no guard yet: tolerate by
        // escaping manually for storage.
        db.set_guard(GuardMode::AutoSanitize);
        db.query(&q).unwrap();
        let r = db.query_str("SELECT name FROM users").unwrap();
        let stored = r.cell(0, "name").unwrap().as_text().unwrap().clone();
        assert!(
            stored.has_policy::<UntrustedData>(),
            "taint survived storage"
        );
        // Now the app naively builds a new query from the stored value.
        db.set_guard(GuardMode::StructureCheck);
        let q2 = build_login_query(&stored);
        assert!(db.query(&q2).unwrap_err().is_violation());
    }

    #[test]
    fn guard_off_is_vulnerable() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('u', 'pw1')")
            .unwrap();
        let q = build_login_query(&untrusted("x' OR '1'='1"));
        let r = db.query(&q).unwrap();
        assert_eq!(r.rows.len(), 1, "without the assertion the row leaks");
    }

    #[test]
    fn count_star_passthrough() {
        let mut db = setup();
        db.query_str("INSERT INTO users VALUES ('a', 'b')").unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &1);
    }

    // ---- prepared statements ----

    #[test]
    fn bind_values_are_data_not_structure() {
        // The classic injection payload, bound instead of concatenated:
        // it matches (or fails to match) as an opaque string, with the
        // strictest guard on. No escaping, no checking, no violation.
        let mut db = setup();
        db.set_guard(GuardMode::StructureCheck);
        db.query_str("INSERT INTO users VALUES ('u', 'pw1')")
            .unwrap();
        let sel = db.prepare("SELECT pw FROM users WHERE name = ?").unwrap();
        let r = db
            .exec_prepared(&sel, vec![untrusted("x' OR '1'='1").into()])
            .unwrap();
        assert!(
            r.rows.is_empty(),
            "payload is just a string that matches nothing"
        );
        let r = db.exec_prepared(&sel, vec!["u".into()]).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn bound_values_carry_policies_into_storage() {
        let mut db = setup();
        let ins = db.prepare("INSERT INTO users VALUES (?, ?)").unwrap();
        let mut pw = TaintedString::from("s3cret");
        pw.add_policy(Arc::new(PasswordPolicy::new("u@foo.com")));
        db.exec_prepared(&ins, vec!["u".into(), pw.into()]).unwrap();
        let r = db.query_str("SELECT name, pw FROM users").unwrap();
        let cell = r.cell(0, "pw").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "s3cret");
        assert!(
            cell.has_policy::<PasswordPolicy>(),
            "policy rode the bind value"
        );
        assert!(r.cell(0, "name").unwrap().as_text().unwrap().is_untainted());
    }

    #[test]
    fn tainted_int_bind_value_keeps_label() {
        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE t (n INTEGER)").unwrap();
        let ins = db.prepare("INSERT INTO t VALUES (?)").unwrap();
        let mut n = Tainted::new(42i64);
        n.add_policy(Arc::new(UntrustedData::new()));
        db.exec_prepared(&ins, vec![n.into()]).unwrap();
        let r = db.query_str("SELECT n FROM t").unwrap();
        let cell = r.cell(0, "n").unwrap().as_int().unwrap();
        assert_eq!(cell.value(), &42);
        assert!(cell.has_policy::<UntrustedData>());
    }

    #[test]
    fn bind_arity_and_template_structure_checked() {
        let mut db = setup();
        db.set_guard(GuardMode::StructureCheck);
        let sel = db.prepare("SELECT pw FROM users WHERE name = ?").unwrap();
        assert_eq!(sel.param_count(), 1);
        assert!(sel.bind(vec![]).is_err(), "too few values");
        assert!(
            sel.bind(vec!["a".into(), "b".into()]).is_err(),
            "too many values"
        );
        // UPDATE with mixed placeholder/literal assignments parses too.
        let upd = db
            .prepare("UPDATE users SET pw = ? WHERE name = ?")
            .unwrap();
        assert_eq!(upd.param_count(), 2);
        db.query_str("INSERT INTO users VALUES ('u', 'old')")
            .unwrap();
        let r = db
            .exec_prepared(&upd, vec!["new".into(), "u".into()])
            .unwrap();
        assert_eq!(r.affected, 1);
    }

    #[test]
    fn render_bound_sql_escapes_and_keeps_labels() {
        let db = ResinDb::new();
        let p = db.prepare("INSERT INTO t VALUES (?, ?, ?)").unwrap();
        let hostile = untrusted("x', 'y");
        let mut n = Tainted::new(7i64);
        n.add_policy(Arc::new(UntrustedData::new()));
        let rendered = render_bound_sql(&p, &[hostile.into(), BindValue::Int(n), BindValue::Null]);
        assert_eq!(
            rendered.as_str(),
            "INSERT INTO t VALUES ('x'', ''y', 7, NULL)",
            "quotes escaped, int and NULL spliced as literals"
        );
        // Every payload byte — including both escape-quote bytes — is
        // untrusted, so replay revives identical cells and blobs.
        let payload_range =
            "INSERT INTO t VALUES ('".len().."INSERT INTO t VALUES ('x'', ''y".len();
        assert!(rendered
            .slice(payload_range)
            .all_bytes_have::<UntrustedData>());
        let seven_at = rendered.as_str().find('7').unwrap();
        assert!(rendered.label_at(seven_at).has::<UntrustedData>());
    }

    #[test]
    fn empty_policy_set_roundtrip() {
        let mut db = setup();
        db.query_str("INSERT INTO users (name) VALUES ('solo')")
            .unwrap();
        let r = db.query_str("SELECT name, pw FROM users").unwrap();
        assert!(r.cell(0, "pw").unwrap().is_null());
        assert_eq!(
            r.cell(0, "name").unwrap().as_text().unwrap().label(),
            Label::EMPTY
        );
    }
}
