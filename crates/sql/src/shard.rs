//! Concurrent storage: a table-sharded engine behind an `Arc`.
//!
//! The single-threaded [`Database`](crate::Database) serves one request at
//! a time through `&mut`. Serving the paper's workloads under real traffic
//! (§6 runs the applications inside live web servers) needs the opposite:
//! many worker threads sharing one database. [`SharedDb`] provides that:
//!
//! * storage is a [`ShardedDatabase`] — a catalog `RwLock` mapping table
//!   names to `Arc<RwLock<Table>>`, so locking is **per table**: readers
//!   of `posts` never contend with writers of `sessions`, and two readers
//!   of the same table proceed in parallel;
//! * the RESIN rewriting + injection-guard pipeline is the exact same code
//!   [`ResinDb`](crate::ResinDb) runs (policy columns, guards, the sql
//!   gate) — `SharedDb` implements the crate's internal `QueryBackend`
//!   over the sharded storage;
//! * `SharedDb` is `Clone` (an `Arc` handle): hand one to every worker.
//!
//! Transactions ([`SharedDb::begin`]) use the same lazy copy-on-write
//! snapshot strategy as [`Transaction`](crate::Transaction): a table is
//! snapshotted only on its first write inside the transaction, so touching
//! one small table never clones the whole database.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use resin_core::sync::{rlock, wlock};

use resin_core::{PolicyViolation, TaintedString};

use crate::ast::Statement;
use crate::engine::{
    new_table, table_delete, table_insert, table_select, table_update, QueryResult, Table,
};
use crate::error::{Result, SqlError};
use crate::rewrite::{
    guarded_query, prepare_query, run_prepared, GuardMode, QueryBackend, TaintedResult, Tracking,
};
use crate::txn::{statement_write_target, TxnSnapshots};

type TableShard = Arc<RwLock<Table>>;

/// The lock-sharded storage engine: one `RwLock` per table plus a catalog
/// lock for schema changes.
///
/// All methods take `&self`. Row statements hold the catalog lock in
/// shared mode (readers never block each other; per-table locks provide
/// the sharding), schema statements take it exclusively — so DDL
/// serializes cleanly against in-flight row work.
#[derive(Debug, Default)]
pub struct ShardedDatabase {
    catalog: RwLock<BTreeMap<String, TableShard>>,
}

// Both lock levels guard data that is consistent at every panic point
// (rows are staged before being extended in; catalog changes are single
// map operations), so a panicking worker must not poison the database for
// every other request — the poison-recovering accessors of
// `resin_core::sync` apply.

impl ShardedDatabase {
    /// An empty sharded database.
    pub fn new() -> Self {
        ShardedDatabase::default()
    }

    fn resolve<'a>(
        catalog: &'a BTreeMap<String, TableShard>,
        name: &str,
    ) -> Result<&'a TableShard> {
        catalog
            .get(name)
            .ok_or_else(|| SqlError::schema(format!("no such table `{name}`")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        rlock(&self.catalog).keys().cloned().collect()
    }

    /// A point-in-time copy of one table, if it exists.
    pub fn snapshot_table(&self, name: &str) -> Option<Table> {
        let catalog = rlock(&self.catalog);
        let shard = catalog.get(name)?;
        let copy = rlock(shard).clone();
        Some(copy)
    }

    /// Restores one table to a snapshot: `Some` replaces (or re-creates)
    /// the table, `None` drops it.
    pub fn restore_table(&self, name: &str, snapshot: Option<Table>) {
        match snapshot {
            Some(t) => {
                let mut catalog = wlock(&self.catalog);
                match catalog.get(name) {
                    // Swap contents in place so concurrent holders of the
                    // shard Arc observe the restored state too.
                    Some(shard) => *wlock(shard) = t,
                    None => {
                        catalog.insert(name.to_string(), Arc::new(RwLock::new(t)));
                    }
                }
            }
            None => {
                wlock(&self.catalog).remove(name);
            }
        }
    }

    /// Executes one parsed statement against the sharded storage.
    ///
    /// Row statements hold the catalog lock in *shared* mode for their
    /// whole run (sharding comes from the per-table locks), so a schema
    /// change — which takes the catalog lock exclusively — serializes
    /// against in-flight row work instead of detaching a shard mid-write:
    /// a write racing a `DROP TABLE` either lands before the drop or
    /// reports "no such table", never a silently-lost `Ok`.
    pub fn execute(&self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let mut catalog = wlock(&self.catalog);
                if catalog.contains_key(name) {
                    // Existence wins over column validation, matching the
                    // single-threaded engine: IF NOT EXISTS on an existing
                    // table is a no-op even for an invalid column list.
                    if *if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(SqlError::schema(format!("table `{name}` already exists")));
                }
                let table = new_table(columns)?;
                catalog.insert(name.clone(), Arc::new(RwLock::new(table)));
                Ok(QueryResult::default())
            }
            Statement::DropTable { name } => {
                if wlock(&self.catalog).remove(name).is_none() {
                    return Err(SqlError::schema(format!("no such table `{name}`")));
                }
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_insert(&mut t, table, columns.as_deref(), rows)?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::Select(sel) => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, &sel.table)?;
                let t = rlock(shard);
                table_select(&t, sel)
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_update(&mut t, assignments, where_clause.as_ref())?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_delete(&mut t, where_clause.as_ref())?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
        }
    }

    /// Parses and executes a query string (tests and diagnostics).
    pub fn execute_str(&self, sql: &str) -> Result<QueryResult> {
        let stmt = crate::parser::parse_str(sql)?;
        self.execute(&stmt)
    }
}

// The rewriting layer drives storage through `&mut B`; a shared reference
// to the sharded engine is itself the backend (interior locking), so the
// same pipeline works without exclusive access to the database.
impl QueryBackend for &ShardedDatabase {
    fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        ShardedDatabase::execute(self, stmt)
    }

    fn columns_of(&self, table: &str) -> Result<Vec<String>> {
        let catalog = rlock(&self.catalog);
        let shard = ShardedDatabase::resolve(&catalog, table)?;
        let t = rlock(shard);
        Ok(t.columns.iter().map(|c| c.name.clone()).collect())
    }
}

/// An `Arc`-shareable RESIN database: clone a handle per worker thread.
///
/// Each handle carries its own [`Tracking`]/[`GuardMode`] settings (so a
/// trusted maintenance path can run unguarded while request handlers keep
/// the injection guard), while all handles share the same sharded storage.
///
/// # Examples
///
/// ```
/// use resin_sql::{GuardMode, SharedDb};
///
/// let db = SharedDb::new();
/// db.query_str("CREATE TABLE posts (id INTEGER, body TEXT)").unwrap();
///
/// let handle = db.clone();
/// let t = std::thread::spawn(move || {
///     handle.query_str("INSERT INTO posts VALUES (1, 'hello')").unwrap();
/// });
/// t.join().unwrap();
/// let r = db.query_str("SELECT body FROM posts").unwrap();
/// assert_eq!(r.rows.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedDb {
    inner: Arc<ShardedDatabase>,
    tracking: Tracking,
    guard: GuardMode,
}

impl SharedDb {
    /// A RESIN-tracked shared database with no injection guard.
    pub fn new() -> Self {
        SharedDb::default()
    }

    /// A shared database with explicit tracking and guard settings.
    pub fn with_modes(tracking: Tracking, guard: GuardMode) -> Self {
        SharedDb {
            inner: Arc::new(ShardedDatabase::new()),
            tracking,
            guard,
        }
    }

    /// Sets the injection guard **for this handle** (other clones keep
    /// theirs — storage is shared, modes are per handle).
    pub fn set_guard(&mut self, guard: GuardMode) {
        self.guard = guard;
    }

    /// The enforced guard mode of this handle.
    pub fn guard(&self) -> GuardMode {
        self.guard
    }

    /// The underlying sharded engine (for tests and diagnostics).
    pub fn raw(&self) -> &ShardedDatabase {
        &self.inner
    }

    /// Executes a (possibly tainted) query through the RESIN SQL filter.
    ///
    /// Unlike [`ResinDb::query`](crate::ResinDb::query) this takes `&self`:
    /// any number of workers may query concurrently.
    pub fn query(&self, sql: &TaintedString) -> Result<TaintedResult> {
        let mut backend: &ShardedDatabase = &self.inner;
        guarded_query(&mut backend, sql, self.tracking, self.guard)
    }

    /// Executes an untainted query string.
    pub fn query_str(&self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    /// Opens a transaction on the shared database.
    pub fn begin(&self) -> SharedTransaction<'static> {
        SharedTransaction {
            db: self.clone(),
            snapshots: TxnSnapshots::default(),
            checks: Vec::new(),
            finished: false,
        }
    }
}

/// An integrity assertion for a [`SharedTransaction`], checked at commit
/// time. Checks must be read-only: writes they perform are not covered by
/// the transaction's snapshots.
pub type SharedIntegrityCheck<'c> =
    Box<dyn Fn(&SharedDb) -> std::result::Result<(), PolicyViolation> + Send + 'c>;

/// A transaction on a [`SharedDb`] with lazy copy-on-write snapshots.
///
/// A table is snapshotted only when the transaction first writes it;
/// queries against other tables — from this transaction or from other
/// threads — never pay for a clone. Rollback restores exactly the touched
/// tables.
///
/// Isolation is *per table*: concurrent writers to a table this
/// transaction later rolls back will lose their writes to the restore
/// (last-writer-wins). Partition writes by table — the same discipline the
/// lock sharding already rewards.
pub struct SharedTransaction<'c> {
    db: SharedDb,
    snapshots: TxnSnapshots,
    checks: Vec<SharedIntegrityCheck<'c>>,
    finished: bool,
}

impl<'c> SharedTransaction<'c> {
    /// Registers an integrity assertion to run at commit.
    pub fn add_check(&mut self, check: SharedIntegrityCheck<'c>) {
        self.checks.push(check);
    }

    /// Table names snapshotted so far (sorted). Untouched tables never
    /// appear here — that is the copy-on-write guarantee.
    pub fn snapshotted_tables(&self) -> Vec<&str> {
        self.snapshots.names()
    }

    /// Executes a query inside the transaction (all RESIN rewriting and
    /// guards apply as usual).
    ///
    /// The write target comes from the statement as prepared — parsed
    /// *after* any guard rewriting, i.e. exactly what executes — so a
    /// query only ever snapshots the one table it writes.
    pub fn query(&mut self, sql: &TaintedString) -> Result<TaintedResult> {
        let (sql, stmt) = prepare_query(sql, self.db.guard)?;
        if let Some(name) = statement_write_target(&stmt) {
            let name = name.to_string();
            let inner = &self.db.inner;
            self.snapshots
                .record_with(&name, || inner.snapshot_table(&name));
        }
        let mut backend: &ShardedDatabase = &self.db.inner;
        run_prepared(&mut backend, &sql, stmt, self.db.tracking)
    }

    /// Executes an untainted query inside the transaction.
    pub fn query_str(&mut self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    fn restore(&mut self) {
        for (name, snap) in self.snapshots.drain() {
            self.db.raw().restore_table(&name, snap);
        }
    }

    /// Runs the integrity checks; keeps the changes if all pass, restores
    /// the touched tables otherwise.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let checks = std::mem::take(&mut self.checks);
        for check in &checks {
            if let Err(v) = check(&self.db) {
                self.restore();
                return Err(SqlError::Policy(resin_core::FlowError::Denied(v)));
            }
        }
        Ok(())
    }

    /// Discards all changes made inside the transaction.
    pub fn rollback(mut self) {
        self.finished = true;
        self.restore();
    }
}

impl Drop for SharedTransaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.restore();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::UntrustedData;
    use std::sync::Arc;

    fn posts_db() -> SharedDb {
        let db = SharedDb::new();
        db.query_str("CREATE TABLE posts (id INTEGER, body TEXT)")
            .unwrap();
        db.query_str("CREATE TABLE sessions (sid TEXT, user TEXT)")
            .unwrap();
        db
    }

    fn untrusted(s: &str) -> TaintedString {
        TaintedString::with_policy(s, Arc::new(UntrustedData::new()))
    }

    #[test]
    fn policy_roundtrip_through_shared_storage() {
        let db = posts_db();
        let mut q = TaintedString::from("INSERT INTO posts VALUES (1, '");
        q.push_tainted(&untrusted("hello"));
        q.push_str("')");
        db.query(&q).unwrap();
        let r = db.query_str("SELECT body FROM posts").unwrap();
        let cell = r.cell(0, "body").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "hello");
        assert!(cell.has_policy::<UntrustedData>(), "taint survives storage");
    }

    #[test]
    fn injection_guard_applies_per_handle() {
        let db = posts_db();
        let mut guarded = db.clone();
        guarded.set_guard(GuardMode::StructureCheck);
        let mut q = TaintedString::from("SELECT body FROM posts WHERE id = ");
        q.push_tainted(&untrusted("1 OR 1=1"));
        assert!(guarded.query(&q).unwrap_err().is_violation());
        // The unguarded handle shares storage but not the guard.
        assert_eq!(db.guard(), GuardMode::Off);
    }

    #[test]
    fn clones_share_storage() {
        let db = posts_db();
        let other = db.clone();
        other
            .query_str("INSERT INTO posts VALUES (7, 'shared')")
            .unwrap();
        let r = db.query_str("SELECT body FROM posts WHERE id = 7").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn txn_snapshots_only_touched_tables() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'keep')")
            .unwrap();
        let mut txn = db.begin();
        txn.query_str("INSERT INTO sessions VALUES ('s1', 'alice')")
            .unwrap();
        assert_eq!(
            txn.snapshotted_tables(),
            vec!["sessions"],
            "posts was never cloned"
        );
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM sessions").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &1);
    }

    #[test]
    fn txn_commit_check_failure_restores() {
        let db = posts_db();
        let mut txn = db.begin();
        txn.add_check(Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM posts WHERE id > 100")
                .map_err(|e| PolicyViolation::new("IdRange", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) == Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("IdRange", "id above 100"))
            }
        }));
        txn.query_str("INSERT INTO posts VALUES (999, 'out of range')")
            .unwrap();
        assert!(txn.commit().is_err());
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
    }

    #[test]
    fn txn_create_table_rolls_back_to_absent() {
        let db = posts_db();
        {
            let mut txn = db.begin();
            txn.query_str("CREATE TABLE scratch (x INTEGER)").unwrap();
            txn.query_str("INSERT INTO scratch VALUES (1)").unwrap();
            // Dropped uncommitted.
        }
        assert!(db.query_str("SELECT COUNT(*) FROM scratch").is_err());
    }

    #[test]
    fn drop_table_rolls_back() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'precious')")
            .unwrap();
        let mut txn = db.begin();
        txn.query_str("DROP TABLE posts").unwrap();
        assert!(db.query_str("SELECT COUNT(*) FROM posts").is_err());
        txn.rollback();
        let r = db.query_str("SELECT body FROM posts").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn if_not_exists_matches_single_threaded_engine() {
        // Existence must win over column validation, exactly as in
        // `Database::create_table`: IF NOT EXISTS on an existing table is
        // a no-op even when the new column list is invalid.
        let db = posts_db();
        db.query_str("CREATE TABLE IF NOT EXISTS posts (a INTEGER, a INTEGER)")
            .unwrap();
        let mut single = crate::ResinDb::new();
        single.query_str("CREATE TABLE posts (id INTEGER)").unwrap();
        single
            .query_str("CREATE TABLE IF NOT EXISTS posts (a INTEGER, a INTEGER)")
            .unwrap();
        // A fresh create with a duplicate column still fails on both.
        assert!(db
            .query_str("CREATE TABLE dup (a INTEGER, a INTEGER)")
            .is_err());
    }

    #[test]
    fn guard_rewritten_txn_query_snapshots_one_table() {
        // The write target is read off the post-guard parse: a statement
        // the AutoSanitize guard must rewrite before it parses strictly
        // still snapshots only the table it writes.
        let mut db = posts_db();
        db.set_guard(GuardMode::AutoSanitize);
        let mut txn = db.begin();
        let mut q = TaintedString::from("INSERT INTO posts VALUES (1, '");
        q.push_tainted(&untrusted("o'hara says hi"));
        q.push_str("')");
        txn.query(&q).unwrap();
        assert_eq!(txn.snapshotted_tables(), vec!["posts"]);
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
    }

    #[test]
    fn select_policy_columns_still_hidden() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'x')").unwrap();
        let r = db.query_str("SELECT * FROM posts").unwrap();
        assert_eq!(r.columns, vec!["id", "body"]);
        assert!(db.query_str("SELECT __rp_body FROM posts").is_err());
    }
}
