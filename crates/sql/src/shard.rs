//! Concurrent storage: a table-sharded engine behind an `Arc`.
//!
//! The single-threaded [`Database`](crate::Database) serves one request at
//! a time through `&mut`. Serving the paper's workloads under real traffic
//! (§6 runs the applications inside live web servers) needs the opposite:
//! many worker threads sharing one database. [`SharedDb`] provides that:
//!
//! * storage is a [`ShardedDatabase`] — a catalog `RwLock` mapping table
//!   names to `Arc<RwLock<Table>>`, so locking is **per table**: readers
//!   of `posts` never contend with writers of `sessions`, and two readers
//!   of the same table proceed in parallel;
//! * the RESIN rewriting + injection-guard pipeline is the exact same code
//!   [`ResinDb`](crate::ResinDb) runs (policy columns, guards, the sql
//!   gate) — `SharedDb` implements the crate's internal `QueryBackend`
//!   over the sharded storage;
//! * `SharedDb` is `Clone` (an `Arc` handle): hand one to every worker.
//!
//! Transactions ([`SharedDb::begin`]) use the same lazy copy-on-write
//! snapshot strategy as [`Transaction`](crate::Transaction): a table is
//! snapshotted only on its first write inside the transaction, so touching
//! one small table never clones the whole database.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

use resin_core::sync::{mlock, rlock, wlock};

use resin_core::{PolicyViolation, TaintedString};

use crate::ast::{IndexKind, Statement};
use crate::durable::SqlStore;
use crate::engine::{
    check_table_name, new_table, table_delete, table_insert, table_select, table_update,
    QueryResult, Table,
};
use crate::error::{Result, SqlError};
use crate::rewrite::{
    prepare_query, prepare_statement, render_bound_sql, run_prepared, BindValue, BoundStatement,
    GuardMode, Prepared, QueryBackend, TaintedResult, Tracking,
};
use crate::txn::{statement_write_target, TxnSnapshots};
use crate::value::Value;

type TableShard = Arc<RwLock<Table>>;

/// The lock-sharded storage engine: one `RwLock` per table plus a catalog
/// lock for schema changes.
///
/// All methods take `&self`. Row statements hold the catalog lock in
/// shared mode (readers never block each other; per-table locks provide
/// the sharding), schema statements take it exclusively — so DDL
/// serializes cleanly against in-flight row work.
///
/// When opened durably ([`SharedDb::open`]), the catalog additionally
/// carries the shared snapshot+WAL store. The store handle is lock-free
/// here (`OnceLock`, set once at open): concurrent writers call straight
/// into the store's group-commit queue, which batches their fsyncs —
/// serializing appends behind an outer mutex would defeat exactly that.
#[derive(Debug, Default)]
pub struct ShardedDatabase {
    catalog: RwLock<BTreeMap<String, TableShard>>,
    store: OnceLock<SqlStore>,
    /// Checkpoint exclusion: writers hold it shared across their WAL
    /// append → execute window, `SharedDb::checkpoint` holds it
    /// exclusively — so a snapshot can never land between a statement's
    /// log record and its effect on the tables.
    ckpt: RwLock<()>,
    /// Open transactions that have written. Their table changes are live
    /// but their WAL records are buffered until commit, so a checkpoint
    /// waits for this to reach zero (`txn_done` signals each finish).
    txn_writers: Mutex<usize>,
    txn_done: Condvar,
    /// Live-WAL-bytes threshold above which a completed durable write
    /// triggers a checkpoint. Zero (the default) disables the trigger.
    /// Shared by every handle clone — retention is a store-wide policy.
    auto_ckpt_wal_bytes: std::sync::atomic::AtomicU64,
}

// Both lock levels guard data that is consistent at every panic point
// (rows are staged before being extended in; catalog changes are single
// map operations), so a panicking worker must not poison the database for
// every other request — the poison-recovering accessors of
// `resin_core::sync` apply.

impl ShardedDatabase {
    /// An empty sharded database.
    pub fn new() -> Self {
        ShardedDatabase::default()
    }

    fn resolve<'a>(
        catalog: &'a BTreeMap<String, TableShard>,
        name: &str,
    ) -> Result<&'a TableShard> {
        catalog
            .get(name)
            .ok_or_else(|| SqlError::schema(format!("no such table `{name}`")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        rlock(&self.catalog).keys().cloned().collect()
    }

    /// A point-in-time copy of one table, if it exists.
    pub fn snapshot_table(&self, name: &str) -> Option<Table> {
        let catalog = rlock(&self.catalog);
        let shard = catalog.get(name)?;
        let copy = rlock(shard).clone();
        Some(copy)
    }

    /// Restores one table to a snapshot: `Some` replaces (or re-creates)
    /// the table, `None` drops it.
    pub fn restore_table(&self, name: &str, snapshot: Option<Table>) {
        match snapshot {
            Some(t) => {
                let mut catalog = wlock(&self.catalog);
                match catalog.get(name) {
                    // Swap contents in place so concurrent holders of the
                    // shard Arc observe the restored state too.
                    Some(shard) => *wlock(shard) = t,
                    None => {
                        catalog.insert(name.to_string(), Arc::new(RwLock::new(t)));
                    }
                }
            }
            None => {
                wlock(&self.catalog).remove(name);
            }
        }
    }

    /// Executes one parsed statement against the sharded storage.
    ///
    /// Row statements hold the catalog lock in *shared* mode for their
    /// whole run (sharding comes from the per-table locks), so a schema
    /// change — which takes the catalog lock exclusively — serializes
    /// against in-flight row work instead of detaching a shard mid-write:
    /// a write racing a `DROP TABLE` either lands before the drop or
    /// reports "no such table", never a silently-lost `Ok`.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
                primary_key,
            } => {
                let mut catalog = wlock(&self.catalog);
                if catalog.contains_key(name) {
                    // Existence wins over column validation, matching the
                    // single-threaded engine: IF NOT EXISTS on an existing
                    // table is a no-op even for an invalid column list.
                    if *if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(SqlError::schema(format!("table `{name}` already exists")));
                }
                check_table_name(name)?;
                let mut table = new_table(columns)?;
                if let Some(pk) = primary_key {
                    table.create_index(&format!("pk_{name}"), pk, IndexKind::Ordered, false)?;
                }
                catalog.insert(name.clone(), Arc::new(RwLock::new(table)));
                Ok(QueryResult::default())
            }
            Statement::DropTable { name } => {
                if wlock(&self.catalog).remove(name).is_none() {
                    return Err(SqlError::schema(format!("no such table `{name}`")));
                }
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                kind,
                if_not_exists,
            } => {
                // Index DDL mutates one table, not the catalog map, so the
                // catalog lock stays shared — like a row statement.
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                wlock(shard).create_index(name, column, *kind, *if_not_exists)?;
                Ok(QueryResult::default())
            }
            Statement::DropIndex { name, table } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                wlock(shard).drop_index(name)?;
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_insert(&mut t, table, columns.as_deref(), rows, params)?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::Select(sel) => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, &sel.table)?;
                let t = rlock(shard);
                table_select(&t, sel, params)
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_update(&mut t, assignments, where_clause.as_ref(), params)?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let catalog = rlock(&self.catalog);
                let shard = Self::resolve(&catalog, table)?;
                let mut t = wlock(shard);
                let affected = table_delete(&mut t, where_clause.as_ref(), params)?;
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
        }
    }

    /// Parses and executes a query string (tests and diagnostics).
    pub fn execute_str(&self, sql: &str) -> Result<QueryResult> {
        let stmt = crate::parser::parse_str(sql)?;
        self.execute(&stmt, &[])
    }
}

// The rewriting layer drives storage through `&mut B`; a shared reference
// to the sharded engine is itself the backend (interior locking), so the
// same pipeline works without exclusive access to the database.
impl QueryBackend for &ShardedDatabase {
    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<QueryResult> {
        ShardedDatabase::execute(self, stmt, params)
    }

    fn columns_of(&self, table: &str) -> Result<Vec<String>> {
        let catalog = rlock(&self.catalog);
        let shard = ShardedDatabase::resolve(&catalog, table)?;
        let t = rlock(shard);
        Ok(t.columns.iter().map(|c| c.name.clone()).collect())
    }
}

/// An `Arc`-shareable RESIN database: clone a handle per worker thread.
///
/// Each handle carries its own [`Tracking`]/[`GuardMode`] settings (so a
/// trusted maintenance path can run unguarded while request handlers keep
/// the injection guard), while all handles share the same sharded storage.
///
/// # Examples
///
/// ```
/// use resin_sql::{GuardMode, SharedDb};
///
/// let db = SharedDb::new();
/// db.query_str("CREATE TABLE posts (id INTEGER, body TEXT)").unwrap();
///
/// let handle = db.clone();
/// let t = std::thread::spawn(move || {
///     handle.query_str("INSERT INTO posts VALUES (1, 'hello')").unwrap();
/// });
/// t.join().unwrap();
/// let r = db.query_str("SELECT body FROM posts").unwrap();
/// assert_eq!(r.rows.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedDb {
    inner: Arc<ShardedDatabase>,
    tracking: Tracking,
    guard: GuardMode,
    durable: bool,
    torn_recovery: bool,
    torn_cross_segment: bool,
}

impl SharedDb {
    /// A RESIN-tracked shared database with no injection guard.
    pub fn new() -> Self {
        SharedDb::default()
    }

    /// A shared database with explicit tracking and guard settings.
    pub fn with_modes(tracking: Tracking, guard: GuardMode) -> Self {
        SharedDb {
            inner: Arc::new(ShardedDatabase::new()),
            tracking,
            guard,
            durable: false,
            torn_recovery: false,
            torn_cross_segment: false,
        }
    }

    /// A non-durable shared database pre-loaded with a table catalog —
    /// the substrate of a read replica ([`crate::replica::Follower`]).
    pub(crate) fn from_tables(
        tables: BTreeMap<String, Table>,
        tracking: Tracking,
        guard: GuardMode,
    ) -> Self {
        let sharded = ShardedDatabase::new();
        {
            let mut catalog = wlock(&sharded.catalog);
            for (name, t) in tables {
                catalog.insert(name, Arc::new(RwLock::new(t)));
            }
        }
        SharedDb {
            inner: Arc::new(sharded),
            tracking,
            guard,
            durable: false,
            torn_recovery: false,
            torn_cross_segment: false,
        }
    }

    /// Opens (creating if needed) a durable shared database rooted at
    /// `dir`: loads the last checkpoint, replays the WAL's surviving
    /// prefix (torn tail tolerated), and logs every subsequent mutating
    /// statement write-ahead. All clones share the store.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::open_with_modes(dir, Tracking::On, GuardMode::Off)
    }

    /// [`open`](SharedDb::open) with explicit tracking and guard settings
    /// (reopen with the same tracking mode the store was written under).
    pub fn open_with_modes(
        dir: impl AsRef<std::path::Path>,
        tracking: Tracking,
        guard: GuardMode,
    ) -> Result<Self> {
        let (store, recovered) = SqlStore::open(dir)?;
        let sharded = ShardedDatabase::new();
        {
            let mut catalog = wlock(&sharded.catalog);
            for (name, t) in recovered.tables {
                catalog.insert(name, Arc::new(RwLock::new(t)));
            }
        }
        for sql in &recovered.replay {
            // Post-guard text: skip the gate, re-run the same rewrite. A
            // statement that errors here failed identically pre-crash.
            let _ = Self::replay_on(&sharded, sql, tracking);
        }
        let _ = sharded.store.set(store);
        Ok(SharedDb {
            inner: Arc::new(sharded),
            tracking,
            guard,
            durable: true,
            torn_recovery: recovered.torn_tail,
            torn_cross_segment: recovered.torn_cross_segment,
        })
    }

    /// True when this open discarded a torn WAL tail: the store is
    /// consistent, but acknowledged-but-unsynced work from the crashed
    /// process may have been lost — worth logging or alerting on.
    pub fn recovered_from_torn_wal(&self) -> bool {
        self.torn_recovery
    }

    /// True when the torn tail spanned a segment boundary, so recovery
    /// dropped one or more whole later segments — a wider loss window
    /// than one in-flight append.
    pub fn recovered_torn_cross_segment(&self) -> bool {
        self.torn_cross_segment
    }

    /// Replays one post-guard statement through the standard rewrite
    /// pipeline (read replicas apply shipped WAL records with this).
    pub(crate) fn replay(&self, sql: &TaintedString) -> Result<()> {
        Self::replay_on(&self.inner, sql, self.tracking)
    }

    /// Replaces the whole catalog (read replicas rebuilding from a newer
    /// shipped checkpoint). In-flight readers holding a shard `Arc`
    /// finish against the old table; new queries resolve the new one.
    pub(crate) fn reset_tables(&self, tables: BTreeMap<String, Table>) {
        let mut catalog = wlock(&self.inner.catalog);
        catalog.clear();
        for (name, t) in tables {
            catalog.insert(name, Arc::new(RwLock::new(t)));
        }
    }

    fn replay_on(sharded: &ShardedDatabase, sql: &TaintedString, tracking: Tracking) -> Result<()> {
        let tokens = crate::token::lex(sql.as_str())?;
        let stmt = crate::parser::parse(&tokens)?;
        let mut backend: &ShardedDatabase = sharded;
        run_prepared(&mut backend, sql, stmt, tracking, &[])?;
        Ok(())
    }

    /// True when a durable store backs this database.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Folds the WAL into a fresh snapshot (no-op without a store).
    ///
    /// The snapshot is statement-consistent: the checkpoint-exclusion
    /// lock keeps it out of every writer's WAL-append → execute window
    /// (a logged statement is never dropped unexecuted by the WAL
    /// truncation), and it waits for open *writing* transactions to
    /// finish (their table changes are live while their WAL records are
    /// buffered until commit — snapshotting mid-transaction would
    /// resurrect rollbacks or double-apply commits on recovery). The
    /// image is encoded under every shard's read lock simultaneously, so
    /// it is point-in-time consistent across tables.
    pub fn checkpoint(&self) -> Result<()> {
        self.checkpoint_with(false)
    }

    /// [`checkpoint`](SharedDb::checkpoint) with every table re-encoded
    /// regardless of dirtiness — the full-snapshot baseline incremental
    /// checkpoints are measured against.
    pub fn checkpoint_full(&self) -> Result<()> {
        self.checkpoint_with(true)
    }

    fn checkpoint_with(&self, full: bool) -> Result<()> {
        if !self.durable {
            return Ok(());
        }
        // Wait for writing transactions *without* holding the ckpt write
        // lock: their owner thread may need the read lock (a plain
        // durable write) before it can commit, so parking on the condvar
        // with the write lock held would deadlock the database. New
        // registrations take the read lock, so once the count reads zero
        // *under* the write lock, no transaction can slip in.
        let mut excl = wlock(&self.inner.ckpt);
        loop {
            if *mlock(&self.inner.txn_writers) == 0 {
                break;
            }
            drop(excl);
            {
                let mut open = mlock(&self.inner.txn_writers);
                while *open > 0 {
                    open = self
                        .inner
                        .txn_done
                        .wait(open)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            excl = wlock(&self.inner.ckpt);
        }
        let _excl = excl;
        // Encode straight from the shard read guards — no whole-catalog
        // deep copy. Holding every shard lock at once also makes the
        // snapshot point-in-time consistent *across* tables: durable
        // writers are already excluded by the ckpt lock, and readers take
        // the same shared locks.
        let catalog = rlock(&self.inner.catalog);
        let shards: Vec<(&str, std::sync::RwLockReadGuard<'_, Table>)> = catalog
            .iter()
            .map(|(n, shard)| (n.as_str(), rlock(shard)))
            .collect();
        let Some(store) = self.inner.store.get() else {
            return Ok(());
        };
        let tables = shards.iter().map(|(n, t)| (*n, &**t));
        if full {
            store.checkpoint_full(tables)
        } else {
            store.checkpoint(tables)
        }
    }

    /// Live storage counters (segments, WAL bytes, checkpoint cost) of
    /// the underlying store, or `None` when not durable.
    pub fn store_stats(&self) -> Option<resin_store::StoreStats> {
        self.inner.store.get().map(SqlStore::stats)
    }

    /// Arms the size-based checkpoint trigger: once the live WAL grows
    /// past `bytes`, the durable write that crossed the line checkpoints
    /// the database before returning. Zero (the default) disables the
    /// trigger; the setting is shared by every clone of this handle.
    pub fn set_auto_checkpoint_wal_bytes(&self, bytes: u64) {
        self.inner
            .auto_ckpt_wal_bytes
            .store(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// The armed auto-checkpoint threshold (0 = disabled).
    pub fn auto_checkpoint_wal_bytes(&self) -> u64 {
        self.inner
            .auto_ckpt_wal_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs the size-based trigger after a durable write, outside the
    /// checkpoint-exclusion window. Best-effort: the write that got us
    /// here is already applied *and* logged, so a checkpoint failure must
    /// not convert it into a caller-visible error (retrying the statement
    /// would double-apply it); the condition persists and the next
    /// explicit checkpoint will surface it. Concurrent writers crossing
    /// the line together serialize on the ckpt lock; the laggards'
    /// checkpoints are incremental over a now-clean store and cheap.
    fn maybe_auto_checkpoint(&self) {
        let threshold = self.auto_checkpoint_wal_bytes();
        if threshold == 0 {
            return;
        }
        let Some(stats) = self.store_stats() else {
            return;
        };
        if stats.live_wal_bytes >= threshold {
            let _ = self.checkpoint();
        }
    }

    /// Number of tables written since the last checkpoint — what the
    /// next incremental checkpoint will re-encode.
    pub fn dirty_table_count(&self) -> usize {
        self.inner.store.get().map_or(0, SqlStore::dirty_count)
    }

    /// Marks tables as written since the last checkpoint (transactions
    /// call this at commit, when their buffered WAL record lands).
    pub(crate) fn mark_tables_dirty<'a>(&self, names: impl IntoIterator<Item = &'a str>) {
        if let Some(store) = self.inner.store.get() {
            for name in names {
                store.mark_dirty(name);
            }
        }
    }

    /// Whether WAL appends fsync before returning (default `true`).
    pub fn set_wal_sync(&self, sync: bool) {
        if let Some(store) = self.inner.store.get() {
            store.set_sync(sync);
        }
    }

    /// Whether concurrent synced WAL appends share fsyncs (default
    /// `true`; off gives the per-append-fsync baseline for benchmarks).
    pub fn set_wal_group_commit(&self, group: bool) {
        if let Some(store) = self.inner.store.get() {
            store.set_group_commit(group);
        }
    }

    /// Total fsyncs the WAL has issued — the observable of group-commit
    /// amortization under concurrent committers.
    pub fn wal_sync_count(&self) -> u64 {
        self.inner.store.get().map_or(0, SqlStore::sync_count)
    }

    /// Appends one post-guard statement to the shared WAL.
    pub(crate) fn wal_log(&self, sql: &TaintedString) -> Result<()> {
        self.wal_log_batch(std::slice::from_ref(sql))
    }

    /// Appends a transaction's buffered statements as one atomic WAL
    /// record: a crash mid-commit persists the whole transaction or none
    /// of it, never a prefix.
    pub(crate) fn wal_log_batch(&self, stmts: &[TaintedString]) -> Result<()> {
        if !self.durable {
            return Ok(());
        }
        if let Some(store) = self.inner.store.get() {
            store.log_batch(stmts)?;
        }
        Ok(())
    }

    /// Sets the injection guard **for this handle** (other clones keep
    /// theirs — storage is shared, modes are per handle).
    pub fn set_guard(&mut self, guard: GuardMode) {
        self.guard = guard;
    }

    /// The enforced guard mode of this handle.
    pub fn guard(&self) -> GuardMode {
        self.guard
    }

    /// The underlying sharded engine (for tests and diagnostics).
    pub fn raw(&self) -> &ShardedDatabase {
        &self.inner
    }

    /// Executes a (possibly tainted) query through the RESIN SQL filter.
    ///
    /// Unlike [`ResinDb::query`](crate::ResinDb::query) this takes `&self`:
    /// any number of workers may query concurrently. On a durable database
    /// mutating statements are WAL-logged write-ahead (concurrent appends
    /// group-commit: the store batches them under shared fsyncs, in the
    /// order it sequences them), and recovery replays in WAL order. Two *racing*
    /// writers to the same table may therefore recover in the other
    /// interleaving than the one that executed — every statement is
    /// preserved, but non-commuting racing writes (two UPDATEs of one row)
    /// can recover to the other winner. Racing writers partitioned by
    /// table — the discipline the lock sharding already rewards — recover
    /// exactly. A statement that fails *execution* after logging stays in
    /// the WAL as a no-op (replay fails identically and is skipped) until
    /// the next checkpoint truncates it.
    pub fn query(&self, sql: &TaintedString) -> Result<TaintedResult> {
        let (sql, stmt) = prepare_query(sql, self.guard)?;
        let durable_write = self.durable && statement_write_target(&stmt).is_some();
        // Shared checkpoint-exclusion across log + execute: a checkpoint
        // must never truncate this statement's WAL record before its
        // effect is in the tables it snapshots.
        let _no_ckpt = durable_write.then(|| rlock(&self.inner.ckpt));
        if durable_write {
            self.wal_log(&sql)?;
            // Inside the exclusion window, so the checkpoint that would
            // truncate this record also sees its table as dirty.
            self.mark_tables_dirty(statement_write_target(&stmt));
        }
        let mut backend: &ShardedDatabase = &self.inner;
        let result = run_prepared(&mut backend, &sql, stmt, self.tracking, &[]);
        // The exclusion window must close before the trigger runs: the
        // checkpoint takes the same lock exclusively.
        drop(_no_ckpt);
        if durable_write && result.is_ok() {
            self.maybe_auto_checkpoint();
        }
        result
    }

    /// Executes an untainted query string.
    pub fn query_str(&self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    /// Guards, lexes, and parses a statement template once; `?`
    /// placeholders become bind parameters ([`Prepared::bind`]).
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        prepare_statement(sql, self.guard)
    }

    /// Executes a prepared statement with bound values. Bound values
    /// reach the engine as data, never as query text. On a durable
    /// database a mutating statement is WAL-logged as rendered SQL
    /// (values spliced back as escaped, label-carrying literals), under
    /// the same checkpoint-exclusion window as [`query`](SharedDb::query).
    pub fn run(&self, bound: &BoundStatement<'_>) -> Result<TaintedResult> {
        let p = bound.prepared;
        let durable_write = self.durable && p.write_target().is_some();
        let _no_ckpt = durable_write.then(|| rlock(&self.inner.ckpt));
        if durable_write {
            let rendered = render_bound_sql(p, &bound.values);
            self.wal_log(&rendered)?;
            self.mark_tables_dirty(p.write_target());
        }
        let mut backend: &ShardedDatabase = &self.inner;
        let result = run_prepared(
            &mut backend,
            p.text_tainted(),
            p.statement().clone(),
            self.tracking,
            &bound.values,
        );
        drop(_no_ckpt);
        if durable_write && result.is_ok() {
            self.maybe_auto_checkpoint();
        }
        result
    }

    /// [`prepare`](SharedDb::prepare)-bind-[`run`](SharedDb::run) in one
    /// call, for one-shot parameterized statements.
    pub fn exec_prepared(
        &self,
        prepared: &Prepared,
        values: Vec<BindValue>,
    ) -> Result<TaintedResult> {
        let bound = prepared.bind(values)?;
        self.run(&bound)
    }

    /// Opens a transaction on the shared database.
    pub fn begin(&self) -> SharedTransaction<'static> {
        SharedTransaction {
            db: self.clone(),
            snapshots: TxnSnapshots::default(),
            checks: Vec::new(),
            wal: Vec::new(),
            registered: false,
            finished: false,
            _epoch_pin: resin_core::LabelTable::global().pin(),
        }
    }
}

/// An integrity assertion for a [`SharedTransaction`], checked at commit
/// time. Checks must be read-only: writes they perform are not covered by
/// the transaction's snapshots.
pub type SharedIntegrityCheck<'c> =
    Box<dyn Fn(&SharedDb) -> std::result::Result<(), PolicyViolation> + Send + 'c>;

/// A transaction on a [`SharedDb`] with lazy copy-on-write snapshots.
///
/// A table is snapshotted only when the transaction first writes it;
/// queries against other tables — from this transaction or from other
/// threads — never pay for a clone. Rollback restores exactly the touched
/// tables.
///
/// Isolation is *per table*: concurrent writers to a table this
/// transaction later rolls back will lose their writes to the restore
/// (last-writer-wins). Partition writes by table — the same discipline the
/// lock sharding already rewards.
///
/// The same discipline governs **durability**: a transaction's statements
/// reach the WAL only at commit (as one atomic record), while its table
/// changes are live immediately — so a non-transactional write that lands
/// on a transaction-touched table between its write and its commit is
/// logged *before* the transaction's record, and crash recovery replays
/// them in that (WAL) order, not execution order. Writes partitioned by
/// table recover exactly; interleaved same-table mixes may not.
pub struct SharedTransaction<'c> {
    db: SharedDb,
    snapshots: TxnSnapshots,
    checks: Vec<SharedIntegrityCheck<'c>>,
    wal: Vec<TaintedString>,
    /// Counted in `txn_writers` (set on the first durable write, cleared
    /// on drop) so checkpoints wait this transaction out.
    registered: bool,
    finished: bool,
    /// Keeps labels interned during the transaction (snapshot scratch,
    /// query results) safe from a concurrent label-table sweep.
    _epoch_pin: resin_core::EpochPin<'static>,
}

impl<'c> SharedTransaction<'c> {
    /// Registers an integrity assertion to run at commit.
    pub fn add_check(&mut self, check: SharedIntegrityCheck<'c>) {
        self.checks.push(check);
    }

    /// Table names snapshotted so far (sorted). Untouched tables never
    /// appear here — that is the copy-on-write guarantee.
    pub fn snapshotted_tables(&self) -> Vec<&str> {
        self.snapshots.names()
    }

    /// Executes a query inside the transaction (all RESIN rewriting and
    /// guards apply as usual).
    ///
    /// The write target comes from the statement as prepared — parsed
    /// *after* any guard rewriting, i.e. exactly what executes — so a
    /// query only ever snapshots the one table it writes.
    pub fn query(&mut self, sql: &TaintedString) -> Result<TaintedResult> {
        let (sql, stmt) = prepare_query(sql, self.db.guard)?;
        let is_write = statement_write_target(&stmt).is_some();
        if is_write && self.db.durable && !self.registered {
            // First durable write: block out a running checkpoint, then
            // stay counted until the transaction finishes — a snapshot
            // taken mid-transaction would see live table changes whose
            // WAL records are still buffered here.
            let _gate = rlock(&self.db.inner.ckpt);
            *mlock(&self.db.inner.txn_writers) += 1;
            self.registered = true;
        }
        if let Some(name) = statement_write_target(&stmt) {
            let name = name.to_string();
            let inner = &self.db.inner;
            self.snapshots
                .record_with(&name, || inner.snapshot_table(&name));
        }
        let mut backend: &ShardedDatabase = &self.db.inner;
        let res = run_prepared(&mut backend, &sql, stmt, self.db.tracking, &[])?;
        if is_write && self.db.durable {
            // Buffered, not logged: the WAL only sees statements whose
            // transaction committed, so a rollback recovers as a rollback.
            self.wal.push(sql.into_owned());
        }
        Ok(res)
    }

    /// Executes an untainted query inside the transaction.
    pub fn query_str(&mut self, sql: &str) -> Result<TaintedResult> {
        self.query(&TaintedString::from(sql))
    }

    fn restore(&mut self) {
        for (name, snap) in self.snapshots.drain() {
            self.db.raw().restore_table(&name, snap);
        }
    }

    /// Runs the integrity checks; keeps the changes if all pass, restores
    /// the touched tables otherwise.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        let checks = std::mem::take(&mut self.checks);
        for check in &checks {
            if let Err(v) = check(&self.db) {
                self.restore();
                return Err(SqlError::Policy(resin_core::FlowError::Denied(v)));
            }
        }
        let wal = std::mem::take(&mut self.wal);
        if let Err(e) = self.db.wal_log_batch(&wal) {
            // The commit could not be made durable: take the writes back
            // out of the live tables too, so the state the caller observes
            // matches the state a restart would recover.
            self.restore();
            return Err(e);
        }
        // Still registered in `txn_writers` until drop, so no checkpoint
        // can slip between the batch landing and these marks.
        self.db.mark_tables_dirty(self.snapshots.names());
        Ok(())
    }

    /// Discards all changes made inside the transaction.
    pub fn rollback(mut self) {
        self.finished = true;
        self.restore();
    }
}

impl Drop for SharedTransaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.restore();
        }
        if self.registered {
            self.registered = false;
            *mlock(&self.db.inner.txn_writers) -= 1;
            self.db.inner.txn_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::UntrustedData;
    use std::sync::Arc;

    fn posts_db() -> SharedDb {
        let db = SharedDb::new();
        db.query_str("CREATE TABLE posts (id INTEGER, body TEXT)")
            .unwrap();
        db.query_str("CREATE TABLE sessions (sid TEXT, user TEXT)")
            .unwrap();
        db
    }

    fn untrusted(s: &str) -> TaintedString {
        TaintedString::with_policy(s, Arc::new(UntrustedData::new()))
    }

    #[test]
    fn policy_roundtrip_through_shared_storage() {
        let db = posts_db();
        let mut q = TaintedString::from("INSERT INTO posts VALUES (1, '");
        q.push_tainted(&untrusted("hello"));
        q.push_str("')");
        db.query(&q).unwrap();
        let r = db.query_str("SELECT body FROM posts").unwrap();
        let cell = r.cell(0, "body").unwrap().as_text().unwrap();
        assert_eq!(cell.as_str(), "hello");
        assert!(cell.has_policy::<UntrustedData>(), "taint survives storage");
    }

    #[test]
    fn injection_guard_applies_per_handle() {
        let db = posts_db();
        let mut guarded = db.clone();
        guarded.set_guard(GuardMode::StructureCheck);
        let mut q = TaintedString::from("SELECT body FROM posts WHERE id = ");
        q.push_tainted(&untrusted("1 OR 1=1"));
        assert!(guarded.query(&q).unwrap_err().is_violation());
        // The unguarded handle shares storage but not the guard.
        assert_eq!(db.guard(), GuardMode::Off);
    }

    #[test]
    fn clones_share_storage() {
        let db = posts_db();
        let other = db.clone();
        other
            .query_str("INSERT INTO posts VALUES (7, 'shared')")
            .unwrap();
        let r = db.query_str("SELECT body FROM posts WHERE id = 7").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn txn_snapshots_only_touched_tables() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'keep')")
            .unwrap();
        let mut txn = db.begin();
        txn.query_str("INSERT INTO sessions VALUES ('s1', 'alice')")
            .unwrap();
        assert_eq!(
            txn.snapshotted_tables(),
            vec!["sessions"],
            "posts was never cloned"
        );
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM sessions").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &1);
    }

    #[test]
    fn txn_commit_check_failure_restores() {
        let db = posts_db();
        let mut txn = db.begin();
        txn.add_check(Box::new(|db| {
            let r = db
                .query_str("SELECT COUNT(*) FROM posts WHERE id > 100")
                .map_err(|e| PolicyViolation::new("IdRange", e.to_string()))?;
            if r.rows[0][0].as_int().map(|v| *v.value()) == Some(0) {
                Ok(())
            } else {
                Err(PolicyViolation::new("IdRange", "id above 100"))
            }
        }));
        txn.query_str("INSERT INTO posts VALUES (999, 'out of range')")
            .unwrap();
        assert!(txn.commit().is_err());
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
    }

    #[test]
    fn txn_create_table_rolls_back_to_absent() {
        let db = posts_db();
        {
            let mut txn = db.begin();
            txn.query_str("CREATE TABLE scratch (x INTEGER)").unwrap();
            txn.query_str("INSERT INTO scratch VALUES (1)").unwrap();
            // Dropped uncommitted.
        }
        assert!(db.query_str("SELECT COUNT(*) FROM scratch").is_err());
    }

    #[test]
    fn drop_table_rolls_back() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'precious')")
            .unwrap();
        let mut txn = db.begin();
        txn.query_str("DROP TABLE posts").unwrap();
        assert!(db.query_str("SELECT COUNT(*) FROM posts").is_err());
        txn.rollback();
        let r = db.query_str("SELECT body FROM posts").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn if_not_exists_matches_single_threaded_engine() {
        // Existence must win over column validation, exactly as in
        // `Database::create_table`: IF NOT EXISTS on an existing table is
        // a no-op even when the new column list is invalid.
        let db = posts_db();
        db.query_str("CREATE TABLE IF NOT EXISTS posts (a INTEGER, a INTEGER)")
            .unwrap();
        let mut single = crate::ResinDb::new();
        single.query_str("CREATE TABLE posts (id INTEGER)").unwrap();
        single
            .query_str("CREATE TABLE IF NOT EXISTS posts (a INTEGER, a INTEGER)")
            .unwrap();
        // A fresh create with a duplicate column still fails on both.
        assert!(db
            .query_str("CREATE TABLE dup (a INTEGER, a INTEGER)")
            .is_err());
    }

    #[test]
    fn guard_rewritten_txn_query_snapshots_one_table() {
        // The write target is read off the post-guard parse: a statement
        // the AutoSanitize guard must rewrite before it parses strictly
        // still snapshots only the table it writes.
        let mut db = posts_db();
        db.set_guard(GuardMode::AutoSanitize);
        let mut txn = db.begin();
        let mut q = TaintedString::from("INSERT INTO posts VALUES (1, '");
        q.push_tainted(&untrusted("o'hara says hi"));
        q.push_str("')");
        txn.query(&q).unwrap();
        assert_eq!(txn.snapshotted_tables(), vec!["posts"]);
        txn.rollback();
        let r = db.query_str("SELECT COUNT(*) FROM posts").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
    }

    fn disk_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("resin-shard-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_waits_for_writing_transactions() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let dir = disk_dir("ckpt-txn");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
            let mut txn = db.begin();
            txn.query_str("INSERT INTO t VALUES (1)").unwrap();

            let done = Arc::new(AtomicBool::new(false));
            let (db2, done2) = (db.clone(), done.clone());
            let h = std::thread::spawn(move || {
                db2.checkpoint().unwrap();
                done2.store(true, Ordering::SeqCst);
            });
            // Give the checkpoint ample time to (wrongly) complete: it
            // must instead be parked on the open writing transaction,
            // whose table change is live but whose WAL record is not.
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert!(
                !done.load(Ordering::SeqCst),
                "checkpoint must wait for the writing transaction"
            );
            txn.rollback();
            h.join().unwrap();
            assert!(done.load(Ordering::SeqCst));
        }
        // The rolled-back row must not be resurrected by recovery.
        let db = SharedDb::open(&dir).unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_does_not_deadlock_mixed_txn_and_plain_writes() {
        // A checkpoint parked on an open writing transaction must not
        // hold the ckpt write lock while waiting: the transaction's own
        // thread may need the read lock (a plain durable write) before
        // it can ever commit.
        let dir = disk_dir("ckpt-deadlock");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.set_wal_sync(false);
            db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
            let mut txn = db.begin();
            txn.query_str("INSERT INTO t VALUES (1)").unwrap();
            let db2 = db.clone();
            let h = std::thread::spawn(move || db2.checkpoint().unwrap());
            // Let the checkpoint reach its wait on the open transaction.
            std::thread::sleep(std::time::Duration::from_millis(50));
            // Pre-fix this deadlocked against the parked checkpoint.
            db.query_str("INSERT INTO t VALUES (2)").unwrap();
            txn.commit().unwrap();
            h.join().unwrap();
        }
        let db = SharedDb::open(&dir).unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepared_writes_replay_byte_and_label_identical() {
        // A bound write is WAL-logged as rendered SQL (values spliced
        // back as escaped, labeled literals). Recovery must revive the
        // same cells — payload bytes, escaping undone, labels intact —
        // and rebuild the PRIMARY KEY index so probes work post-restart.
        let dir = disk_dir("prepared-replay");
        {
            let db =
                SharedDb::open_with_modes(&dir, Tracking::On, GuardMode::StructureCheck).unwrap();
            db.query_str("CREATE TABLE posts (id INTEGER PRIMARY KEY, body TEXT)")
                .unwrap();
            let ins = db.prepare("INSERT INTO posts VALUES (?, ?)").unwrap();
            db.exec_prepared(&ins, vec![1i64.into(), untrusted("it's ''quoted''").into()])
                .unwrap();
            db.exec_prepared(&ins, vec![2i64.into(), "plain".into()])
                .unwrap();
        }
        let db = SharedDb::open_with_modes(&dir, Tracking::On, GuardMode::StructureCheck).unwrap();
        let sel = db.prepare("SELECT body FROM posts WHERE id = ?").unwrap();
        let r = db.exec_prepared(&sel, vec![1i64.into()]).unwrap();
        let body = r.cell(0, "body").unwrap().as_text().unwrap();
        assert_eq!(
            body.as_str(),
            "it's ''quoted''",
            "escaping undone on replay"
        );
        assert!(
            body.all_bytes_have::<UntrustedData>(),
            "labels recovered on every byte"
        );
        let r = db.exec_prepared(&sel, vec![2i64.into()]).unwrap();
        assert!(r.cell(0, "body").unwrap().as_text().unwrap().is_untainted());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_commit_is_one_atomic_wal_record() {
        // A crash mid-commit must never persist a prefix of a
        // transaction, so the whole buffered batch goes down as a single
        // WAL record (and a single fsync).
        let dir = disk_dir("txn-batch");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
            let mut txn = db.begin();
            txn.query_str("INSERT INTO t VALUES (1)").unwrap();
            txn.query_str("INSERT INTO t VALUES (2)").unwrap();
            txn.commit().unwrap();
        }
        {
            let (store, recovered) = resin_store::Store::open(&dir).unwrap();
            assert_eq!(
                recovered.records.len(),
                2,
                "CREATE plus exactly one commit record"
            );
            drop(store);
        }
        let db = SharedDb::open(&dir).unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_txn_then_checkpoint_never_double_applies() {
        let dir = disk_dir("ckpt-commit");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
            let mut txn = db.begin();
            txn.query_str("INSERT INTO t VALUES (7)").unwrap();
            txn.commit().unwrap();
            db.checkpoint().unwrap();
        }
        let db = SharedDb::open(&dir).unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows[0][0].as_int().unwrap().value(),
            &1,
            "snapshot covers the commit; its WAL record must not replay on top"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_checkpoint_rewrites_only_dirty_tables() {
        let dir = disk_dir("incr-ckpt");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.set_wal_sync(false);
            db.query_str("CREATE TABLE a (x INTEGER)").unwrap();
            db.query_str("CREATE TABLE b (x INTEGER)").unwrap();
            db.query_str("CREATE TABLE c (x INTEGER)").unwrap();
            db.query_str("INSERT INTO a VALUES (1)").unwrap();
            assert_eq!(db.dirty_table_count(), 3);
            db.checkpoint().unwrap();
            let s = db.store_stats().unwrap();
            assert_eq!(
                s.last_checkpoint_parts_written, 3,
                "first checkpoint writes every part"
            );
            assert_eq!(db.dirty_table_count(), 0);

            db.query_str("INSERT INTO b VALUES (2)").unwrap();
            assert_eq!(db.dirty_table_count(), 1);
            db.checkpoint().unwrap();
            let s = db.store_stats().unwrap();
            assert_eq!(s.last_checkpoint_parts_written, 1, "only b re-encoded");
            assert_eq!(s.parts, 3, "a and c carried over by reference");

            db.checkpoint_full().unwrap();
            assert_eq!(db.store_stats().unwrap().last_checkpoint_parts_written, 3);
        }
        // Everything recovers across incremental checkpoints.
        let db = SharedDb::open(&dir).unwrap();
        for (t, n) in [("a", 1), ("b", 1), ("c", 0)] {
            let r = db.query_str(&format!("SELECT COUNT(*) FROM {t}")).unwrap();
            assert_eq!(r.rows[0][0].as_int().unwrap().value(), &n, "table {t}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_table_leaves_the_checkpoint() {
        let dir = disk_dir("drop-ckpt");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.set_wal_sync(false);
            db.query_str("CREATE TABLE keep (x INTEGER)").unwrap();
            db.query_str("CREATE TABLE gone (x INTEGER)").unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.store_stats().unwrap().parts, 2);
            db.query_str("DROP TABLE gone").unwrap();
            db.checkpoint().unwrap();
            assert_eq!(db.store_stats().unwrap().parts, 1);
        }
        let db = SharedDb::open(&dir).unwrap();
        assert!(db.query_str("SELECT COUNT(*) FROM keep").is_ok());
        assert!(db.query_str("SELECT COUNT(*) FROM gone").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn txn_commit_marks_written_tables_dirty() {
        let dir = disk_dir("txn-dirty");
        let db = SharedDb::open(&dir).unwrap();
        db.set_wal_sync(false);
        db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.dirty_table_count(), 0);
        let mut txn = db.begin();
        txn.query_str("INSERT INTO t VALUES (1)").unwrap();
        txn.commit().unwrap();
        assert_eq!(db.dirty_table_count(), 1);
        // A rolled-back transaction leaves no dirty mark behind.
        db.checkpoint().unwrap();
        let mut txn = db.begin();
        txn.query_str("INSERT INTO t VALUES (2)").unwrap();
        txn.rollback();
        assert_eq!(db.dirty_table_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_policy_columns_still_hidden() {
        let db = posts_db();
        db.query_str("INSERT INTO posts VALUES (1, 'x')").unwrap();
        let r = db.query_str("SELECT * FROM posts").unwrap();
        assert_eq!(r.columns, vec!["id", "body"]);
        assert!(db.query_str("SELECT __rp_body FROM posts").is_err());
    }

    #[test]
    fn size_based_auto_checkpoint_bounds_the_wal() {
        let dir = disk_dir("auto-ckpt");
        {
            let db = SharedDb::open(&dir).unwrap();
            db.set_wal_sync(false);
            db.query_str("CREATE TABLE t (a INTEGER, body TEXT)")
                .unwrap();
            // Off by default: the WAL grows without bound.
            for i in 0..32 {
                db.query_str(&format!(
                    "INSERT INTO t VALUES ({i}, 'some body text to fatten the record')"
                ))
                .unwrap();
            }
            let before = db.store_stats().unwrap();
            assert_eq!(before.base_seq, 0, "no checkpoint without the trigger");
            assert!(before.live_wal_bytes > 512);

            // Armed: the write crossing the threshold checkpoints, so the
            // live WAL stays bounded even under a long insert stream.
            db.set_auto_checkpoint_wal_bytes(512);
            assert_eq!(db.auto_checkpoint_wal_bytes(), 512);
            let mut max_wal = 0;
            for i in 32..96 {
                db.query_str(&format!(
                    "INSERT INTO t VALUES ({i}, 'some body text to fatten the record')"
                ))
                .unwrap();
                max_wal = max_wal.max(db.store_stats().unwrap().live_wal_bytes);
            }
            let after = db.store_stats().unwrap();
            assert!(after.base_seq > 0, "trigger never checkpointed");
            // One statement may overshoot the line before the trigger
            // fires, but the WAL never grows a second threshold past it.
            assert!(
                max_wal < 512 + 1024,
                "WAL unbounded with the trigger armed: {max_wal}"
            );
        }
        // Recovery sees checkpoint + tail, nothing lost.
        let db = SharedDb::open(&dir).unwrap();
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &96);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
