//! Storage values and comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A stored cell value (the engine itself is policy-oblivious; the RESIN
/// filter layers policies on top via shadow columns).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as text, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. NULL compares as unknown (`None`); ints and text
    /// compare within their type; mixed int/text compares by rendering the
    /// int as text (PHP-flavoured leniency).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Text(b)) => Some(a.to_string().cmp(b)),
            (Value::Text(a), Value::Int(b)) => Some(a.cmp(&b.to_string())),
        }
    }

    /// Truthiness for WHERE results: nonzero int / nonempty text.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Text(s) => !s.is_empty(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char) wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(b'%'), _) => {
                // `%` matches empty or consumes one char.
                rec(t, &p[1..]) || (!t.is_empty() && rec(&t[1..], p))
            }
            (Some(b'_'), Some(_)) => rec(&t[1..], &p[1..]),
            (Some(pc), Some(tc)) if pc.eq_ignore_ascii_case(tc) => rec(&t[1..], &p[1..]),
            _ => false,
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("a".into())),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(5).compare(&Value::Text("5".into())),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Text("".into()).truthy());
        assert!(Value::Text("x".into()).truthy());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("HELLO", "hello"), "case-insensitive");
        assert!(!like_match("hello", "h_llo_"));
        assert!(!like_match("hello", "world%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("x".into()).to_string(), "x");
        assert!(Value::Text("x".into()).as_text().is_some());
        assert!(Value::Int(1).as_int().is_some());
        assert!(Value::Null.is_null());
    }
}
