//! The SQL abstract syntax tree.
//!
//! Literals record their byte span in the original query text so the RESIN
//! filter can recover each value's policies from the tainted query string
//! when rewriting INSERT/UPDATE statements (§3.4.1).

use std::ops::Range;

/// A column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Integer,
    /// UTF-8 text.
    Text,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// The shape of a secondary index (see [`crate::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map keyed on cell values: O(1) equality probes only.
    Hash,
    /// B-tree keyed on cell values: equality, ranges, and ordered
    /// iteration (ORDER BY / LIMIT pushdown).
    Ordered,
}

/// The projection of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// `SELECT a, b, c`
    Columns(Vec<String>),
    /// `SELECT COUNT(*)`
    CountStar,
}

/// A literal value plus its span in the query text.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// The decoded value.
    pub value: LitValue,
    /// Byte range in the query (string literals include the quotes).
    pub span: Range<usize>,
}

/// The payload of a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum LitValue {
    /// Integer literal.
    Int(i64),
    /// String literal (decoded).
    Text(String),
    /// `NULL`.
    Null,
}

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `LIKE`
    Like,
}

/// An expression (used in `WHERE`, `SET`, and `VALUES`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A literal.
    Lit(Literal),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (a, b, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// A `?` bind-parameter placeholder; the payload is its 0-based
    /// ordinal in query-text order. The value arrives at execution time
    /// via [`crate::Prepared::bind`] — it never appears in the query
    /// text, so it can never change query structure (§5.3).
    Param(usize),
}

impl Expr {
    /// If the expression is a plain literal, returns it.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Expr::Lit(l) => Some(l),
            _ => None,
        }
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// What to project.
    pub projection: Projection,
    /// Source table.
    pub table: String,
    /// Optional filter.
    pub where_clause: Option<Expr>,
    /// Optional `ORDER BY column [DESC]`; the bool is `descending`.
    pub order_by: Option<(String, bool)>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// Any parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE [IF NOT EXISTS] name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// `IF NOT EXISTS` present.
        if_not_exists: bool,
        /// Column declared `PRIMARY KEY`, if any. The engine gives it an
        /// ordered index named `pk_<table>` automatically.
        primary_key: Option<String>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE INDEX [IF NOT EXISTS] name ON table (column) [USING HASH|BTREE]`
    CreateIndex {
        /// Index name (unique per table).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// Hash or ordered; `USING BTREE` (ordered) is the default.
        kind: IndexKind,
        /// `IF NOT EXISTS` present.
        if_not_exists: bool,
    },
    /// `DROP INDEX name ON table`
    DropIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
    },
    /// `INSERT INTO name [(cols)] VALUES (exprs), ...`
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// One `Vec<Expr>` per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT ...`
    Select(SelectStmt),
    /// `UPDATE name SET col = expr, ... [WHERE ...]`
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE ...]`
    Delete {
        /// Table name.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_accessor() {
        let lit = Expr::Lit(Literal {
            value: LitValue::Int(1),
            span: 0..1,
        });
        assert!(lit.as_literal().is_some());
        assert!(Expr::Column("a".into()).as_literal().is_none());
    }
}
