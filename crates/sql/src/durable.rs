//! Durable storage for the SQL engine: snapshot codec + statement WAL.
//!
//! The snapshot image is the whole table catalog. Data cells are stored
//! verbatim; **policy-column** cells (the `__rp_` shadow blobs) are not
//! stored as strings but re-encoded as refs into the snapshot's shared
//! policy table — a database with a million identically-labeled cells
//! persists each distinct policy body once (the durable twin of `Label`
//! interning).
//!
//! The WAL logs each mutating statement *post-guard, pre-rewrite*: the
//! exact query text `prepare_query` produced, together with the serialized
//! byte-range policies of that text. Recovery revives the tainted query
//! and runs it back through the same rewrite pipeline, so replayed cells
//! regain byte-identical policy columns without the WAL knowing anything
//! about rewriting.

use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex};

use resin_core::sync::mlock;
use resin_core::{deserialize_spans, serialize_spans, TaintedString};
use resin_store::{Part, Recovered, SnapshotReader, SnapshotWriter, Store, StoreError, StoreStats};

use crate::ast::{ColumnDef, ColumnType};
use crate::engine::Table;
use crate::error::{Result, SqlError};
use crate::index::{kind_from_name, kind_name};
use crate::rewrite::POLICY_COL_PREFIX;
use crate::value::Value;

impl From<StoreError> for SqlError {
    fn from(e: StoreError) -> Self {
        SqlError::Storage(e.to_string())
    }
}

// Cell tags in the snapshot body.
const CELL_NULL: u8 = 0;
const CELL_INT: u8 = 1;
const CELL_TEXT: u8 = 2;
const CELL_SPANS: u8 = 3;
const CELL_LABEL: u8 = 4;

/// Name of the synthetic table that persists index definitions inside a
/// snapshot image. Lives in the reserved `__rp_` namespace (which
/// `check_table_name` keeps applications out of), is appended by
/// [`encode_tables`] and consumed — never surfaced — by
/// [`decode_tables`], so the snapshot wire format itself is unchanged:
/// index definitions ride as ordinary rows, and the indexes themselves
/// are **rebuilt from row storage** on recovery rather than persisted.
const INDEX_META_TABLE: &str = "__rp_indexes";

/// Checkpoint part-name prefix for per-table images. Namespaced so a
/// table part can never collide with the whole-catalog
/// [`resin_store::IMAGE_PART`] name legacy checkpoints use.
pub(crate) const TABLE_PART_PREFIX: &str = "tbl.";

/// The checkpoint part name persisting `table`'s image.
fn table_part_name(table: &str) -> String {
    format!("{TABLE_PART_PREFIX}{table}")
}

/// One definition row per index across the catalog, or `None` when no
/// table is indexed (unindexed images stay byte-identical to before).
fn index_meta_table(tables: &[(&str, &Table)]) -> Option<Table> {
    let rows: Vec<Vec<Value>> = tables
        .iter()
        .flat_map(|(name, t)| {
            t.indexes().map(move |ix| {
                vec![
                    Value::Text((*name).to_string()),
                    Value::Text(ix.name().to_string()),
                    Value::Text(ix.column().to_string()),
                    Value::Text(kind_name(ix.kind()).to_string()),
                ]
            })
        })
        .collect();
    if rows.is_empty() {
        return None;
    }
    let col = |name: &str| ColumnDef {
        name: name.to_string(),
        ty: ColumnType::Text,
    };
    Some(Table {
        columns: vec![col("tbl"), col("name"), col("col"), col("kind")],
        rows,
        indexes: Vec::new(),
    })
}

/// Encodes the whole catalog as a snapshot image.
pub(crate) fn encode_tables<'a>(
    tables: impl IntoIterator<Item = (&'a str, &'a Table)>,
) -> Result<Vec<u8>> {
    let mut tables: Vec<(&str, &Table)> = tables.into_iter().collect();
    let meta = index_meta_table(&tables);
    if let Some(meta) = meta.as_ref() {
        tables.push((INDEX_META_TABLE, meta));
    }
    let mut w = SnapshotWriter::new();
    w.put_u32(tables.len() as u32);
    for (name, t) in tables {
        w.put_str(name);
        w.put_u32(t.columns.len() as u32);
        let mut is_policy_col = Vec::with_capacity(t.columns.len());
        for c in &t.columns {
            w.put_str(&c.name);
            w.put_u8(match c.ty {
                ColumnType::Integer => 0,
                ColumnType::Text => 1,
            });
            is_policy_col.push(c.name.starts_with(POLICY_COL_PREFIX));
        }
        w.put_u64(t.rows.len() as u64);
        for row in &t.rows {
            for (i, v) in row.iter().enumerate() {
                encode_cell(&mut w, v, is_policy_col[i])?;
            }
        }
    }
    Ok(w.finish())
}

fn encode_cell(w: &mut SnapshotWriter, v: &Value, policy_col: bool) -> Result<()> {
    match v {
        Value::Null => w.put_u8(CELL_NULL),
        Value::Int(i) => {
            w.put_u8(CELL_INT);
            w.put_i64(*i);
        }
        Value::Text(s) if policy_col && !s.is_empty() => {
            if s.starts_with('#') {
                let refs = w.intern_spans_blob(s)?;
                w.put_u8(CELL_SPANS);
                w.put_span_refs(&refs);
            } else {
                let idxs = w.intern_label_blob(s)?;
                w.put_u8(CELL_LABEL);
                w.put_label_refs(&idxs);
            }
        }
        Value::Text(s) => {
            w.put_u8(CELL_TEXT);
            w.put_str(s);
        }
    }
    Ok(())
}

/// Encodes one table as a self-contained checkpoint part image: the
/// same wire format as a whole-catalog snapshot, holding exactly this
/// table (with its index definitions). Parts therefore decode without
/// the rest of the catalog — an unchanged part can carry over between
/// checkpoints by reference while its neighbors are re-encoded.
pub(crate) fn encode_table_part(name: &str, table: &Table) -> Result<Vec<u8>> {
    encode_tables(std::iter::once((name, table)))
}

/// Decodes a per-table part image back into its (name, table).
pub(crate) fn decode_table_part(image: &[u8]) -> Result<(String, Table)> {
    let mut tables = decode_tables(image)?;
    if tables.len() != 1 {
        return Err(SqlError::Storage(format!(
            "table part holds {} tables, expected 1",
            tables.len()
        )));
    }
    Ok(tables.pop_first().expect("len checked"))
}

/// Decodes recovered checkpoint parts — either one legacy whole-catalog
/// [`resin_store::IMAGE_PART`] image or per-table `tbl.*` parts — into
/// the table catalog.
pub(crate) fn decode_parts(parts: &[(String, Vec<u8>)]) -> Result<BTreeMap<String, Table>> {
    let mut out = BTreeMap::new();
    for (name, image) in parts {
        if name == resin_store::IMAGE_PART {
            out.extend(decode_tables(image)?);
        } else if name.starts_with(TABLE_PART_PREFIX) {
            let (tname, table) = decode_table_part(image)?;
            out.insert(tname, table);
        } else {
            return Err(SqlError::Storage(format!(
                "unknown checkpoint part `{name}`"
            )));
        }
    }
    Ok(out)
}

/// Decodes a snapshot image back into the table catalog.
pub(crate) fn decode_tables(image: &[u8]) -> Result<BTreeMap<String, Table>> {
    let mut r = SnapshotReader::parse(image)?;
    let mut out = BTreeMap::new();
    let n_tables = r.u32()?;
    for _ in 0..n_tables {
        let name = r.str()?;
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col_name = r.str()?;
            let ty = match r.u8()? {
                0 => ColumnType::Integer,
                1 => ColumnType::Text,
                other => {
                    return Err(SqlError::Storage(format!("unknown column type {other}")));
                }
            };
            columns.push(ColumnDef { name: col_name, ty });
        }
        let n_rows = r.u64()? as usize;
        let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                row.push(decode_cell(&mut r)?);
            }
            rows.push(row);
        }
        out.insert(
            name,
            Table {
                columns,
                rows,
                indexes: Vec::new(),
            },
        );
    }
    if let Some(meta) = out.remove(INDEX_META_TABLE) {
        apply_index_meta(&mut out, meta)?;
    }
    Ok(out)
}

/// Re-applies persisted index definitions: each index is rebuilt from
/// the decoded rows, so probe structures always match row storage.
fn apply_index_meta(tables: &mut BTreeMap<String, Table>, meta: Table) -> Result<()> {
    for row in &meta.rows {
        let field = |i: usize| {
            row.get(i)
                .and_then(Value::as_text)
                .ok_or_else(|| SqlError::Storage("malformed index catalog row".into()))
        };
        let (tbl, name, col, kind) = (field(0)?, field(1)?, field(2)?, field(3)?);
        let kind = kind_from_name(kind)
            .ok_or_else(|| SqlError::Storage(format!("unknown index kind `{kind}`")))?;
        let t = tables.get_mut(tbl).ok_or_else(|| {
            SqlError::Storage(format!("index catalog names missing table `{tbl}`"))
        })?;
        t.create_index(name, col, kind, false)?;
    }
    Ok(())
}

fn decode_cell(r: &mut SnapshotReader) -> Result<Value> {
    Ok(match r.u8()? {
        CELL_NULL => Value::Null,
        CELL_INT => Value::Int(r.i64()?),
        CELL_TEXT => Value::Text(r.str()?),
        CELL_SPANS => {
            let refs = r.span_refs()?;
            Value::Text(r.spans_blob(&refs)?)
        }
        CELL_LABEL => {
            let idxs = r.label_refs()?;
            Value::Text(r.label_blob(&idxs)?)
        }
        other => return Err(SqlError::Storage(format!("unknown cell tag {other}"))),
    })
}

/// Encodes a batch of post-guard statements (text + byte-range policies
/// each) as **one** WAL payload. A transaction commits its buffered
/// statements as a single record, so the whole commit is durable
/// atomically: one fsync, and a crash mid-commit can never persist a
/// prefix of the transaction.
pub(crate) fn encode_wal_batch(stmts: &[TaintedString]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + stmts.iter().map(|s| s.len() + 32).sum::<usize>());
    resin_store::io::put_u32(&mut buf, stmts.len() as u32);
    for sql in stmts {
        resin_store::io::put_str(&mut buf, sql.as_str());
        resin_store::io::put_str(&mut buf, &serialize_spans(sql));
    }
    buf
}

/// Decodes a WAL payload back into the tainted statements it logged.
pub(crate) fn decode_wal_batch(payload: &[u8]) -> Result<Vec<TaintedString>> {
    let mut c = resin_store::io::Cursor::new(payload);
    let n = c.u32().map_err(SqlError::from)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let text = c.str().map_err(SqlError::from)?;
        let spans = c.str().map_err(SqlError::from)?;
        out.push(deserialize_spans(&text, &spans)?);
    }
    Ok(out)
}

/// The SQL engine's handle on a durable [`Store`].
///
/// Like [`Store`] itself, this is a cheap `Clone` handle with `&self`
/// methods: concurrent committers call [`log_batch`](SqlStore::log_batch)
/// without any outer lock, so the store's group-commit queue can batch
/// their fsyncs.
#[derive(Debug, Clone)]
pub(crate) struct SqlStore {
    store: Store,
    /// Tables written (WAL-logged) since the last checkpoint — the set
    /// the next incremental checkpoint must re-encode. Shared across
    /// clones; callers mark it at their WAL seams.
    dirty: Arc<Mutex<HashSet<String>>>,
}

/// What [`SqlStore::open`] recovered.
pub(crate) struct SqlRecovered {
    /// Table catalog from the last checkpoint (empty if none).
    pub tables: BTreeMap<String, Table>,
    /// Tainted statements to replay, in commit order.
    pub replay: Vec<TaintedString>,
    /// True when a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
    /// True when the discarded tail also forced recovery to drop one or
    /// more *whole later segments* — a wider loss window than a single
    /// in-flight append, worth surfacing loudly.
    pub torn_cross_segment: bool,
}

impl SqlStore {
    /// Opens the store at `dir`, decoding the checkpoint parts and WAL.
    pub fn open(dir: impl AsRef<Path>) -> Result<(SqlStore, SqlRecovered)> {
        let (store, recovered) = Store::open(dir)?;
        let Recovered {
            snapshot: _,
            parts,
            records,
            torn_tail,
            torn_cross_segment,
        } = recovered;
        let tables = decode_parts(&parts)?;
        let mut replay = Vec::with_capacity(records.len());
        for payload in &records {
            replay.extend(decode_wal_batch(payload)?);
        }
        let sql_store = SqlStore {
            store,
            dirty: Arc::new(Mutex::new(HashSet::new())),
        };
        // Replayed statements post-date the checkpoint: their tables are
        // dirty until the next checkpoint re-encodes them. (The replay
        // pass upstream parses each statement again anyway; this extra
        // parse is recovery-only cost.)
        for sql in &replay {
            if let Ok(tokens) = crate::token::lex(sql.as_str()) {
                if let Ok(stmt) = crate::parser::parse(&tokens) {
                    if let Some(target) = crate::txn::statement_write_target(&stmt) {
                        sql_store.mark_dirty(target);
                    }
                }
            }
        }
        Ok((
            sql_store,
            SqlRecovered {
                tables,
                replay,
                torn_tail,
                torn_cross_segment,
            },
        ))
    }

    /// Marks one table as written since the last checkpoint.
    pub fn mark_dirty(&self, name: &str) {
        let mut dirty = mlock(&self.dirty);
        if !dirty.contains(name) {
            dirty.insert(name.to_string());
        }
    }

    /// Number of tables the next incremental checkpoint will re-encode.
    pub fn dirty_count(&self) -> usize {
        mlock(&self.dirty).len()
    }

    /// Appends one post-guard statement to the WAL.
    pub fn log(&self, sql: &TaintedString) -> Result<()> {
        self.log_batch(std::slice::from_ref(sql))
    }

    /// Appends a statement batch as one atomic WAL record (empty batches
    /// write nothing). Concurrent callers share fsyncs via the store's
    /// group-commit queue.
    pub fn log_batch(&self, stmts: &[TaintedString]) -> Result<()> {
        if stmts.is_empty() {
            return Ok(());
        }
        self.store.append(&encode_wal_batch(stmts))?;
        Ok(())
    }

    /// Checkpoints the catalog incrementally and resets the WAL: only
    /// tables marked dirty since the last checkpoint (plus tables whose
    /// part is missing — first checkpoint, or one migrated from a legacy
    /// whole-image snapshot) are re-encoded; clean tables carry their
    /// previous part over **by reference**, so checkpoint cost is
    /// O(changed data), not O(database).
    ///
    /// The caller must exclude concurrent durable writers for the whole
    /// call (`SharedDb` holds its checkpoint lock exclusively; `ResinDb`
    /// is `&mut`): the dirty set is snapshotted at entry and cleared
    /// wholesale on success.
    pub fn checkpoint<'a>(
        &self,
        tables: impl IntoIterator<Item = (&'a str, &'a Table)>,
    ) -> Result<()> {
        self.checkpoint_with(tables, false)
    }

    /// [`checkpoint`](SqlStore::checkpoint) with every table re-encoded
    /// regardless of dirtiness — the full-snapshot baseline.
    pub fn checkpoint_full<'a>(
        &self,
        tables: impl IntoIterator<Item = (&'a str, &'a Table)>,
    ) -> Result<()> {
        self.checkpoint_with(tables, true)
    }

    fn checkpoint_with<'a>(
        &self,
        tables: impl IntoIterator<Item = (&'a str, &'a Table)>,
        full: bool,
    ) -> Result<()> {
        let existing: HashSet<String> = self.store.part_names().into_iter().collect();
        let dirty: HashSet<String> = mlock(&self.dirty).clone();
        let mut parts = Vec::new();
        for (name, t) in tables {
            let part_name = table_part_name(name);
            if full || dirty.contains(name) || !existing.contains(&part_name) {
                parts.push(Part::new(part_name, encode_table_part(name, t)?));
            } else {
                parts.push(Part::unchanged(part_name));
            }
        }
        // Dropped tables simply don't appear: their parts leave the
        // manifest and the store garbage-collects the orphaned images.
        self.store.checkpoint_parts(parts)?;
        mlock(&self.dirty).clear();
        Ok(())
    }

    /// Live storage counters of the underlying store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Whether WAL appends fsync (see [`Store::set_sync`]).
    pub fn set_sync(&self, sync: bool) {
        self.store.set_sync(sync);
    }

    /// Whether concurrent synced appends share fsyncs (see
    /// [`Store::set_group_commit`]).
    pub fn set_group_commit(&self, group: bool) {
        self.store.set_group_commit(group);
    }

    /// Total fsyncs issued by the underlying store.
    pub fn sync_count(&self) -> u64 {
        self.store.sync_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn catalog_roundtrip_with_policy_columns() {
        let mut tables = BTreeMap::new();
        tables.insert(
            "users".to_string(),
            Table {
                columns: vec![
                    ColumnDef {
                        name: "name".into(),
                        ty: ColumnType::Text,
                    },
                    ColumnDef {
                        name: "n".into(),
                        ty: ColumnType::Integer,
                    },
                    ColumnDef {
                        name: "__rp_name".into(),
                        ty: ColumnType::Text,
                    },
                    ColumnDef {
                        name: "__rp_n".into(),
                        ty: ColumnType::Text,
                    },
                ],
                rows: vec![
                    vec![
                        Value::Text("alice".into()),
                        Value::Int(7),
                        Value::Text("#UntrustedData{}#0..5|0".into()),
                        Value::Text("UntrustedData{}".into()),
                    ],
                    vec![
                        Value::Text("bob".into()),
                        Value::Null,
                        Value::Text(String::new()),
                        Value::Null,
                    ],
                ],
                indexes: Vec::new(),
            },
        );
        let image = encode_tables(tables.iter().map(|(n, t)| (n.as_str(), t))).unwrap();
        let back = decode_tables(&image).unwrap();
        assert_eq!(back.len(), 1);
        let t = &back["users"];
        assert_eq!(t.columns, tables["users"].columns);
        assert_eq!(t.rows, tables["users"].rows);
    }

    #[test]
    fn policy_bodies_are_stored_once() {
        // 100 rows under the same policy: the image grows by fixed-size
        // span refs per row, not by 100 copies of the policy body.
        let blob =
            "#PasswordPolicy{email=averylonguser@example-corp-accounts.com;allow_chair=true}#0..5|0";
        let make = |rows: usize| {
            let table = Table {
                columns: vec![
                    ColumnDef {
                        name: "b".into(),
                        ty: ColumnType::Text,
                    },
                    ColumnDef {
                        name: "__rp_b".into(),
                        ty: ColumnType::Text,
                    },
                ],
                rows: (0..rows)
                    .map(|_| vec![Value::Text("hello".into()), Value::Text(blob.into())])
                    .collect(),
                indexes: Vec::new(),
            };
            let mut m = BTreeMap::new();
            m.insert("t".to_string(), table);
            encode_tables(m.iter().map(|(n, t)| (n.as_str(), t))).unwrap()
        };
        let one = make(1).len();
        let hundred = make(100).len();
        let per_row = (hundred - one) / 99;
        assert!(
            per_row < blob.len(),
            "per-row cost {per_row} must undercut the {}-byte blob",
            blob.len()
        );
        let body_hits = String::from_utf8_lossy(&make(100))
            .matches("PasswordPolicy")
            .count();
        assert_eq!(body_hits, 1, "policy body persisted once");
    }

    #[test]
    fn index_definitions_survive_snapshot_roundtrip() {
        use crate::ast::IndexKind;
        let mut table = Table {
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                ColumnDef {
                    name: "__rp_id".into(),
                    ty: ColumnType::Text,
                },
            ],
            rows: vec![
                vec![Value::Int(2), Value::Text(String::new())],
                vec![Value::Int(1), Value::Text(String::new())],
            ],
            indexes: Vec::new(),
        };
        table
            .create_index("ix_id", "id", IndexKind::Hash, false)
            .unwrap();
        table
            .create_index("ord_id", "id", IndexKind::Ordered, false)
            .unwrap();
        let mut tables = BTreeMap::new();
        tables.insert("t".to_string(), table);
        let image = encode_tables(tables.iter().map(|(n, t)| (n.as_str(), t))).unwrap();
        let back = decode_tables(&image).unwrap();
        assert_eq!(back.len(), 1, "meta table consumed, not surfaced");
        let t = &back["t"];
        let names: Vec<&str> = t.indexes().map(|ix| ix.name()).collect();
        assert_eq!(names, vec!["ix_id", "ord_id"]);
        let ord = t.indexes().find(|ix| ix.name() == "ord_id").unwrap();
        assert_eq!(ord.kind(), IndexKind::Ordered);
        assert_eq!(
            ord.ordered_ids_capped(false, usize::MAX),
            vec![1, 0],
            "rebuilt from decoded rows"
        );
    }

    #[test]
    fn wal_batch_roundtrip_revives_taint() {
        use resin_core::UntrustedData;
        use std::sync::Arc;
        let mut q = TaintedString::from("INSERT INTO t VALUES ('");
        q.push_tainted(&TaintedString::with_policy(
            "evil",
            Arc::new(UntrustedData::new()),
        ));
        q.push_str("')");
        let plain = TaintedString::from("DELETE FROM t");
        let payload = encode_wal_batch(&[q.clone(), plain.clone()]);
        let back = decode_wal_batch(&payload).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[0].taint_eq(&q));
        assert_eq!(back[0].as_str(), q.as_str());
        assert!(back[1].taint_eq(&plain));
        assert!(decode_wal_batch(&payload[..5]).is_err(), "truncated batch");
    }
}
