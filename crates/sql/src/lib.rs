//! # resin-sql — a SQL engine with RESIN persistent policies
//!
//! The database substrate for the RESIN reproduction: a from-scratch
//! in-memory SQL engine ([`engine::Database`]) wrapped by the RESIN SQL
//! filter ([`rewrite::ResinDb`]), which
//!
//! * rewrites `CREATE TABLE` to add a shadow **policy column** per data
//!   column, stores each cell's serialized policies on write, and revives
//!   them on read (§3.4.1, Figure 4);
//! * enforces the SQL-injection data flow assertion on the query channel in
//!   any of the paper's three formulations (§5.3): sanitizer-marker
//!   checking, structure-taint checking, and the tolerant-tokenizer
//!   auto-sanitizing variation.
//!
//! # Examples
//!
//! ```
//! use resin_core::prelude::*;
//! use resin_sql::{GuardMode, ResinDb};
//! use std::sync::Arc;
//!
//! let mut db = ResinDb::new();
//! db.set_guard(GuardMode::StructureCheck);
//! db.query_str("CREATE TABLE users (name TEXT, pw TEXT)").unwrap();
//!
//! // A hostile, untrusted input cannot change the query's structure.
//! let evil = TaintedString::with_policy("x' OR '1'='1",
//!                                       Arc::new(UntrustedData::new()));
//! let mut q = TaintedString::from("SELECT pw FROM users WHERE name = '");
//! q.push_tainted(&evil);
//! q.push_str("'");
//! assert!(db.query(&q).unwrap_err().is_violation());
//! ```

pub mod ast;
pub mod durable;
pub mod engine;
pub mod error;
pub mod index;
pub mod parser;
pub mod plan;
pub mod replica;
pub mod rewrite;
pub mod shard;
pub mod token;
pub mod txn;
pub mod value;

pub use ast::{IndexKind, Statement};
pub use engine::{Database, QueryResult, Table};
pub use error::{Result, SqlError};
pub use index::Index;
pub use replica::Follower;
pub use resin_store::segment;
pub use resin_store::{ship, ShipReport, StoreStats};
pub use rewrite::{
    BindValue, BoundStatement, GuardMode, Prepared, ResinDb, SqlGuardFilter, TCell, TaintedResult,
    Tracking, POLICY_COL_PREFIX,
};
pub use shard::{ShardedDatabase, SharedDb, SharedIntegrityCheck, SharedTransaction};
pub use txn::{IntegrityCheck, Transaction};
pub use value::Value;
