//! Read replicas: a [`Follower`] tails a shipped store directory.
//!
//! The primary's durable artifacts are shipped (rsync-style, see
//! [`resin_store::ship`]) into a replica directory; a `Follower` opens
//! that directory **read-only** — no store lock, no mutation — decodes
//! the last shipped checkpoint into an in-memory [`SharedDb`], and
//! replays the shipped WAL tail through the *identical*
//! rewrite-and-replay pipeline the primary's own crash recovery uses.
//! Replica reads therefore revive byte- and label-identical cells: a
//! policy can no more be laundered through a replica than through the
//! primary, because the replica runs the same policy-column rewriting
//! and its gates enforce the same `export_check`s.
//!
//! Consistency model: a follower is *eventually consistent* with the
//! primary — [`applied_seq`](Follower::applied_seq) is the watermark of
//! the last WAL record applied, and [`lag`](Follower::lag) against the
//! primary's current sequence number quantifies staleness. Reads are
//! always *self-consistent* (a complete prefix of the primary's WAL
//! order), never torn: [`catch_up`](Follower::catch_up) stops at a
//! partially shipped frame and resumes once the next ship completes it.
//!
//! The follower's database handle is **not** write-protected at this
//! layer — it is an ordinary in-memory `SharedDb` — so serving layers
//! must route writes to the primary (resin-net's `--replica` mode
//! rejects mutating endpoints). A write applied locally would silently
//! diverge from the primary and be overwritten by no one: replay never
//! rewinds, it only appends.

use std::path::{Path, PathBuf};

#[cfg(test)]
use resin_core::TaintedString;

use crate::durable::{decode_parts, decode_wal_batch};
use crate::error::Result;
use crate::rewrite::{GuardMode, Tracking};
use crate::shard::SharedDb;

/// A read replica: an in-memory [`SharedDb`] kept in sync with a
/// shipped store directory by replaying its WAL tail.
pub struct Follower {
    db: SharedDb,
    dir: PathBuf,
    applied_seq: u64,
    torn: bool,
}

impl Follower {
    /// Opens a follower over the shipped store directory `dir`:
    /// decodes the last shipped checkpoint, then applies the shipped
    /// WAL tail. Tracking on, guard off — see
    /// [`open_with_modes`](Follower::open_with_modes).
    pub fn open(dir: impl AsRef<Path>) -> Result<Follower> {
        Self::open_with_modes(dir, Tracking::On, GuardMode::Off)
    }

    /// [`open`](Follower::open) with explicit tracking and guard
    /// settings — use the same tracking mode the primary was written
    /// under, exactly as when reopening the primary itself.
    pub fn open_with_modes(
        dir: impl AsRef<Path>,
        tracking: Tracking,
        guard: GuardMode,
    ) -> Result<Follower> {
        let dir = dir.as_ref().to_path_buf();
        let (base_seq, tables) = match resin_store::read_checkpoint(&dir)? {
            Some((base_seq, parts)) => (base_seq, decode_parts(&parts)?),
            None => (0, Default::default()),
        };
        let db = SharedDb::from_tables(tables, tracking, guard);
        let mut follower = Follower {
            db,
            dir,
            applied_seq: base_seq,
            torn: false,
        };
        follower.catch_up()?;
        Ok(follower)
    }

    /// Applies every newly shipped WAL record, returning how many were
    /// applied. Statements replay through the same pipeline as primary
    /// crash recovery; one that failed execution on the primary fails
    /// identically here and is skipped. Idempotent: records at or below
    /// the watermark are never re-applied.
    ///
    /// If the primary checkpointed and compacted records *before they
    /// were ever shipped*, the shipped log has a sequence gap above the
    /// watermark. The follower detects the gap and rebuilds from the
    /// shipped checkpoint — which by construction covers every record
    /// at or below its base sequence number — then resumes tailing.
    pub fn catch_up(&mut self) -> Result<u64> {
        let mut tailed = resin_store::tail_records(&self.dir, self.applied_seq)?;
        let contiguous = tailed.records.first().map(|r| r.seq) == Some(self.applied_seq + 1);
        if !contiguous && resin_store::checkpoint_base_seq(&self.dir)? > Some(self.applied_seq) {
            if let Some((base_seq, parts)) = resin_store::read_checkpoint(&self.dir)? {
                self.db.reset_tables(decode_parts(&parts)?);
                self.applied_seq = base_seq;
                tailed = resin_store::tail_records(&self.dir, self.applied_seq)?;
            }
        }
        self.torn = tailed.torn;
        let mut applied = 0u64;
        for record in &tailed.records {
            for sql in decode_wal_batch(&record.payload)? {
                let _ = self.db.replay(&sql);
            }
            self.applied_seq = record.seq;
            applied += 1;
        }
        Ok(applied)
    }

    /// The read-serving database. Clone the handle freely; route writes
    /// to the primary (see the module docs).
    pub fn db(&self) -> &SharedDb {
        &self.db
    }

    /// Sequence number of the last WAL record applied — the replica's
    /// consistency watermark.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Records this replica is behind a primary whose current sequence
    /// number is `primary_seq` (from `SharedDb::store_stats().seq`).
    pub fn lag(&self, primary_seq: u64) -> u64 {
        primary_seq.saturating_sub(self.applied_seq)
    }

    /// True when the last [`catch_up`](Follower::catch_up) stopped at a
    /// partially shipped frame (the next ship will complete it).
    pub fn shipped_tail_torn(&self) -> bool {
        self.torn
    }

    /// Replays one already-decoded statement (crate-internal: tests and
    /// divergence diagnostics).
    #[cfg(test)]
    pub(crate) fn apply_raw(&self, sql: &TaintedString) -> Result<()> {
        self.db.replay(sql)
    }
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower")
            .field("dir", &self.dir)
            .field("applied_seq", &self.applied_seq)
            .field("torn", &self.torn)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::UntrustedData;
    use std::sync::Arc;

    fn dirs(tag: &str) -> (PathBuf, PathBuf) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let base =
            std::env::temp_dir().join(format!("resin-follower-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("primary"), base.join("replica"))
    }

    fn untrusted(s: &str) -> TaintedString {
        TaintedString::with_policy(s, Arc::new(UntrustedData::new()))
    }

    #[test]
    fn follower_serves_byte_and_label_identical_reads() {
        let (primary_dir, replica_dir) = dirs("identical");
        let db = SharedDb::open(&primary_dir).unwrap();
        db.set_wal_sync(false);
        db.query_str("CREATE TABLE posts (id INTEGER, body TEXT)")
            .unwrap();
        let mut q = TaintedString::from("INSERT INTO posts VALUES (1, '");
        q.push_tainted(&untrusted("tainted body"));
        q.push_str("')");
        db.query(&q).unwrap();
        db.checkpoint().unwrap();
        db.query_str("INSERT INTO posts VALUES (2, 'post-checkpoint')")
            .unwrap();

        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        let follower = Follower::open(&replica_dir).unwrap();
        let r_primary = db.query_str("SELECT id, body FROM posts").unwrap();
        let r_replica = follower
            .db()
            .query_str("SELECT id, body FROM posts")
            .unwrap();
        assert_eq!(r_primary.rows.len(), 2);
        assert_eq!(r_replica.rows.len(), 2);
        for (a, b) in r_primary.rows.iter().zip(&r_replica.rows) {
            for (ca, cb) in a.iter().zip(b) {
                match (ca.as_text(), cb.as_text()) {
                    (Some(ta), Some(tb)) => {
                        assert_eq!(ta.as_str(), tb.as_str(), "byte-identical");
                        assert!(ta.taint_eq(tb), "label-identical");
                    }
                    _ => assert_eq!(ca.as_int().unwrap().value(), cb.as_int().unwrap().value()),
                }
            }
        }
        let body = r_replica.cell(0, "body").unwrap().as_text().unwrap();
        assert!(
            body.has_policy::<UntrustedData>(),
            "policies revive on the replica"
        );
        std::fs::remove_dir_all(primary_dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn catch_up_tracks_the_watermark_and_lag() {
        let (primary_dir, replica_dir) = dirs("lag");
        let db = SharedDb::open(&primary_dir).unwrap();
        db.set_wal_sync(false);
        db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
        db.query_str("INSERT INTO t VALUES (1)").unwrap();
        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        let mut follower = Follower::open(&replica_dir).unwrap();
        assert_eq!(follower.applied_seq(), 2);
        assert_eq!(follower.lag(db.store_stats().unwrap().seq), 0);

        // The primary advances; lag is visible until ship + catch_up.
        db.query_str("INSERT INTO t VALUES (2)").unwrap();
        db.query_str("INSERT INTO t VALUES (3)").unwrap();
        let primary_seq = db.store_stats().unwrap().seq;
        assert_eq!(follower.lag(primary_seq), 2);
        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        assert_eq!(follower.catch_up().unwrap(), 2);
        assert_eq!(follower.lag(primary_seq), 0);
        let r = follower.db().query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &3);
        // Idempotent: nothing new to apply.
        assert_eq!(follower.catch_up().unwrap(), 0);
        std::fs::remove_dir_all(primary_dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn follower_survives_primary_checkpoint_compaction() {
        // After the follower opens, the primary checkpoints (compacting
        // shipped segments away at the source). The replica keeps its
        // already-shipped segments, so catch_up never loses records; a
        // *fresh* follower starts from the shipped checkpoint instead.
        let (primary_dir, replica_dir) = dirs("compact");
        let db = SharedDb::open(&primary_dir).unwrap();
        db.set_wal_sync(false);
        db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        let mut follower = Follower::open(&replica_dir).unwrap();

        db.query_str("INSERT INTO t VALUES (1)").unwrap();
        db.checkpoint().unwrap();
        db.query_str("INSERT INTO t VALUES (2)").unwrap();
        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        follower.catch_up().unwrap();
        let r = follower.db().query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);

        let fresh = Follower::open(&replica_dir).unwrap();
        let r = fresh.db().query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &2);
        assert_eq!(fresh.applied_seq(), follower.applied_seq());
        std::fs::remove_dir_all(primary_dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn local_divergence_is_not_masked_by_replay() {
        // A write applied directly to the follower's db (a serving-layer
        // bug) diverges; replay does not rewind it. This documents why
        // the net layer must reject writes on replicas.
        let (primary_dir, replica_dir) = dirs("diverge");
        let db = SharedDb::open(&primary_dir).unwrap();
        db.set_wal_sync(false);
        db.query_str("CREATE TABLE t (a INTEGER)").unwrap();
        resin_store::ship(&primary_dir, &replica_dir).unwrap();
        let follower = Follower::open(&replica_dir).unwrap();
        follower
            .apply_raw(&TaintedString::from("INSERT INTO t VALUES (99)"))
            .unwrap();
        let r = follower.db().query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &1, "diverged");
        let r = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_int().unwrap().value(), &0);
        std::fs::remove_dir_all(primary_dir.parent().unwrap()).unwrap();
    }
}
