//! Secondary indexes over a [`Table`](crate::Table)'s row storage.
//!
//! An index maps **raw cell values** to row ids (positions in
//! `Table::rows`). It stores no cell payloads and no labels: a probe
//! yields candidate row ids, and the executor re-materializes each row
//! from `t.rows`, where every cell still carries its exact [`Label`]
//! (via the `__rp_` policy columns managed by [`crate::rewrite`]).
//! Structurally, therefore, an index probe can never launder a policy —
//! the exported cells are the very same cells a full scan would export,
//! bit-identical in value and per-byte labels (§3.4 closed-under-storage
//! discipline).
//!
//! [`Label`]: resin_core::label::Label
//!
//! # Typed keys and the residue set
//!
//! [`Value::compare`] is deliberately lenient across types (an `Int(5)`
//! cell equals a `'5'` text cell, the PHP-flavoured semantics the paper's
//! apps rely on), but that leniency is **not transitive**:
//! `Int(5) == Text("5")`, yet `Int(10) < Text("5")` while
//! `Int(5) < Int(10)`. A single ordered map over mixed-type keys would
//! therefore be unsound. Instead each index is typed by its column's
//! *declared* [`ColumnType`]: cells of that type go into the key map;
//! NULLs and cells of any other runtime type go into a small `residue`
//! id set that every probe appends to its candidates. The executor
//! re-evaluates the full predicate on all candidates, so probes stay
//! exact (candidate set ⊇ match set is the only invariant the index must
//! uphold). Ordered iteration (ORDER BY pushdown) is offered only while
//! the residue is empty.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::ast::{ColumnDef, ColumnType, IndexKind};
use crate::error::{Result, SqlError};
use crate::value::Value;

/// A posting list: row ids in ascending order (scan order), so probe
/// results iterate rows exactly as a full scan would.
type Postings = Vec<usize>;

/// The key → postings storage, specialized by kind and declared type.
#[derive(Debug, Clone)]
enum KeyMap {
    HashInt(HashMap<i64, Postings>),
    HashText(HashMap<String, Postings>),
    OrdInt(BTreeMap<i64, Postings>),
    OrdText(BTreeMap<String, Postings>),
}

/// A secondary index over one column of one table.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique within its table).
    pub(crate) name: String,
    /// Indexed column name.
    pub(crate) column: String,
    /// Hash or ordered.
    pub(crate) kind: IndexKind,
    /// Position of the indexed column in row storage.
    pub(crate) col: usize,
    /// Declared type of the indexed column (= key type).
    key_ty: ColumnType,
    map: KeyMap,
    /// Row ids whose cell is NULL or not of `key_ty`, ascending.
    residue: Postings,
}

impl Index {
    /// Builds an index over `column` from existing rows.
    pub(crate) fn build(
        name: &str,
        column: &str,
        kind: IndexKind,
        columns: &[ColumnDef],
        rows: &[Vec<Value>],
    ) -> Result<Index> {
        let col = columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| SqlError::schema(format!("no column `{column}` to index")))?;
        let key_ty = columns[col].ty;
        let map = match (kind, key_ty) {
            (IndexKind::Hash, ColumnType::Integer) => KeyMap::HashInt(HashMap::new()),
            (IndexKind::Hash, ColumnType::Text) => KeyMap::HashText(HashMap::new()),
            (IndexKind::Ordered, ColumnType::Integer) => KeyMap::OrdInt(BTreeMap::new()),
            (IndexKind::Ordered, ColumnType::Text) => KeyMap::OrdText(BTreeMap::new()),
        };
        let mut ix = Index {
            name: name.to_string(),
            column: column.to_string(),
            kind,
            col,
            key_ty,
            map,
            residue: Vec::new(),
        };
        for (id, row) in rows.iter().enumerate() {
            ix.add(id, &row[col]);
        }
        Ok(ix)
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Hash or ordered.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// True when ordered iteration is available *and* exact: a B-tree
    /// keyed map with no residue rows (no NULL / off-type cells whose
    /// position in `Value::compare` order the key map cannot represent).
    pub(crate) fn supports_ordered_iteration(&self) -> bool {
        self.kind == IndexKind::Ordered && self.residue.is_empty()
    }

    /// Row ids the key map cannot hold (NULL or off-type cells).
    pub(crate) fn residue(&self) -> &[usize] {
        &self.residue
    }

    /// Registers row `id` (which must exceed all present ids) under `cell`.
    pub(crate) fn add(&mut self, id: usize, cell: &Value) {
        match (&mut self.map, cell) {
            (KeyMap::HashInt(m), Value::Int(k)) => m.entry(*k).or_default().push(id),
            (KeyMap::OrdInt(m), Value::Int(k)) => m.entry(*k).or_default().push(id),
            (KeyMap::HashText(m), Value::Text(k)) => m.entry(k.clone()).or_default().push(id),
            (KeyMap::OrdText(m), Value::Text(k)) => m.entry(k.clone()).or_default().push(id),
            _ => self.residue.push(id),
        }
    }

    /// Moves row `id` from key `old` to key `new` (UPDATE maintenance).
    /// Bucket order is restored by binary insertion so posting lists stay
    /// ascending (probe output must keep scan order).
    pub(crate) fn replace(&mut self, id: usize, old: &Value, new: &Value) {
        self.remove(id, old);
        self.insert_sorted(id, new);
    }

    fn remove(&mut self, id: usize, cell: &Value) {
        fn drop_id<K: std::cmp::Eq + std::hash::Hash>(
            m: &mut HashMap<K, Postings>,
            k: &K,
            id: usize,
        ) {
            if let Some(v) = m.get_mut(k) {
                v.retain(|&x| x != id);
                if v.is_empty() {
                    m.remove(k);
                }
            }
        }
        fn drop_id_ord<K: Ord>(m: &mut BTreeMap<K, Postings>, k: &K, id: usize) {
            if let Some(v) = m.get_mut(k) {
                v.retain(|&x| x != id);
                if v.is_empty() {
                    m.remove(k);
                }
            }
        }
        match (&mut self.map, cell) {
            (KeyMap::HashInt(m), Value::Int(k)) => drop_id(m, k, id),
            (KeyMap::OrdInt(m), Value::Int(k)) => drop_id_ord(m, k, id),
            (KeyMap::HashText(m), Value::Text(k)) => drop_id(m, k, id),
            (KeyMap::OrdText(m), Value::Text(k)) => drop_id_ord(m, k, id),
            _ => self.residue.retain(|&x| x != id),
        }
    }

    fn insert_sorted(&mut self, id: usize, cell: &Value) {
        fn put(v: &mut Postings, id: usize) {
            let at = v.partition_point(|&x| x < id);
            v.insert(at, id);
        }
        match (&mut self.map, cell) {
            (KeyMap::HashInt(m), Value::Int(k)) => put(m.entry(*k).or_default(), id),
            (KeyMap::OrdInt(m), Value::Int(k)) => put(m.entry(*k).or_default(), id),
            (KeyMap::HashText(m), Value::Text(k)) => put(m.entry(k.clone()).or_default(), id),
            (KeyMap::OrdText(m), Value::Text(k)) => put(m.entry(k.clone()).or_default(), id),
            _ => put(&mut self.residue, id),
        }
    }

    /// Applies a DELETE: `hits` are the removed row ids, ascending. Hit
    /// ids are dropped from every posting list and surviving ids are
    /// shifted down by the number of removed rows below them, mirroring
    /// the compaction `table_delete` performs on `t.rows`.
    pub(crate) fn apply_delete(&mut self, hits: &[usize]) {
        let fix = |v: &mut Postings| {
            v.retain_mut(|id| match hits.binary_search(id) {
                Ok(_) => false,
                Err(below) => {
                    *id -= below;
                    true
                }
            });
        };
        match &mut self.map {
            KeyMap::HashInt(m) => m.retain(|_, v| {
                fix(v);
                !v.is_empty()
            }),
            KeyMap::HashText(m) => m.retain(|_, v| {
                fix(v);
                !v.is_empty()
            }),
            KeyMap::OrdInt(m) => m.retain(|_, v| {
                fix(v);
                !v.is_empty()
            }),
            KeyMap::OrdText(m) => m.retain(|_, v| {
                fix(v);
                !v.is_empty()
            }),
        }
        fix(&mut self.residue);
    }

    /// True when `lit` has the index's key type, i.e. the key map alone
    /// (plus residue) covers every row that could match `column = lit`
    /// under lenient comparison. Off-type literals (e.g. `'5'` against an
    /// INTEGER index) may leniently match typed cells the probe would
    /// miss, so the planner must fall back to a scan for them.
    pub(crate) fn covers_literal(&self, lit: &Value) -> bool {
        matches!(
            (self.key_ty, lit),
            (ColumnType::Integer, Value::Int(_)) | (ColumnType::Text, Value::Text(_))
        )
    }

    /// Candidate row ids for `column = key` (the key-map bucket; residue
    /// is appended by the caller). `key` must satisfy [`covers_literal`].
    ///
    /// [`covers_literal`]: Index::covers_literal
    pub(crate) fn probe_eq(&self, key: &Value) -> &[usize] {
        match (&self.map, key) {
            (KeyMap::HashInt(m), Value::Int(k)) => m.get(k).map_or(&[], |v| v),
            (KeyMap::OrdInt(m), Value::Int(k)) => m.get(k).map_or(&[], |v| v),
            (KeyMap::HashText(m), Value::Text(k)) => m.get(k).map_or(&[], |v| v),
            (KeyMap::OrdText(m), Value::Text(k)) => m.get(k).map_or(&[], |v| v),
            _ => &[],
        }
    }

    /// Candidate row ids for a key range, in **key order** (ties in row
    /// order; reversed for `desc`). Only valid on ordered indexes with
    /// in-type bounds.
    pub(crate) fn probe_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
        desc: bool,
    ) -> Vec<usize> {
        fn collect<K: Ord + Clone>(
            m: &BTreeMap<K, Postings>,
            lo: Bound<&K>,
            hi: Bound<&K>,
            desc: bool,
        ) -> Vec<usize> {
            let lo = lo.cloned();
            let hi = hi.cloned();
            // An inverted range (lo > hi) would panic in BTreeMap::range;
            // it simply matches nothing.
            if let (
                Bound::Included(a) | Bound::Excluded(a),
                Bound::Included(b) | Bound::Excluded(b),
            ) = (&lo, &hi)
            {
                if a > b {
                    return Vec::new();
                }
                if a == b
                    && matches!(
                        (&lo, &hi),
                        (Bound::Excluded(_), _) | (_, Bound::Excluded(_))
                    )
                {
                    return Vec::new();
                }
            }
            let iter = m.range((lo, hi));
            let mut out = Vec::new();
            if desc {
                for (_, v) in iter.rev() {
                    out.extend_from_slice(v);
                }
            } else {
                for (_, v) in iter {
                    out.extend_from_slice(v);
                }
            }
            out
        }
        fn as_int(b: Bound<&Value>) -> Bound<&i64> {
            match b {
                Bound::Included(Value::Int(k)) => Bound::Included(k),
                Bound::Excluded(Value::Int(k)) => Bound::Excluded(k),
                _ => Bound::Unbounded,
            }
        }
        fn as_text(b: Bound<&Value>) -> Bound<&String> {
            match b {
                Bound::Included(Value::Text(k)) => Bound::Included(k),
                Bound::Excluded(Value::Text(k)) => Bound::Excluded(k),
                _ => Bound::Unbounded,
            }
        }
        match &self.map {
            KeyMap::OrdInt(m) => collect(m, as_int(lo), as_int(hi), desc),
            KeyMap::OrdText(m) => collect(m, as_text(lo), as_text(hi), desc),
            // Hash maps cannot serve ranges; the planner never asks.
            KeyMap::HashInt(_) | KeyMap::HashText(_) => Vec::new(),
        }
    }

    /// All row ids in key order (ties ascending; keys reversed for
    /// `desc`), stopping once `cap` ids are collected — the LIMIT
    /// pushdown for order-only iteration, which turns `ORDER BY k
    /// LIMIT n` from O(table) into O(n) on a big table. The result may
    /// overshoot `cap` by a partial bucket; the caller truncates. Only
    /// meaningful when [`supports_ordered_iteration`] holds.
    ///
    /// [`supports_ordered_iteration`]: Index::supports_ordered_iteration
    pub(crate) fn ordered_ids_capped(&self, desc: bool, cap: usize) -> Vec<usize> {
        fn collect<K>(m: &BTreeMap<K, Postings>, desc: bool, cap: usize) -> Vec<usize> {
            let mut out = Vec::new();
            let iter = m.values();
            if desc {
                for v in iter.rev() {
                    out.extend_from_slice(v);
                    if out.len() >= cap {
                        break;
                    }
                }
            } else {
                for v in iter {
                    out.extend_from_slice(v);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
            out
        }
        match &self.map {
            KeyMap::OrdInt(m) => collect(m, desc, cap),
            KeyMap::OrdText(m) => collect(m, desc, cap),
            // Hash maps have no key order; the planner never asks.
            KeyMap::HashInt(_) | KeyMap::HashText(_) => Vec::new(),
        }
    }

    /// Number of distinct keys (diagnostics / tests).
    pub fn key_count(&self) -> usize {
        match &self.map {
            KeyMap::HashInt(m) => m.len(),
            KeyMap::HashText(m) => m.len(),
            KeyMap::OrdInt(m) => m.len(),
            KeyMap::OrdText(m) => m.len(),
        }
    }
}

/// Renders an [`IndexKind`] the way `CREATE INDEX ... USING` spells it.
pub(crate) fn kind_name(kind: IndexKind) -> &'static str {
    match kind {
        IndexKind::Hash => "HASH",
        IndexKind::Ordered => "BTREE",
    }
}

/// Parses a [`kind_name`] back (durable catalog decoding).
pub(crate) fn kind_from_name(s: &str) -> Option<IndexKind> {
    match s {
        "HASH" => Some(IndexKind::Hash),
        "BTREE" => Some(IndexKind::Ordered),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "id".into(),
                ty: ColumnType::Integer,
            },
            ColumnDef {
                name: "name".into(),
                ty: ColumnType::Text,
            },
        ]
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(10), Value::Text("b".into())],
            vec![Value::Int(5), Value::Text("a".into())],
            vec![Value::Null, Value::Text("c".into())],
            vec![Value::Int(5), Value::Text("a".into())],
        ]
    }

    #[test]
    fn eq_probe_and_residue() {
        let ix = Index::build("i", "id", IndexKind::Hash, &cols(), &rows()).unwrap();
        assert_eq!(ix.probe_eq(&Value::Int(5)), &[1, 3]);
        assert_eq!(ix.probe_eq(&Value::Int(99)), &[] as &[usize]);
        assert_eq!(ix.residue(), &[2], "NULL cell lands in residue");
        assert!(ix.covers_literal(&Value::Int(1)));
        assert!(!ix.covers_literal(&Value::Text("5".into())));
    }

    #[test]
    fn ordered_range_and_iteration() {
        let ix = Index::build("i", "id", IndexKind::Ordered, &cols(), &rows()).unwrap();
        let got = ix.probe_range(
            Bound::Included(&Value::Int(5)),
            Bound::Excluded(&Value::Int(10)),
            false,
        );
        assert_eq!(got, vec![1, 3]);
        assert_eq!(ix.ordered_ids_capped(false, usize::MAX), vec![1, 3, 0]);
        assert_eq!(
            ix.ordered_ids_capped(true, usize::MAX),
            vec![0, 1, 3],
            "ties stay ascending"
        );
        assert_eq!(
            ix.ordered_ids_capped(false, 2),
            vec![1, 3],
            "cap stops after the bucket that crosses it"
        );
        assert!(!ix.supports_ordered_iteration(), "residue row blocks it");
    }

    #[test]
    fn inverted_range_is_empty() {
        let ix = Index::build("i", "id", IndexKind::Ordered, &cols(), &rows()).unwrap();
        let got = ix.probe_range(
            Bound::Included(&Value::Int(10)),
            Bound::Included(&Value::Int(5)),
            false,
        );
        assert!(got.is_empty());
        let got = ix.probe_range(
            Bound::Excluded(&Value::Int(5)),
            Bound::Included(&Value::Int(5)),
            false,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn replace_keeps_buckets_sorted() {
        let mut ix = Index::build("i", "id", IndexKind::Ordered, &cols(), &rows()).unwrap();
        // Move row 0 (key 10) to key 5: bucket must become [0, 1, 3].
        ix.replace(0, &Value::Int(10), &Value::Int(5));
        assert_eq!(ix.probe_eq(&Value::Int(5)), &[0, 1, 3]);
        assert_eq!(ix.probe_eq(&Value::Int(10)), &[] as &[usize]);
        // Move row 1 to NULL: residue must stay sorted.
        ix.replace(1, &Value::Int(5), &Value::Null);
        assert_eq!(ix.residue(), &[1, 2]);
    }

    #[test]
    fn apply_delete_remaps_ids() {
        let mut ix = Index::build("i", "id", IndexKind::Ordered, &cols(), &rows()).unwrap();
        // Delete rows 1 and 2: survivors 0 and 3 become ids 0 and 1.
        ix.apply_delete(&[1, 2]);
        assert_eq!(ix.probe_eq(&Value::Int(10)), &[0]);
        assert_eq!(ix.probe_eq(&Value::Int(5)), &[1]);
        assert!(ix.residue().is_empty());
        assert_eq!(ix.key_count(), 2);
    }
}
