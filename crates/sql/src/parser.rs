//! Recursive-descent SQL parser.

use crate::ast::{
    BinOp, ColumnDef, ColumnType, Expr, IndexKind, LitValue, Literal, Projection, SelectStmt,
    Statement,
};
use crate::error::{Result, SqlError};
use crate::token::{Tok, Token};

/// Parses a token stream (from [`crate::token::lex`]) into a statement.
pub fn parse(tokens: &[Token]) -> Result<Statement> {
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // Allow one trailing semicolon.
    p.eat_punct(';');
    if !p.at_end() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

/// Parses a query string directly (lex + parse).
pub fn parse_str(src: &str) -> Result<Statement> {
    parse(&crate::token::lex(src)?)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos: self.pos,
            message: msg.into(),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Some(Tok::Kw(k)) if k == kw => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        match self.peek() {
            Some(Tok::Punct(p)) if *p == c => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let n = name.clone();
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Tok::Kw(k)) => match k.as_str() {
                "SELECT" => self.select().map(Statement::Select),
                "INSERT" => self.insert(),
                "CREATE" => self.create(),
                "DROP" => self.drop(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                other => Err(self.err(format!("unsupported statement `{other}`"))),
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if matches!(self.peek(), Some(Tok::Kw(k)) if k == "INDEX") {
            return self.create_index();
        }
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_punct('(')?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        loop {
            let col = self.ident()?;
            let ty = match self.peek() {
                Some(Tok::Kw(k)) if k == "INTEGER" => {
                    self.pos += 1;
                    ColumnType::Integer
                }
                Some(Tok::Kw(k)) if k == "TEXT" => {
                    self.pos += 1;
                    ColumnType::Text
                }
                other => return Err(self.err(format!("expected column type, found {other:?}"))),
            };
            // `PRIMARY KEY` marks the column; the engine builds an ordered
            // index `pk_<table>` on it.
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                if primary_key.is_some() {
                    return Err(self.err("multiple PRIMARY KEY columns"));
                }
                primary_key = Some(col.clone());
            }
            columns.push(ColumnDef { name: col, ty });
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
            primary_key,
        })
    }

    /// `CREATE INDEX [IF NOT EXISTS] name ON table (column) [USING HASH|BTREE]`
    fn create_index(&mut self) -> Result<Statement> {
        self.expect_kw("INDEX")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_punct('(')?;
        let column = self.ident()?;
        self.expect_punct(')')?;
        let kind = if self.eat_kw("USING") {
            if self.eat_kw("HASH") {
                IndexKind::Hash
            } else if self.eat_kw("BTREE") {
                IndexKind::Ordered
            } else {
                return Err(self.err(format!("expected HASH or BTREE, found {:?}", self.peek())));
            }
        } else {
            IndexKind::Ordered
        };
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            kind,
            if_not_exists,
        })
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            return Ok(Statement::DropIndex { name, table });
        }
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        Ok(Statement::DropTable { name })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_punct('(') {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
            rows.push(row);
            if !self.eat_punct(',') {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let projection = if self.eat_punct('*') {
            Projection::Star
        } else if self.eat_kw("COUNT") {
            self.expect_punct('(')?;
            self.expect_punct('*')?;
            self.expect_punct(')')?;
            Projection::CountStar
        } else {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            Projection::Columns(cols)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.ident()?;
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                self.eat_kw("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.next().map(|t| &t.tok) {
                Some(Tok::Num(n)) if *n >= 0 => Some(*n as usize),
                other => return Err(self.err(format!("expected limit count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            table,
            where_clause,
            order_by,
            limit,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            match self.peek() {
                Some(Tok::Op("=")) => {
                    self.pos += 1;
                }
                other => return Err(self.err(format!("expected `=`, found {other:?}"))),
            }
            assignments.push((col, self.expr()?));
            if !self.eat_punct(',') {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    // Expression grammar: or_expr > and_expr > not_expr > cmp > primary.

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.primary()?;
        let op = match self.peek() {
            Some(Tok::Op("=")) => Some(BinOp::Eq),
            Some(Tok::Op("!=")) => Some(BinOp::Ne),
            Some(Tok::Op("<")) => Some(BinOp::Lt),
            Some(Tok::Op("<=")) => Some(BinOp::Le),
            Some(Tok::Op(">")) => Some(BinOp::Gt),
            Some(Tok::Op(">=")) => Some(BinOp::Ge),
            Some(Tok::Kw(k)) if k == "LIKE" => Some(BinOp::Like),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.primary()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_punct('(')?;
            let mut list = Vec::new();
            loop {
                list.push(self.primary()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        } else if negated {
            return Err(self.err("expected IN after NOT"));
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_punct('(') {
            let e = self.expr()?;
            self.expect_punct(')')?;
            return Ok(e);
        }
        let token = self
            .next()
            .ok_or_else(|| SqlError::Parse {
                pos: self.pos,
                message: "unexpected end of query".into(),
            })?
            .clone();
        match token.tok {
            Tok::Num(n) => Ok(Expr::Lit(Literal {
                value: LitValue::Int(n),
                span: token.span,
            })),
            Tok::Str(s) => Ok(Expr::Lit(Literal {
                value: LitValue::Text(s),
                span: token.span,
            })),
            Tok::Kw(ref k) if k == "NULL" => Ok(Expr::Lit(Literal {
                value: LitValue::Null,
                span: token.span,
            })),
            Tok::Ident(name) => Ok(Expr::Column(name)),
            Tok::Param(i) => Ok(Expr::Param(i)),
            other => {
                self.pos -= 1;
                Err(self.err(format!("unexpected token {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s =
            parse_str("CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, pw TEXT)").unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
                primary_key,
            } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].ty, ColumnType::Integer);
                assert_eq!(columns[1].name, "name");
                assert!(!if_not_exists);
                assert_eq!(primary_key.as_deref(), Some("id"));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parse_create_index() {
        let s = parse_str("CREATE INDEX ix_name ON users (name) USING HASH").unwrap();
        match s {
            Statement::CreateIndex {
                name,
                table,
                column,
                kind,
                if_not_exists,
            } => {
                assert_eq!(name, "ix_name");
                assert_eq!(table, "users");
                assert_eq!(column, "name");
                assert_eq!(kind, IndexKind::Hash);
                assert!(!if_not_exists);
            }
            other => panic!("wrong statement {other:?}"),
        }
        // BTREE is the default.
        let s = parse_str("CREATE INDEX IF NOT EXISTS i ON t (a)").unwrap();
        assert!(matches!(
            s,
            Statement::CreateIndex {
                kind: IndexKind::Ordered,
                if_not_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_str("DROP INDEX i ON t").unwrap(),
            Statement::DropIndex { .. }
        ));
        assert!(parse_str("CREATE INDEX i ON t (a) USING ROPE").is_err());
        assert!(parse_str("DROP INDEX i").is_err());
        assert!(
            parse_str("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)").is_err()
        );
    }

    #[test]
    fn parse_bind_params() {
        let s = parse_str("SELECT body FROM posts WHERE id = ? AND author = ?").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } = sel.where_clause.unwrap()
        else {
            panic!("expected AND");
        };
        assert!(matches!(
            *left,
            Expr::Binary { op: BinOp::Eq, ref right, .. } if **right == Expr::Param(0)
        ));
        assert!(matches!(
            *right,
            Expr::Binary { op: BinOp::Eq, ref right, .. } if **right == Expr::Param(1)
        ));
        let s = parse_str("INSERT INTO posts VALUES (?, ?)").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows[0], vec![Expr::Param(0), Expr::Param(1)]);
    }

    #[test]
    fn parse_create_if_not_exists() {
        let s = parse_str("CREATE TABLE IF NOT EXISTS t (a TEXT)").unwrap();
        assert!(matches!(
            s,
            Statement::CreateTable {
                if_not_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_insert_multi_row() {
        let s = parse_str("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parse_insert_no_columns() {
        let s = parse_str("INSERT INTO t VALUES (1, NULL)").unwrap();
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert!(columns.is_none());
                assert!(matches!(
                    rows[0][1],
                    Expr::Lit(Literal {
                        value: LitValue::Null,
                        ..
                    })
                ));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let s = parse_str(
            "SELECT a, b FROM t WHERE a = 1 AND b LIKE 'x%' OR NOT c > 2 ORDER BY a DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(
                    sel.projection,
                    Projection::Columns(vec!["a".into(), "b".into()])
                );
                assert_eq!(sel.table, "t");
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.order_by, Some(("a".to_string(), true)));
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parse_select_star_and_count() {
        assert!(matches!(
            parse_str("SELECT * FROM t").unwrap(),
            Statement::Select(SelectStmt {
                projection: Projection::Star,
                ..
            })
        ));
        assert!(matches!(
            parse_str("SELECT COUNT(*) FROM t").unwrap(),
            Statement::Select(SelectStmt {
                projection: Projection::CountStar,
                ..
            })
        ));
    }

    #[test]
    fn parse_update_delete() {
        let s = parse_str("UPDATE t SET a = 1, b = 'z' WHERE id = 3").unwrap();
        match s {
            Statement::Update {
                assignments,
                where_clause,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("wrong statement {other:?}"),
        }
        assert!(matches!(
            parse_str("DELETE FROM t").unwrap(),
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_is_null_and_in() {
        let s = parse_str("SELECT * FROM t WHERE a IS NOT NULL AND b IN (1, 2, 3)").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let w = sel.where_clause.unwrap();
        let Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } = w
        else {
            panic!("expected AND")
        };
        assert!(matches!(*left, Expr::IsNull { negated: true, .. }));
        assert!(matches!(*right, Expr::InList { negated: false, .. }));
    }

    #[test]
    fn parse_not_in() {
        let s = parse_str("SELECT * FROM t WHERE b NOT IN ('x')").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(
            sel.where_clause.unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn parse_parenthesized_precedence() {
        let s = parse_str("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Expr::Binary { op, .. } = sel.where_clause.unwrap() else {
            panic!()
        };
        assert_eq!(op, BinOp::And, "parens group the OR");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_str("SELECT").is_err());
        assert!(parse_str("SELECT * FROM").is_err());
        assert!(parse_str("INSERT INTO t").is_err());
        assert!(parse_str("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_str("SELECT * FROM t extra garbage").is_err());
        assert!(parse_str("UPDATE t SET a").is_err());
        assert!(parse_str("SELECT * FROM t WHERE a NOT LIKE 'x'").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_str("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn injected_or_changes_structure() {
        // The classic injection: ' OR '1'='1 — once in the token stream, the
        // WHERE clause is an OR expression. (Detection happens in the guard,
        // not the parser.)
        let s = parse_str("SELECT * FROM users WHERE name = 'x' OR '1'='1'").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(
            sel.where_clause.unwrap(),
            Expr::Binary { op: BinOp::Or, .. }
        ));
    }
}
