//! Index probes must be invisible: every query answered through an index
//! returns bit-identical results — values AND per-byte labels — to the
//! same query answered by a full scan, and a probe can never launder
//! taint past a checking gate.
//!
//! The differential harness runs randomized workloads (inserts with
//! mixed taint, updates, deletes, then a bag of query shapes) against
//! two databases that differ only in their indexes, and compares every
//! outcome — including errors, which must agree byte for byte. Policy
//! objects are shared `Arc`s, so equal taint interns to equal labels
//! and the comparison can use label identity, not just policy names.

use std::sync::Arc;

use proptest::TestRng;
use resin_core::{Gate, GateKind, Label, PasswordPolicy, Tainted, TaintedString, UntrustedData};
use resin_sql::{ResinDb, TCell, TaintedResult};

/// One shared policy instance per flavor: both databases label with the
/// same `Arc`, so identical taint means identical interned labels.
struct Policies {
    untrusted: Arc<UntrustedData>,
    password: Arc<PasswordPolicy>,
}

impl Policies {
    fn new() -> Self {
        Policies {
            untrusted: Arc::new(UntrustedData::new()),
            password: Arc::new(PasswordPolicy::new("victim@example.com")),
        }
    }
}

const NAME_POOL: &[&str] = &["alice", "bob", "carol", "dave", "erin", "frank"];

/// A randomly labeled name: untainted, fully tainted, or tainted only on
/// a suffix (so the per-byte comparison has real spans to disagree on).
fn rand_name(rng: &mut TestRng, p: &Policies) -> TaintedString {
    let base = NAME_POOL[rng.below(NAME_POOL.len() as u64) as usize];
    match rng.below(4) {
        0 => TaintedString::from(base),
        1 => {
            let mut t = TaintedString::from(base);
            t.add_policy(p.untrusted.clone());
            t
        }
        2 => {
            let mut t = TaintedString::from(base);
            t.add_policy(p.password.clone());
            t
        }
        _ => {
            let mut t = TaintedString::from("u-");
            let mut tail = TaintedString::from(base);
            tail.add_policy(p.untrusted.clone());
            t.push_tainted(&tail);
            t
        }
    }
}

/// Builds the same random table in both databases via prepared inserts
/// (bound values carry the labels), then applies the same mutations.
fn populate(rng: &mut TestRng, p: &Policies, dbs: &mut [&mut ResinDb; 2]) {
    let rows = 10 + rng.below(30);
    for _ in 0..rows {
        let id = rng.below(20) as i64;
        let name = rand_name(rng, p);
        let age: Option<i64> = if rng.below(8) == 0 {
            None
        } else {
            Some(rng.below(50) as i64)
        };
        let tainted_id = rng.below(5) == 0;
        for db in dbs.iter_mut() {
            let ins = db.prepare("INSERT INTO t VALUES (?, ?, ?)").unwrap();
            let id_bind = if tainted_id {
                let mut t = Tainted::new(id);
                t.add_policy(p.untrusted.clone());
                t.into()
            } else {
                id.into()
            };
            let age_bind = match age {
                Some(a) => a.into(),
                None => resin_sql::BindValue::Null,
            };
            db.exec_prepared(&ins, vec![id_bind, (&name).into(), age_bind])
                .unwrap();
        }
    }
    for _ in 0..rng.below(6) {
        let stmt = match rng.below(3) {
            0 => format!(
                "UPDATE t SET age = {} WHERE id = {}",
                rng.below(50),
                rng.below(20)
            ),
            1 => format!(
                "UPDATE t SET name = '{}' WHERE age > {}",
                NAME_POOL[rng.below(NAME_POOL.len() as u64) as usize],
                rng.below(50)
            ),
            _ => format!("DELETE FROM t WHERE id = {}", rng.below(20)),
        };
        for db in dbs.iter_mut() {
            db.query_str(&stmt).unwrap();
        }
    }
}

/// A random query from the shapes the planner cares about. Some order by
/// the nullable column, so the NULL-key error path must also agree.
fn rand_query(rng: &mut TestRng) -> String {
    match rng.below(7) {
        0 => format!("SELECT id, name, age FROM t WHERE id = {}", rng.below(20)),
        1 => format!(
            "SELECT name FROM t WHERE name = '{}'",
            NAME_POOL[rng.below(NAME_POOL.len() as u64) as usize]
        ),
        2 => {
            let a = rng.below(15);
            format!(
                "SELECT id, name FROM t WHERE id >= {a} AND id < {} ORDER BY id",
                a + rng.below(10)
            )
        }
        3 => format!(
            "SELECT id, age FROM t WHERE age > {} ORDER BY id DESC LIMIT {}",
            rng.below(50),
            1 + rng.below(5)
        ),
        4 => format!(
            "SELECT name FROM t WHERE id IN ({}, {}, {})",
            rng.below(20),
            rng.below(20),
            rng.below(20)
        ),
        5 => format!(
            "SELECT id, name FROM t WHERE name LIKE '%{}%'",
            &NAME_POOL[rng.below(NAME_POOL.len() as u64) as usize][..2]
        ),
        _ => "SELECT id, name, age FROM t ORDER BY age LIMIT 4".to_string(),
    }
}

fn label_eq(a: Label, b: Label) -> bool {
    a == b
}

fn assert_cell_eq(a: &TCell, b: &TCell, ctx: &str) {
    match (a, b) {
        (TCell::Null, TCell::Null) => {}
        (TCell::Int(x), TCell::Int(y)) => {
            assert_eq!(x.value(), y.value(), "{ctx}: int value");
            assert!(label_eq(x.label(), y.label()), "{ctx}: int label");
        }
        (TCell::Text(x), TCell::Text(y)) => {
            assert_eq!(x.as_str(), y.as_str(), "{ctx}: text");
            for i in 0..x.len() {
                assert!(
                    label_eq(x.label_at(i), y.label_at(i)),
                    "{ctx}: label at byte {i} of {:?}",
                    x.as_str()
                );
            }
        }
        _ => panic!("{ctx}: cell kinds differ: {a:?} vs {b:?}"),
    }
}

fn assert_same_outcome(
    a: Result<TaintedResult, resin_sql::SqlError>,
    b: Result<TaintedResult, resin_sql::SqlError>,
    ctx: &str,
) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.columns, b.columns, "{ctx}: columns");
            assert_eq!(a.rows.len(), b.rows.len(), "{ctx}: row count");
            for (i, (ra, rb)) in a.rows.iter().zip(b.rows.iter()).enumerate() {
                assert_eq!(ra.len(), rb.len(), "{ctx}: row {i} width");
                for (j, (ca, cb)) in ra.iter().zip(rb.iter()).enumerate() {
                    assert_cell_eq(ca, cb, &format!("{ctx}: row {i} col {j}"));
                }
            }
        }
        (Err(a), Err(b)) => {
            assert_eq!(a.to_string(), b.to_string(), "{ctx}: error text");
        }
        (a, b) => panic!("{ctx}: outcomes differ:\n indexed={a:?}\n scanned={b:?}"),
    }
}

#[test]
fn probe_and_scan_agree_on_values_and_labels() {
    let p = Policies::new();
    let seed = proptest::seed_from_name("probe_and_scan_agree_on_values_and_labels");
    let mut probes_planned = 0usize;
    for case in 0..48u64 {
        let mut rng = TestRng::new(seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        let mut indexed = ResinDb::new();
        let mut scanned = ResinDb::new();
        for db in [&mut indexed, &mut scanned] {
            db.query_str("CREATE TABLE t (id INTEGER, name TEXT, age INTEGER)")
                .unwrap();
        }
        // A random non-empty subset of indexes, random kinds.
        let mut any = false;
        for (col, flip) in [("id", 1u64), ("name", 2), ("age", 4)] {
            if rng.below(8) & flip != 0 {
                let kind = if rng.below(2) == 0 { "HASH" } else { "BTREE" };
                indexed
                    .query_str(&format!("CREATE INDEX ix_{col} ON t ({col}) USING {kind}"))
                    .unwrap();
                any = true;
            }
        }
        if !any {
            indexed
                .query_str("CREATE INDEX ix_id ON t (id) USING BTREE")
                .unwrap();
        }
        populate(&mut rng, &p, &mut [&mut indexed, &mut scanned]);
        for q in 0..8 {
            let sql = rand_query(&mut rng);
            if let Ok(plan) = indexed.raw().explain(&sql) {
                if plan.contains("probe") {
                    probes_planned += 1;
                }
            }
            let ctx = format!("case {case} query {q}: {sql}");
            assert_same_outcome(indexed.query_str(&sql), scanned.query_str(&sql), &ctx);
        }
    }
    // The generator must actually exercise the probe paths, not just
    // degenerate to scans on both sides.
    assert!(
        probes_planned > 50,
        "only {probes_planned} probes planned across all cases"
    );
}

#[test]
fn index_probe_cannot_launder_taint_past_a_checking_gate() {
    // The adversarial read path: an attacker-controlled (tainted) key
    // drives an index probe for a password-labeled secret. The probe
    // touches index keys built from raw values — if labels didn't travel
    // with the stored cells, this exact path would launder the password
    // policy. The HTTP gate must still refuse the export.
    let mut db = ResinDb::new();
    db.query_str("CREATE TABLE secrets (id INTEGER PRIMARY KEY, pw TEXT)")
        .unwrap();
    let ins = db.prepare("INSERT INTO secrets VALUES (?, ?)").unwrap();
    let mut pw = TaintedString::from("hunter2");
    pw.add_policy(Arc::new(PasswordPolicy::new("victim@example.com")));
    db.exec_prepared(&ins, vec![1i64.into(), pw.into()])
        .unwrap();

    // Prove the lookup is really an index probe, not a scan.
    let plan = db
        .raw()
        .explain("SELECT pw FROM secrets WHERE id = 1")
        .unwrap();
    assert!(plan.contains("probe"), "expected an index probe: {plan}");

    let sel = db.prepare("SELECT pw FROM secrets WHERE id = ?").unwrap();
    let mut key = Tainted::new(1i64);
    key.add_policy(Arc::new(UntrustedData::new()));
    let r = db.exec_prepared(&sel, vec![key.into()]).unwrap();
    let got = r.cell(0, "pw").unwrap().as_text().unwrap().to_owned();
    assert_eq!(got.as_str(), "hunter2");
    assert!(
        got.has_policy::<PasswordPolicy>(),
        "probe result keeps the stored label"
    );

    let mut gate = Gate::new(GateKind::Http);
    let err = gate.write(got).unwrap_err();
    assert!(err.is_violation(), "gate must refuse: {err}");
    assert_eq!(gate.output_text(), "", "denied write leaked nothing");
}
