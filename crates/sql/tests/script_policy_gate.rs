//! Script policies riding through the SQL layer and enforced on export.
//!
//! The sql gate is a *storage* surface (Figure 3): labeled data flows
//! into the database freely, the policy is serialized into a policy
//! column (§3.4.1 — class name + fields), and a SELECT revives it. The
//! check fires at a *checking* surface — here an HTTP gate — where the
//! revived policy's RSL `export_check` runs on the compiled-chunk VM
//! path (the process-default engine; `RESIN_RSL_ENGINE=tree` re-runs
//! this whole test against the tree-walking oracle).

use std::collections::BTreeMap;
use std::sync::Arc;

use resin_core::{Gate, GateKind, TaintedStrBuilder, TaintedString};
use resin_lang::ast::StmtKind;
use resin_lang::{parse_program, Engine, Interp, PValue, ScriptPolicy};
use resin_sql::ResinDb;

/// Confines labeled data to one channel type (`"sql"`, `"http"`, ...).
const CHANNEL_ONLY_SRC: &str = r#"
class ChannelOnly {
    fn init(channel) { this.channel = channel; }
    fn export_check(context) {
        if (context["type"] == this.channel) { return; }
        throw "confined to " + this.channel;
    }
}
"#;

/// A `ChannelOnly(channel)` policy pinned to `engine`. Defining the
/// class through the interpreter (as an application would) registers it
/// with the process policy registry, so the sql layer can persist
/// instances into policy columns and revive them on read.
fn channel_only(channel: &str, engine: Engine) -> Arc<ScriptPolicy> {
    Interp::with_engine(engine)
        .run(CHANNEL_ONLY_SRC)
        .expect("policy class defines");
    let class = parse_program(CHANNEL_ONLY_SRC)
        .expect("policy parses")
        .into_iter()
        .find_map(|stmt| match stmt.kind {
            StmtKind::ClassDef(class) => Some(class),
            _ => None,
        })
        .expect("class decl");
    let mut fields = BTreeMap::new();
    fields.insert("channel".to_string(), PValue::Str(channel.to_string()));
    Arc::new(ScriptPolicy::new(class.name.clone(), fields, Some(class)).with_engine(engine))
}

fn insert_labeled(db: &mut ResinDb, id: i64, name: &str, policy: Arc<ScriptPolicy>) {
    let mut value = TaintedString::from(name);
    value.add_policy(policy);
    let mut q = TaintedStrBuilder::new();
    q.push_str(&format!("INSERT INTO users (id, name) VALUES ({id}, '"));
    q.push_tainted(&value);
    q.push_str("')");
    db.query(&q.build()).expect("labeled insert persists");
}

fn select_name(db: &mut ResinDb, id: i64) -> TaintedString {
    let rows = db
        .query_str(&format!("SELECT name FROM users WHERE id = {id}"))
        .unwrap();
    rows.cell(0, "name").unwrap().to_tainted_string()
}

#[test]
fn script_policy_survives_sql_and_enforces_at_http_gate() {
    let mut db = ResinDb::new();
    db.query_str("CREATE TABLE users (id INTEGER, name TEXT)")
        .unwrap();

    // Storage is not an export: both inserts succeed, policies and all.
    insert_labeled(&mut db, 1, "carol", channel_only("http", Engine::Vm));
    insert_labeled(&mut db, 2, "dave", channel_only("email", Engine::Vm));

    // The revived policy still guards the data at the checking surface:
    // the http-confined row crosses an HTTP gate, the email-confined one
    // is denied by its RSL export_check with the policy's own message.
    let mut http = Gate::new(GateKind::Http);
    http.write(select_name(&mut db, 1))
        .expect("http-confined data crosses the http gate");
    assert_eq!(http.output_text(), "carol");

    let err = http.write(select_name(&mut db, 2)).unwrap_err();
    assert!(err.is_violation(), "expected violation: {err}");
    assert!(
        err.to_string().contains("confined to email"),
        "policy's own message surfaces: {err}"
    );
    assert_eq!(http.output_text(), "carol", "denied write leaked nothing");
}

#[test]
fn pinned_engines_agree_before_and_after_persistence() {
    // Head-to-head: the same labeled value, pinned to each engine,
    // must get the same verdict at an HTTP gate both when exported
    // directly and when exported after a round trip through the db.
    for engine in [Engine::Tree, Engine::Vm] {
        let mut direct = TaintedString::from("dave");
        direct.add_policy(channel_only("email", engine));
        let mut http = Gate::new(GateKind::Http);
        let err = http.write(direct).unwrap_err();
        assert!(err.is_violation(), "direct export on {engine:?}: {err}");

        let mut db = ResinDb::new();
        db.query_str("CREATE TABLE users (id INTEGER, name TEXT)")
            .unwrap();
        insert_labeled(&mut db, 2, "dave", channel_only("email", engine));
        let err = http.write(select_name(&mut db, 2)).unwrap_err();
        assert!(err.is_violation(), "revived export on {engine:?}: {err}");
    }
}
