//! Persistent filter objects (§3.2.3).
//!
//! RESIN permits an application to place filter objects on persistent files
//! and directories to control write access, because data tracking alone
//! cannot prevent modifications. The filter is stored in the extended
//! attributes of a specific file or directory and invoked automatically
//! when data flows into or out of that file, or when the directory is
//! modified (creating, deleting, or renaming files).
//!
//! Like persistent policies, persistent filters are stored as *class name +
//! fields* and revived through a registry, so filter code can evolve.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use resin_core::{
    Acl, Context, Filter, FlowError, GateKind, PolicyViolation, Right, SerializeError,
    TaintedString,
};

use crate::error::{Result, VfsError};

/// A directory-modifying operation a persistent filter can veto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirOp {
    /// Creating a file or subdirectory.
    Create,
    /// Deleting an entry.
    Delete,
    /// Renaming an entry.
    Rename,
}

impl fmt::Display for DirOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DirOp::Create => "create",
            DirOp::Delete => "delete",
            DirOp::Rename => "rename",
        };
        f.write_str(s)
    }
}

/// A filter object persisted on a file or directory.
///
/// Default implementations allow everything, so a filter only overrides the
/// hooks it cares about (e.g. a write-ACL filter overrides `check_write`
/// and `check_dir_op`).
pub trait PersistentFilter: Send + Sync + fmt::Debug {
    /// The filter's class name (for persistence).
    fn name(&self) -> &str;

    /// Serializes the filter's data fields.
    fn serialize_fields(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Invoked when data flows *into* the guarded file.
    fn check_write(&self, _path: &str, _ctx: &Context) -> Result<(), PolicyViolation> {
        Ok(())
    }

    /// Invoked when data flows *out of* the guarded file.
    fn check_read(&self, _path: &str, _ctx: &Context) -> Result<(), PolicyViolation> {
        Ok(())
    }

    /// Invoked when the guarded directory is modified.
    fn check_dir_op(
        &self,
        _op: DirOp,
        _entry: &str,
        _ctx: &Context,
    ) -> Result<(), PolicyViolation> {
        Ok(())
    }
}

/// Reference-counted persistent filter.
pub type PersistentFilterRef = Arc<dyn PersistentFilter>;

// ---- registry ----

/// Fields of a serialized filter.
pub type FilterFields = BTreeMap<String, String>;

type FilterFactory =
    Arc<dyn Fn(&FilterFields) -> Result<PersistentFilterRef, SerializeError> + Send + Sync>;

fn registry() -> &'static RwLock<HashMap<String, FilterFactory>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, FilterFactory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map: HashMap<String, FilterFactory> = HashMap::new();
        map.insert(
            "AclWriteFilter".into(),
            Arc::new(|f: &FilterFields| {
                let enc = f.get("acl").cloned().ok_or(SerializeError::MissingField {
                    class: "AclWriteFilter".into(),
                    field: "acl".into(),
                })?;
                let acl = Acl::decode(&enc).ok_or_else(|| SerializeError::BadField {
                    class: "AclWriteFilter".into(),
                    field: "acl".into(),
                    reason: format!("unparsable ACL `{enc}`"),
                })?;
                Ok(Arc::new(AclWriteFilter::new(acl)) as PersistentFilterRef)
            }),
        );
        RwLock::new(map)
    })
}

/// Registers a persistent-filter class for deserialization.
pub fn register_filter_class(
    name: impl Into<String>,
    factory: impl Fn(&FilterFields) -> Result<PersistentFilterRef, SerializeError>
        + Send
        + Sync
        + 'static,
) {
    resin_core::sync::wlock(registry()).insert(name.into(), Arc::new(factory));
}

/// Serializes a persistent filter (class name + fields), same wire shape as
/// policies.
pub fn serialize_filter(filter: &PersistentFilterRef) -> String {
    let fields = filter
        .serialize_fields()
        .into_iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";");
    format!("{}{{{}}}", filter.name(), fields)
}

/// Revives a persistent filter from its serialized form.
pub fn deserialize_filter(s: &str) -> Result<PersistentFilterRef> {
    let open = s
        .find('{')
        .ok_or_else(|| VfsError::from(SerializeError::Malformed(format!("no `{{` in `{s}`"))))?;
    if !s.ends_with('}') {
        return Err(SerializeError::Malformed(format!("no `}}` in `{s}`")).into());
    }
    let name = &s[..open];
    let body = &s[open + 1..s.len() - 1];
    let mut fields = FilterFields::new();
    if !body.is_empty() {
        for pair in body.split(';') {
            let (k, v) = pair.split_once('=').ok_or_else(|| {
                VfsError::from(SerializeError::Malformed(format!("bad field `{pair}`")))
            })?;
            fields.insert(k.to_string(), v.to_string());
        }
    }
    let factory = resin_core::sync::rlock(registry())
        .get(name)
        .cloned()
        .ok_or_else(|| VfsError::from(SerializeError::UnknownClass(name.to_string())))?;
    factory(&fields).map_err(VfsError::from)
}

// ---- gate integration ----

/// Mounts a persistent filter onto a core file [`Gate`](resin_core::Gate).
///
/// The vfs resolves the file gate from the
/// [`Runtime`](resin_core::Runtime) registry and pushes one mount per
/// governing persistent filter: data flowing *into* the file runs
/// `check_write`, data flowing *out* runs `check_read`, with the gate's
/// context (user, path, ...) passed through — the same interposition every
/// other I/O surface gets.
pub struct GateMount {
    filter: PersistentFilterRef,
    path: String,
}

impl GateMount {
    /// Mounts `filter`, reporting violations against `path`.
    pub fn new(filter: PersistentFilterRef, path: impl Into<String>) -> Self {
        GateMount {
            filter,
            path: path.into(),
        }
    }
}

impl Filter for GateMount {
    fn filter_write(
        &self,
        data: TaintedString,
        _offset: u64,
        context: &Context,
    ) -> Result<TaintedString, FlowError> {
        self.filter
            .check_write(&self.path, context)
            .map_err(|v| FlowError::Denied(v.on_channel(GateKind::File)))?;
        Ok(data)
    }

    // The mount only consults the context, never the data: borrowed data
    // passes through the gate without a copy.
    fn filter_write_cow<'a>(
        &self,
        data: std::borrow::Cow<'a, TaintedString>,
        _offset: u64,
        context: &Context,
    ) -> Result<std::borrow::Cow<'a, TaintedString>, FlowError> {
        self.filter
            .check_write(&self.path, context)
            .map_err(|v| FlowError::Denied(v.on_channel(GateKind::File)))?;
        Ok(data)
    }

    fn filter_read(
        &self,
        data: TaintedString,
        _offset: u64,
        context: &Context,
    ) -> Result<TaintedString, FlowError> {
        self.filter
            .check_read(&self.path, context)
            .map_err(|v| FlowError::Denied(v.on_channel(GateKind::File)))?;
        Ok(data)
    }
}

impl fmt::Debug for GateMount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateMount")
            .field("filter", &self.filter.name())
            .field("path", &self.path)
            .finish()
    }
}

// ---- stock filters ----

/// Write access control by ACL (the MoinMoin write-ACL assertion, §5.1, and
/// the file managers' home-directory confinement, §6.2).
///
/// `check_write` and `check_dir_op` require the channel context's `user` to
/// hold the [`Right::Write`] right.
#[derive(Debug, Clone)]
pub struct AclWriteFilter {
    acl: Acl,
}

impl AclWriteFilter {
    /// Creates a write filter enforcing `acl`.
    pub fn new(acl: Acl) -> Self {
        AclWriteFilter { acl }
    }

    /// The enforced ACL.
    pub fn acl(&self) -> &Acl {
        &self.acl
    }

    fn check(&self, what: &str, ctx: &Context) -> Result<(), PolicyViolation> {
        let Some(user) = ctx.get_str("user") else {
            return Err(PolicyViolation::new(
                "AclWriteFilter",
                format!("write to {what} denied: no authenticated user"),
            ));
        };
        if self.acl.may(user, Right::Write) {
            Ok(())
        } else {
            Err(PolicyViolation::new(
                "AclWriteFilter",
                format!("write to {what} denied for `{user}`"),
            ))
        }
    }
}

impl PersistentFilter for AclWriteFilter {
    fn name(&self) -> &str {
        "AclWriteFilter"
    }

    fn serialize_fields(&self) -> Vec<(String, String)> {
        vec![("acl".to_string(), self.acl.encode())]
    }

    fn check_write(&self, path: &str, ctx: &Context) -> Result<(), PolicyViolation> {
        self.check(path, ctx)
    }

    fn check_dir_op(&self, op: DirOp, entry: &str, ctx: &Context) -> Result<(), PolicyViolation> {
        self.check(&format!("({op} {entry})"), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(user: &str) -> Context {
        let mut c = Context::new(GateKind::File);
        c.set_str("user", user);
        c
    }

    #[test]
    fn acl_write_filter_enforces() {
        let f = AclWriteFilter::new(Acl::new().grant("alice", &[Right::Write]));
        assert!(f.check_write("/x", &ctx("alice")).is_ok());
        assert!(f.check_write("/x", &ctx("bob")).is_err());
        assert!(f.check_write("/x", &Context::new(GateKind::File)).is_err());
        assert!(
            f.check_read("/x", &ctx("bob")).is_ok(),
            "read hook default-allows"
        );
    }

    #[test]
    fn dir_ops_checked() {
        let f = AclWriteFilter::new(Acl::new().grant("alice", &[Right::Write]));
        assert!(f.check_dir_op(DirOp::Create, "new", &ctx("alice")).is_ok());
        assert!(f.check_dir_op(DirOp::Delete, "v1", &ctx("bob")).is_err());
        assert!(f.check_dir_op(DirOp::Rename, "v1", &ctx("bob")).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let f: PersistentFilterRef = Arc::new(AclWriteFilter::new(
            Acl::new().grant("alice", &[Right::Write]),
        ));
        let s = serialize_filter(&f);
        assert_eq!(s, "AclWriteFilter{acl=alice:w}");
        let g = deserialize_filter(&s).unwrap();
        assert!(g.check_write("/x", &ctx("alice")).is_ok());
        assert!(g.check_write("/x", &ctx("bob")).is_err());
    }

    #[test]
    fn unknown_class_rejected() {
        assert!(deserialize_filter("Nope{}").is_err());
        assert!(deserialize_filter("Nope").is_err());
        assert!(
            deserialize_filter("AclWriteFilter{}").is_err(),
            "missing acl"
        );
        assert!(deserialize_filter("AclWriteFilter{acl=???}").is_err());
    }

    #[test]
    fn custom_filter_class() {
        #[derive(Debug)]
        struct DenyAll;
        impl PersistentFilter for DenyAll {
            fn name(&self) -> &str {
                "DenyAllTestFilter"
            }
            fn check_write(&self, p: &str, _c: &Context) -> Result<(), PolicyViolation> {
                Err(PolicyViolation::new(
                    "DenyAllTestFilter",
                    format!("no writes to {p}"),
                ))
            }
        }
        register_filter_class("DenyAllTestFilter", |_| {
            Ok(Arc::new(DenyAll) as PersistentFilterRef)
        });
        let f = deserialize_filter("DenyAllTestFilter{}").unwrap();
        assert!(f.check_write("/anything", &ctx("root")).is_err());
        assert_eq!(DirOp::Create.to_string(), "create");
    }
}
