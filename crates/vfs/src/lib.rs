//! # resin-vfs — a virtual filesystem with persistent RESIN policies
//!
//! The filesystem substrate for the RESIN reproduction. Real RESIN stores
//! serialized policy objects in ext3 extended attributes (§3.4.1) and
//! persistent filter objects for write access control (§3.2.3); this crate
//! reproduces both on an in-memory tree:
//!
//! * every file/directory carries extended attributes;
//! * the default file filter serializes a file's byte-range content
//!   policies on write and revives them on read;
//! * persistent filter objects (e.g. [`pfilter::AclWriteFilter`]) govern
//!   writes, deletes, renames and creations in their subtree;
//! * paths resolve `..` lexically, so directory-traversal attacks behave
//!   exactly as on a Unix filesystem.
//!
//! # Examples
//!
//! ```
//! use resin_core::prelude::*;
//! use resin_vfs::{Vfs, pfilter::{AclWriteFilter, PersistentFilterRef}};
//! use std::sync::Arc;
//!
//! let mut fs = Vfs::new();
//! fs.mkdir_p("/wiki/Front", &Vfs::anonymous_ctx()).unwrap();
//!
//! // MoinMoin-style write ACL on the page directory (§5.1).
//! let f: PersistentFilterRef = Arc::new(AclWriteFilter::new(
//!     Acl::new().grant("alice", &[Right::Write])));
//! fs.attach_filter("/wiki/Front", &f).unwrap();
//!
//! let page = TaintedString::from("v1 text");
//! assert!(fs.write_file("/wiki/Front/v1", &page, &Vfs::user_ctx("alice")).is_ok());
//! assert!(fs.write_file("/wiki/Front/v1", &page, &Vfs::user_ctx("bob")).is_err());
//! ```

pub mod backend;
pub mod error;
pub mod fs;
pub mod path;
pub mod pfilter;

pub use backend::{Backend, DiskBackend, FsOp, MemBackend, VfsRecovered};
pub use error::{Result, VfsError};
pub use fs::{OpenFile, TrackingMode, Vfs, XATTR_FILTER, XATTR_POLICY};
