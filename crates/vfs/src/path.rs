//! Path handling, including lexical `..` resolution.
//!
//! Directory traversal attacks (§2, Data Flow Assertion 2) work because
//! applications join user input into paths and the filesystem resolves
//! `..` segments past the intended root. The VFS resolves paths the same
//! way a Unix filesystem would, so the attack surface is faithfully
//! reproduced — defense comes from persistent filter objects, not from the
//! path layer.

use crate::error::{Result, VfsError};

/// Normalizes `path` into absolute components, resolving `.` and `..`.
///
/// Relative paths are interpreted against `/`. A `..` that would escape the
/// root is an [`VfsError::InvalidPath`] (like hitting the real filesystem
/// root... except real filesystems clamp; we reject so tests can observe
/// over-traversal distinctly).
pub fn normalize(path: &str) -> Result<Vec<String>> {
    let mut out: Vec<String> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    return Err(VfsError::InvalidPath(path.to_string()));
                }
            }
            name => out.push(name.to_string()),
        }
    }
    Ok(out)
}

/// Normalizes like a Unix kernel: `..` at the root stays at the root.
pub fn normalize_clamped(path: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            name => out.push(name.to_string()),
        }
    }
    out
}

/// Joins a base directory and a (possibly relative, possibly hostile)
/// name the way a naive application would: simple string concatenation.
pub fn join(base: &str, name: &str) -> String {
    if name.starts_with('/') {
        name.to_string()
    } else if base.ends_with('/') {
        format!("{base}{name}")
    } else {
        format!("{base}/{name}")
    }
}

/// Renders normalized components back into an absolute path.
pub fn to_absolute(components: &[String]) -> String {
    if components.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", components.join("/"))
    }
}

/// The parent path and final component of a normalized path.
///
/// Returns `None` for the root.
pub fn split_parent(components: &[String]) -> Option<(&[String], &str)> {
    let (last, parent) = components.split_last()?;
    Some((parent, last.as_str()))
}

/// True if `path`, after normalization, stays within `root`.
///
/// This is the check a *correct* application performs; the vulnerable file
/// managers in `resin-apps` skip it.
pub fn is_within(root: &str, path: &str) -> bool {
    let Ok(root_c) = normalize(root) else {
        return false;
    };
    let path_c = normalize_clamped(path);
    path_c.len() >= root_c.len() && path_c[..root_c.len()] == root_c[..]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("/a/b/c").unwrap(), ["a", "b", "c"]);
        assert_eq!(normalize("a/b").unwrap(), ["a", "b"]);
        assert_eq!(normalize("/a//b/./c").unwrap(), ["a", "b", "c"]);
        assert!(normalize("/").unwrap().is_empty());
        assert!(normalize("").unwrap().is_empty());
    }

    #[test]
    fn normalize_dotdot() {
        assert_eq!(normalize("/a/b/../c").unwrap(), ["a", "c"]);
        assert_eq!(normalize("/a/../a/b").unwrap(), ["a", "b"]);
        assert!(normalize("/..").is_err(), "escaping the root rejected");
        assert!(normalize("/a/../../b").is_err());
    }

    #[test]
    fn clamped_never_errors() {
        assert_eq!(normalize_clamped("/../../etc"), ["etc"]);
        assert_eq!(normalize_clamped("a/../.."), Vec::<String>::new());
    }

    #[test]
    fn join_is_naive() {
        assert_eq!(join("/files/alice", "doc.txt"), "/files/alice/doc.txt");
        assert_eq!(join("/files/alice/", "doc.txt"), "/files/alice/doc.txt");
        // The traversal attack: naive join happily embeds dot-dot.
        assert_eq!(join("/files/alice", "../bob/x"), "/files/alice/../bob/x");
        assert_eq!(join("/files", "/etc/passwd"), "/etc/passwd");
    }

    #[test]
    fn traversal_escapes_join() {
        let p = join("/files/alice", "../bob/secret.txt");
        assert_eq!(normalize(&p).unwrap(), ["files", "bob", "secret.txt"]);
        assert!(!is_within("/files/alice", &p), "escape detected");
        assert!(is_within("/files/alice", "/files/alice/sub/x"));
        assert!(!is_within("/files/alice", "/files/alicefake/x"));
    }

    #[test]
    fn roundtrip_absolute() {
        let c = normalize("/a/b").unwrap();
        assert_eq!(to_absolute(&c), "/a/b");
        assert_eq!(to_absolute(&[]), "/");
    }

    #[test]
    fn split_parent_works() {
        let c = normalize("/a/b/c").unwrap();
        let (parent, name) = split_parent(&c).unwrap();
        assert_eq!(to_absolute(parent), "/a/b");
        assert_eq!(name, "c");
        assert!(split_parent(&[]).is_none());
    }
}
