//! Filesystem error types.

use std::fmt;

use resin_core::FlowError;

/// Errors produced by the virtual filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// No file or directory at the path.
    NotFound(String),
    /// A path component that must be a directory is not one.
    NotADirectory(String),
    /// The operation needs a file but found a directory.
    IsADirectory(String),
    /// Creation target already exists.
    AlreadyExists(String),
    /// The path is syntactically invalid (e.g. escapes the root).
    InvalidPath(String),
    /// A policy or persistent filter rejected the operation.
    Policy(FlowError),
    /// The durable backend failed (I/O error, corrupt snapshot,
    /// unsupported format version).
    Storage(String),
}

impl VfsError {
    /// True if the error is a data flow assertion failure.
    pub fn is_violation(&self) -> bool {
        matches!(self, VfsError::Policy(e) if e.is_violation())
            || matches!(self, VfsError::Policy(FlowError::Rejected(_)))
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            VfsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            VfsError::Policy(e) => write!(f, "{e}"),
            VfsError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<FlowError> for VfsError {
    fn from(e: FlowError) -> Self {
        VfsError::Policy(e)
    }
}

impl From<resin_core::PolicyViolation> for VfsError {
    fn from(v: resin_core::PolicyViolation) -> Self {
        VfsError::Policy(FlowError::Denied(v))
    }
}

impl From<resin_core::SerializeError> for VfsError {
    fn from(e: resin_core::SerializeError) -> Self {
        VfsError::Policy(FlowError::Serialize(e))
    }
}

/// Result alias for filesystem operations.
pub type Result<T, E = VfsError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use resin_core::PolicyViolation;

    #[test]
    fn violation_detection() {
        let e = VfsError::Policy(FlowError::Denied(PolicyViolation::new("P", "m")));
        assert!(e.is_violation());
        assert!(!VfsError::NotFound("/x".into()).is_violation());
        let f = VfsError::Policy(FlowError::Rejected("w".into()));
        assert!(f.is_violation());
    }

    #[test]
    fn display_messages() {
        assert!(VfsError::NotFound("/a".into()).to_string().contains("/a"));
        assert!(VfsError::InvalidPath("..".into())
            .to_string()
            .contains(".."));
    }
}
