//! The virtual filesystem.
//!
//! An in-memory tree of files and directories with per-node extended
//! attributes. The RESIN integration lives in two xattrs:
//!
//! * `user.resin.policy` — the serialized byte-range policies of a file's
//!   content. The default file filter writes it on every file write and
//!   revives the policies on every read (§3.4.1). Policies are tracked at
//!   byte granularity, exactly as for strings.
//! * `user.resin.filter` — serialized persistent filter objects guarding
//!   the file or directory (§3.2.3), invoked when data flows into/out of
//!   the file or when the directory is modified.
//!
//! Filter scoping: the *nearest* ancestor (or the node itself) that carries
//! filters decides; deeper filters override shallower ones. This models
//! attaching a filter to "the files and directory that represent a wiki
//! page" while letting applications carve out per-user subtrees.

use std::collections::BTreeMap;

use resin_core::{
    deserialize_spans, serialize_spans, Context, FlowError, FnFilter, Gate, GateKind, Runtime,
    TaintedString,
};
use resin_store::{SnapshotReader, SnapshotWriter};

use crate::backend::{Backend, DiskBackend, FsOp, MemBackend};
use crate::error::{Result, VfsError};
use crate::path::{normalize, to_absolute};
use crate::pfilter::{deserialize_filter, serialize_filter, DirOp, GateMount, PersistentFilterRef};

/// xattr key holding a file's serialized content policies.
pub const XATTR_POLICY: &str = "user.resin.policy";
/// xattr key holding a node's serialized persistent filters.
pub const XATTR_FILTER: &str = "user.resin.filter";

/// Whether the runtime performs RESIN data tracking on file I/O.
///
/// `Off` models the unmodified interpreter (Table 5 column 1): policies are
/// silently dropped on write and never revived on read, and persistent
/// filters are not consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingMode {
    /// Unmodified runtime: no serialization, no filters.
    Off,
    /// RESIN runtime: persistent policies and filters active.
    #[default]
    On,
}

#[derive(Debug, Default, Clone)]
struct FileNode {
    content: String,
    xattrs: BTreeMap<String, String>,
}

#[derive(Debug, Default, Clone)]
struct DirNode {
    children: BTreeMap<String, Node>,
    xattrs: BTreeMap<String, String>,
}

#[derive(Debug, Clone)]
enum Node {
    File(FileNode),
    Dir(DirNode),
}

impl Node {
    fn xattrs(&self) -> &BTreeMap<String, String> {
        match self {
            Node::File(f) => &f.xattrs,
            Node::Dir(d) => &d.xattrs,
        }
    }

    fn xattrs_mut(&mut self) -> &mut BTreeMap<String, String> {
        match self {
            Node::File(f) => &mut f.xattrs,
            Node::Dir(d) => &mut d.xattrs,
        }
    }
}

/// A validated open file: the product of [`Vfs::open`].
///
/// Opening resolves the path and parses the policy/filter xattrs once, so
/// the open call carries the validation cost the paper measures in Table 5.
#[derive(Debug, Clone)]
pub struct OpenFile {
    components: Vec<String>,
    path: String,
}

impl OpenFile {
    /// The normalized absolute path of the open file.
    pub fn path(&self) -> &str {
        &self.path
    }
}

/// The filesystem: an in-memory working tree over a pluggable durability
/// [`Backend`].
///
/// [`Vfs::new`] keeps everything in memory (the seed behaviour);
/// [`Vfs::open_disk`] attaches a [`DiskBackend`], after which every
/// committed mutation is WAL-logged post-guard, and
/// [`checkpoint`](Vfs::checkpoint) folds the log into an atomic tree
/// snapshot whose policy xattrs are deduplicated through the store's
/// shared policy table. Reopening the same directory — even after a crash
/// with a torn WAL tail — recovers every file, xattr, persistent filter,
/// and byte-range policy.
#[derive(Debug)]
pub struct Vfs {
    root: DirNode,
    mode: TrackingMode,
    backend: Box<dyn Backend>,
    torn_recovery: bool,
    torn_cross_segment: bool,
    /// Live-WAL-bytes threshold above which a completed mutation
    /// checkpoints the tree. Zero (the default) disables the trigger.
    auto_checkpoint_wal_bytes: u64,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

impl Vfs {
    /// A filesystem with RESIN tracking enabled.
    pub fn new() -> Self {
        Vfs {
            root: DirNode::default(),
            mode: TrackingMode::On,
            backend: Box::new(MemBackend),
            torn_recovery: false,
            torn_cross_segment: false,
            auto_checkpoint_wal_bytes: 0,
        }
    }

    /// A filesystem with the given tracking mode.
    pub fn with_mode(mode: TrackingMode) -> Self {
        Vfs {
            root: DirNode::default(),
            mode,
            backend: Box::new(MemBackend),
            torn_recovery: false,
            torn_cross_segment: false,
            auto_checkpoint_wal_bytes: 0,
        }
    }

    /// Opens (creating if needed) a disk-backed filesystem rooted at
    /// `dir`, recovering the last checkpoint plus the op log's surviving
    /// prefix. Tracking is on — durability exists to keep persistent
    /// policies persistent.
    pub fn open_disk(dir: impl AsRef<std::path::Path>) -> Result<Vfs> {
        let (backend, recovered) = DiskBackend::open(dir)?;
        let root = match recovered.snapshot {
            Some(image) => decode_tree(&image)?,
            None => DirNode::default(),
        };
        let mut fs = Vfs {
            root,
            mode: TrackingMode::On,
            backend: Box::new(MemBackend), // replay must not re-log
            torn_recovery: recovered.torn_tail,
            torn_cross_segment: recovered.torn_cross_segment,
            auto_checkpoint_wal_bytes: 0,
        };
        for op in &recovered.ops {
            fs.apply_op(op)?;
        }
        fs.backend = Box::new(backend);
        Ok(fs)
    }

    /// True when this open discarded a torn WAL tail: the tree is
    /// consistent, but acknowledged-but-unsynced ops from the crashed
    /// process may have been lost — worth logging or alerting on.
    pub fn recovered_from_torn_wal(&self) -> bool {
        self.torn_recovery
    }

    /// True when the torn tail spanned a WAL segment boundary, so
    /// recovery dropped one or more whole later segments — a wider loss
    /// window than one in-flight append.
    pub fn recovered_torn_cross_segment(&self) -> bool {
        self.torn_cross_segment
    }

    /// Live storage counters of the underlying store, or `None` for an
    /// in-memory tree.
    pub fn store_stats(&self) -> Option<resin_store::StoreStats> {
        self.backend.store_stats()
    }

    /// Arms the size-based checkpoint trigger: once the live WAL grows
    /// past `bytes`, the mutation that crossed the line checkpoints the
    /// tree before returning. Zero (the default) disables the trigger.
    pub fn set_auto_checkpoint_wal_bytes(&mut self, bytes: u64) {
        self.auto_checkpoint_wal_bytes = bytes;
    }

    /// The armed auto-checkpoint threshold (0 = disabled).
    pub fn auto_checkpoint_wal_bytes(&self) -> u64 {
        self.auto_checkpoint_wal_bytes
    }

    /// Runs the size-based trigger after a completed mutation — never
    /// mid-operation: some ops journal write-ahead, and a checkpoint
    /// taken between the log record and the tree update would truncate
    /// an op the snapshot lacks. Best-effort: the mutation is already
    /// applied and logged, so a checkpoint failure must not turn it into
    /// a caller-visible error; the next explicit checkpoint surfaces it.
    fn maybe_auto_checkpoint(&mut self) {
        if self.auto_checkpoint_wal_bytes == 0 {
            return;
        }
        let over = self
            .store_stats()
            .is_some_and(|s| s.live_wal_bytes >= self.auto_checkpoint_wal_bytes);
        if over {
            let _ = self.checkpoint();
        }
    }

    /// The active tracking mode.
    pub fn mode(&self) -> TrackingMode {
        self.mode
    }

    /// True when a durable backend persists this tree.
    pub fn is_durable(&self) -> bool {
        self.backend.is_durable()
    }

    /// Folds the op log into a fresh tree snapshot (no-op in memory, and
    /// skipped when no op was logged since the last checkpoint — the
    /// durable snapshot already equals the tree, so a periodic
    /// checkpointer on an idle filesystem costs nothing).
    pub fn checkpoint(&mut self) -> Result<()> {
        if !self.backend.is_durable() || !self.backend.is_dirty() {
            return Ok(());
        }
        let image = encode_tree(&self.root)?;
        self.backend.checkpoint(&image)
    }

    /// Re-applies one recovered op to the raw tree. The op was committed
    /// post-guard before the crash, so no filter or gate re-runs; a
    /// failure here means the snapshot and log disagree (real corruption)
    /// and surfaces as an error from [`Vfs::open_disk`].
    fn apply_op(&mut self, op: &FsOp) -> Result<()> {
        match op {
            FsOp::Mkdir { path } => {
                let comps = normalize(path)?;
                let mut done: Vec<String> = Vec::new();
                for c in comps {
                    self.get_dir_mut(&done)?
                        .children
                        .entry(c.clone())
                        .or_insert_with(|| Node::Dir(DirNode::default()));
                    done.push(c);
                }
            }
            FsOp::Write {
                path,
                content,
                policy,
            } => {
                let comps = normalize(path)?;
                let (parent, name) = match comps.split_last() {
                    Some((n, p)) => (p.to_vec(), n.clone()),
                    None => return Err(VfsError::InvalidPath(path.clone())),
                };
                let dir = self.get_dir_mut(&parent)?;
                let node = dir
                    .children
                    .entry(name)
                    .or_insert_with(|| Node::File(FileNode::default()));
                let Node::File(file) = node else {
                    return Err(VfsError::IsADirectory(path.clone()));
                };
                file.content = content.clone();
                match policy {
                    Some(p) => {
                        file.xattrs.insert(XATTR_POLICY.to_string(), p.clone());
                    }
                    None => {
                        file.xattrs.remove(XATTR_POLICY);
                    }
                }
            }
            FsOp::Unlink { path } => {
                let comps = normalize(path)?;
                let (parent, name) = match comps.split_last() {
                    Some((n, p)) => (p.to_vec(), n.clone()),
                    None => return Err(VfsError::InvalidPath(path.clone())),
                };
                self.get_dir_mut(&parent)?.children.remove(&name);
            }
            FsOp::Rename { from, to } => {
                let fc = normalize(from)?;
                let tc = normalize(to)?;
                let (fparent, fname) = match fc.split_last() {
                    Some((n, p)) => (p.to_vec(), n.clone()),
                    None => return Err(VfsError::InvalidPath(from.clone())),
                };
                let (tparent, tname) = match tc.split_last() {
                    Some((n, p)) => (p.to_vec(), n.clone()),
                    None => return Err(VfsError::InvalidPath(to.clone())),
                };
                let node = self
                    .get_dir_mut(&fparent)?
                    .children
                    .remove(&fname)
                    .ok_or_else(|| VfsError::NotFound(from.clone()))?;
                self.get_dir_mut(&tparent)?.children.insert(tname, node);
            }
            FsOp::SetXattr { path, key, value } => {
                let comps = normalize(path)?;
                let xattrs = if comps.is_empty() {
                    &mut self.root.xattrs
                } else {
                    self.get_node_mut(&comps)
                        .ok_or_else(|| VfsError::NotFound(path.clone()))?
                        .xattrs_mut()
                };
                xattrs.insert(key.clone(), value.clone());
            }
            FsOp::RemoveXattr { path, key } => {
                let comps = normalize(path)?;
                let xattrs = if comps.is_empty() {
                    &mut self.root.xattrs
                } else {
                    self.get_node_mut(&comps)
                        .ok_or_else(|| VfsError::NotFound(path.clone()))?
                        .xattrs_mut()
                };
                xattrs.remove(key);
            }
        }
        Ok(())
    }

    /// A file-gate context with no authenticated user.
    ///
    /// Resolved from the global [`Runtime`]'s file gate, so registry-level
    /// annotations on the file surface reach every vfs operation.
    pub fn anonymous_ctx() -> Context {
        Runtime::global().open(GateKind::File).into_context()
    }

    /// A file-gate context for an authenticated `user`.
    pub fn user_ctx(user: &str) -> Context {
        let mut c = Self::anonymous_ctx();
        c.set_str("user", user);
        c
    }

    // ---- node lookup ----

    fn get_node(&self, comps: &[String]) -> Option<&Node> {
        let mut dir = &self.root;
        let (last, body) = comps.split_last()?;
        for c in body {
            match dir.children.get(c) {
                Some(Node::Dir(d)) => dir = d,
                _ => return None,
            }
        }
        dir.children.get(last)
    }

    fn get_node_mut(&mut self, comps: &[String]) -> Option<&mut Node> {
        let mut dir = &mut self.root;
        let (last, body) = comps.split_last()?;
        for c in body {
            match dir.children.get_mut(c) {
                Some(Node::Dir(d)) => dir = d,
                _ => return None,
            }
        }
        dir.children.get_mut(last)
    }

    fn get_dir_mut(&mut self, comps: &[String]) -> Result<&mut DirNode> {
        let mut dir = &mut self.root;
        for c in comps {
            match dir.children.get_mut(c) {
                Some(Node::Dir(d)) => dir = d,
                Some(Node::File(_)) => {
                    return Err(VfsError::NotADirectory(to_absolute(comps)));
                }
                None => return Err(VfsError::NotFound(to_absolute(comps))),
            }
        }
        Ok(dir)
    }

    /// Filters at exactly this node (deserialized). Empty vec when none.
    fn filters_on(&self, comps: &[String]) -> Result<Vec<PersistentFilterRef>> {
        let xattr = if comps.is_empty() {
            self.root.xattrs.get(XATTR_FILTER)
        } else {
            self.get_node(comps)
                .and_then(|n| n.xattrs().get(XATTR_FILTER))
        };
        let Some(serialized) = xattr else {
            return Ok(Vec::new());
        };
        serialized.lines().map(deserialize_filter).collect()
    }

    /// The nearest governing filters for a node: its own, else the closest
    /// ancestor's.
    fn governing_filters(&self, comps: &[String]) -> Result<Vec<PersistentFilterRef>> {
        if self.mode == TrackingMode::Off {
            return Ok(Vec::new());
        }
        for depth in (0..=comps.len()).rev() {
            let fs = self.filters_on(&comps[..depth])?;
            if !fs.is_empty() {
                return Ok(fs);
            }
        }
        Ok(Vec::new())
    }

    /// The data-flow gate for one file operation: the registry's file gate
    /// (unguarded — persistence is this crate's job), carrying the caller's
    /// context plus the file path, with every governing persistent filter
    /// mounted on the chain.
    fn file_gate(&self, comps: &[String], path: &str, ctx: &Context) -> Result<Gate> {
        let mut gate = Runtime::global().open(GateKind::File);
        // Merge the caller's entries over the registry-configured context
        // (rather than replacing it), so registry-level file-surface
        // annotations still reach every filter.
        for (key, value) in ctx.iter() {
            gate.context_mut().set(key, value.clone());
        }
        gate.context_mut().set_str("path", path);
        for f in self.governing_filters(comps)? {
            gate.add_filter(Box::new(GateMount::new(f, path)));
        }
        Ok(gate)
    }

    /// The caller's context merged over the registry-configured file-gate
    /// context, so registry-level annotations reach every filter hook.
    fn merged_file_ctx(ctx: &Context) -> Context {
        let mut merged = Runtime::global().open(GateKind::File).into_context();
        for (key, value) in ctx.iter() {
            merged.set(key, value.clone());
        }
        merged
    }

    fn check_dir_op_allowed(
        &self,
        parent: &[String],
        op: DirOp,
        entry: &str,
        ctx: &Context,
    ) -> Result<()> {
        let filters = self.governing_filters(parent)?;
        if filters.is_empty() {
            return Ok(());
        }
        let merged = Self::merged_file_ctx(ctx);
        for f in filters {
            f.check_dir_op(op, entry, &merged)
                .map_err(|v| VfsError::Policy(FlowError::Denied(v)))?;
        }
        Ok(())
    }

    /// Logs `op` to a durable backend; in-memory backends skip even the
    /// op's construction (path/content allocations stay off the hot path).
    fn journal(&mut self, op: impl FnOnce() -> FsOp) -> Result<()> {
        if self.backend.is_durable() {
            self.backend.log(&op())
        } else {
            Ok(())
        }
    }

    // ---- directory operations ----

    /// Creates a directory and all missing ancestors.
    pub fn mkdir_p(&mut self, path: &str, ctx: &Context) -> Result<()> {
        let comps = normalize(path)?;
        let mut done: Vec<String> = Vec::new();
        for c in comps {
            let exists = matches!(
                self.get_dir_mut(&done)?.children.get(&c),
                Some(Node::Dir(_))
            );
            if !exists {
                if let Some(Node::File(_)) = self.get_dir_mut(&done)?.children.get(&c) {
                    done.push(c);
                    return Err(VfsError::NotADirectory(to_absolute(&done)));
                }
                self.check_dir_op_allowed(&done, DirOp::Create, &c, ctx)?;
                self.journal(|| {
                    let mut full = done.clone();
                    full.push(c.clone());
                    FsOp::Mkdir {
                        path: to_absolute(&full),
                    }
                })?;
                self.get_dir_mut(&done)?
                    .children
                    .insert(c.clone(), Node::Dir(DirNode::default()));
            }
            done.push(c);
        }
        self.maybe_auto_checkpoint();
        Ok(())
    }

    /// Lists a directory's entries as `(name, is_dir)` pairs, sorted.
    pub fn list_dir(&self, path: &str) -> Result<Vec<(String, bool)>> {
        let comps = normalize(path)?;
        let dir = if comps.is_empty() {
            &self.root
        } else {
            match self.get_node(&comps) {
                Some(Node::Dir(d)) => d,
                Some(Node::File(_)) => return Err(VfsError::NotADirectory(path.to_string())),
                None => return Err(VfsError::NotFound(path.to_string())),
            }
        };
        Ok(dir
            .children
            .iter()
            .map(|(name, node)| (name.clone(), matches!(node, Node::Dir(_))))
            .collect())
    }

    /// True if a file or directory exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        match normalize(path) {
            Ok(c) if c.is_empty() => true,
            Ok(c) => self.get_node(&c).is_some(),
            Err(_) => false,
        }
    }

    /// True if a directory exists at `path`.
    pub fn is_dir(&self, path: &str) -> bool {
        match normalize(path) {
            Ok(c) if c.is_empty() => true,
            Ok(c) => matches!(self.get_node(&c), Some(Node::Dir(_))),
            Err(_) => false,
        }
    }

    /// Deletes a file or empty directory.
    pub fn unlink(&mut self, path: &str, ctx: &Context) -> Result<()> {
        let comps = normalize(path)?;
        let (parent, name) = match comps.split_last() {
            Some((n, p)) => (p.to_vec(), n.clone()),
            None => return Err(VfsError::InvalidPath(path.to_string())),
        };
        match self.get_node(&comps) {
            None => return Err(VfsError::NotFound(path.to_string())),
            Some(Node::Dir(d)) if !d.children.is_empty() => {
                return Err(VfsError::IsADirectory(path.to_string()));
            }
            _ => {}
        }
        // Deleting is a write to the file and a dir-op on the parent
        // (tracking off bypasses the gate, like write_file/read_file).
        if self.mode == TrackingMode::On {
            self.file_gate(&comps, path, ctx)?
                .export(TaintedString::new())
                .map_err(VfsError::from)?;
            self.check_dir_op_allowed(&parent, DirOp::Delete, &name, ctx)?;
        }
        self.journal(|| FsOp::Unlink {
            path: to_absolute(&comps),
        })?;
        self.get_dir_mut(&parent)?.children.remove(&name);
        self.maybe_auto_checkpoint();
        Ok(())
    }

    /// Renames `from` to `to` (both full paths).
    pub fn rename(&mut self, from: &str, to: &str, ctx: &Context) -> Result<()> {
        let fc = normalize(from)?;
        let tc = normalize(to)?;
        let (fparent, fname) = match fc.split_last() {
            Some((n, p)) => (p.to_vec(), n.clone()),
            None => return Err(VfsError::InvalidPath(from.to_string())),
        };
        let (tparent, tname) = match tc.split_last() {
            Some((n, p)) => (p.to_vec(), n.clone()),
            None => return Err(VfsError::InvalidPath(to.to_string())),
        };
        if self.get_node(&fc).is_none() {
            return Err(VfsError::NotFound(from.to_string()));
        }
        if self.get_node(&tc).is_some() {
            return Err(VfsError::AlreadyExists(to.to_string()));
        }
        self.check_dir_op_allowed(&fparent, DirOp::Rename, &fname, ctx)?;
        self.check_dir_op_allowed(&tparent, DirOp::Create, &tname, ctx)?;
        // Validate the destination parent *before* detaching the node: a
        // rename into a missing directory must fail cleanly, not drop the
        // source node on the floor — and must leave no op in the WAL,
        // whose replay would brick every future open.
        self.check_is_dir(&tparent)?;
        let node = self
            .get_dir_mut(&fparent)?
            .children
            .remove(&fname)
            .expect("checked above");
        self.get_dir_mut(&tparent)?
            .children
            .insert(tname.clone(), node);
        if let Err(e) = self.journal(|| FsOp::Rename {
            from: to_absolute(&fc),
            to: to_absolute(&tc),
        }) {
            // Un-move: a rename the WAL never recorded must not be
            // observable, or a restart would silently undo it.
            let node = self
                .get_dir_mut(&tparent)?
                .children
                .remove(&tname)
                .expect("inserted above");
            self.get_dir_mut(&fparent)?.children.insert(fname, node);
            return Err(e);
        }
        self.maybe_auto_checkpoint();
        Ok(())
    }

    /// Immutable twin of [`get_dir_mut`](Vfs::get_dir_mut)'s validation:
    /// errors exactly when that walk would, without touching the tree.
    fn check_is_dir(&self, comps: &[String]) -> Result<()> {
        let mut dir = &self.root;
        for c in comps {
            match dir.children.get(c) {
                Some(Node::Dir(d)) => dir = d,
                Some(Node::File(_)) => {
                    return Err(VfsError::NotADirectory(to_absolute(comps)));
                }
                None => return Err(VfsError::NotFound(to_absolute(comps))),
            }
        }
        Ok(())
    }

    // ---- file I/O ----

    /// Opens a file, validating its path and RESIN xattrs.
    pub fn open(&self, path: &str) -> Result<OpenFile> {
        let components = normalize(path)?;
        match self.get_node(&components) {
            Some(Node::File(f)) => {
                if self.mode == TrackingMode::On {
                    // Parse (and thereby validate) the RESIN xattrs; this is
                    // the per-open cost Table 5 measures.
                    if let Some(spans) = f.xattrs.get(XATTR_POLICY) {
                        deserialize_spans(&f.content, spans)?;
                    }
                    if let Some(filters) = f.xattrs.get(XATTR_FILTER) {
                        for line in filters.lines() {
                            deserialize_filter(line)?;
                        }
                    }
                }
                Ok(OpenFile {
                    path: to_absolute(&components),
                    components,
                })
            }
            Some(Node::Dir(_)) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Writes (replaces) a file's content, creating it if needed.
    ///
    /// With tracking on, the content's policies are serialized into the
    /// policy xattr, and persistent filters govern the write.
    pub fn write_file(&mut self, path: &str, data: &TaintedString, ctx: &Context) -> Result<()> {
        let comps = normalize(path)?;
        let (parent, name) = match comps.split_last() {
            Some((n, p)) => (p.to_vec(), n.clone()),
            None => return Err(VfsError::InvalidPath(path.to_string())),
        };
        let creating = self.get_node(&comps).is_none();
        // Route the data through the file gate: governing persistent
        // filters interpose exactly like any other boundary's filters.
        // (Tracking off — the unmodified-runtime baseline — bypasses the
        // gate and borrows the data as-is.)
        let exported;
        let data: &TaintedString = if self.mode == TrackingMode::On {
            let gate = self.file_gate(&comps, path, ctx)?;
            let data = if gate.filter_count() == 0 && gate.rule_count() == 0 {
                // No interposition: skip the identity export and its clone.
                data
            } else {
                exported = gate.export(data.clone()).map_err(VfsError::from)?;
                &exported
            };
            if creating {
                self.check_dir_op_allowed(&parent, DirOp::Create, &name, ctx)?;
            }
            data
        } else {
            data
        };
        let serialized = if self.mode == TrackingMode::On && !data.is_untainted() {
            Some(serialize_spans(data))
        } else {
            None
        };
        let dir = self.get_dir_mut(&parent)?;
        let node = dir
            .children
            .entry(name.clone())
            .or_insert_with(|| Node::File(FileNode::default()));
        let Node::File(file) = node else {
            return Err(VfsError::IsADirectory(path.to_string()));
        };
        // Prior state for the journal-failure revert, captured without
        // copying: the old content moves out (replaced either way) and
        // only the small policy xattr clones.
        let old_content = std::mem::replace(&mut file.content, data.as_str().to_string());
        let old_policy = match &serialized {
            Some(s) => file.xattrs.insert(XATTR_POLICY.to_string(), s.clone()),
            None => file.xattrs.remove(XATTR_POLICY),
        };
        // Logged only after the tree mutation succeeded: a write that
        // errors out (directory in the way, missing parent) must never
        // reach the WAL, where its replay would fail every future
        // `open_disk`. The caller sees `Ok` only once the op is logged,
        // so a crash in between loses nothing that was acknowledged.
        if let Err(e) = self.journal(|| FsOp::Write {
            path: to_absolute(&comps),
            content: data.as_str().to_string(),
            policy: serialized,
        }) {
            // Put the prior state back — the caller must never observe a
            // write the log lacks.
            let dir = self.get_dir_mut(&parent)?;
            if creating {
                dir.children.remove(&name);
            } else if let Some(Node::File(file)) = dir.children.get_mut(&name) {
                file.content = old_content;
                match old_policy {
                    Some(p) => {
                        file.xattrs.insert(XATTR_POLICY.to_string(), p);
                    }
                    None => {
                        file.xattrs.remove(XATTR_POLICY);
                    }
                }
            }
            return Err(e);
        }
        self.maybe_auto_checkpoint();
        Ok(())
    }

    /// Appends to a file, splicing the new data's policies after the
    /// existing content's (byte-granularity persistence).
    pub fn append_file(&mut self, path: &str, data: &TaintedString, ctx: &Context) -> Result<()> {
        let existing = if self.exists(path) {
            self.read_file(path, ctx)?
        } else {
            TaintedString::new()
        };
        let combined = existing.concat(data);
        self.write_file(path, &combined, ctx)
    }

    /// Reads a file, reviving its persistent policies (tracking on).
    pub fn read_file(&self, path: &str, ctx: &Context) -> Result<TaintedString> {
        let comps = normalize(path)?;
        let file = match self.get_node(&comps) {
            Some(Node::File(f)) => f,
            Some(Node::Dir(_)) => return Err(VfsError::IsADirectory(path.to_string())),
            None => return Err(VfsError::NotFound(path.to_string())),
        };
        if self.mode == TrackingMode::Off {
            return Ok(TaintedString::from(file.content.as_str()));
        }
        // Pull the raw content in through the file gate: the governing
        // mounts authorize the read first, then a revival filter (appended
        // after them) deserializes the persistent policies — so unauthorized
        // readers never trigger (or observe errors from) deserialization.
        let mut gate = self.file_gate(&comps, path, ctx)?;
        if let Some(spans) = file.xattrs.get(XATTR_POLICY) {
            let spans = spans.clone();
            gate.add_filter(Box::new(FnFilter::on_read(move |data, _, _| {
                deserialize_spans(data.as_str(), &spans).map_err(FlowError::from)
            })));
        }
        gate.feed(TaintedString::from(file.content.as_str()));
        Ok(gate
            .read()
            .map_err(VfsError::from)?
            .expect("exactly one datum queued on the gate"))
    }

    /// Reads raw bytes, bypassing policy revival and filters.
    ///
    /// This models a *non*-RESIN-aware consumer (e.g. a stock web server
    /// serving static files); see the myPHPscripts password-disclosure
    /// scenario, where only a RESIN-aware server catches the leak.
    pub fn read_raw(&self, path: &str) -> Result<String> {
        let comps = normalize(path)?;
        match self.get_node(&comps) {
            Some(Node::File(f)) => Ok(f.content.clone()),
            Some(Node::Dir(_)) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Reads through an [`OpenFile`] handle.
    pub fn read_handle(&self, handle: &OpenFile, ctx: &Context) -> Result<TaintedString> {
        self.read_file(&handle.path, ctx)
    }

    /// Writes through an [`OpenFile`] handle.
    pub fn write_handle(
        &mut self,
        handle: &OpenFile,
        data: &TaintedString,
        ctx: &Context,
    ) -> Result<()> {
        let _ = &handle.components;
        self.write_file(&handle.path, data, ctx)
    }

    /// File size in bytes.
    pub fn file_len(&self, path: &str) -> Result<usize> {
        let comps = normalize(path)?;
        match self.get_node(&comps) {
            Some(Node::File(f)) => Ok(f.content.len()),
            Some(Node::Dir(_)) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    // ---- xattrs and persistent filters ----

    /// Sets an extended attribute on a file or directory.
    pub fn set_xattr(&mut self, path: &str, key: &str, value: &str) -> Result<()> {
        let comps = normalize(path)?;
        if !comps.is_empty() && self.get_node(&comps).is_none() {
            return Err(VfsError::NotFound(path.to_string()));
        }
        self.journal(|| FsOp::SetXattr {
            path: to_absolute(&comps),
            key: key.to_string(),
            value: value.to_string(),
        })?;
        if comps.is_empty() {
            self.root.xattrs.insert(key.to_string(), value.to_string());
        } else {
            match self.get_node_mut(&comps) {
                Some(n) => {
                    n.xattrs_mut().insert(key.to_string(), value.to_string());
                }
                None => return Err(VfsError::NotFound(path.to_string())),
            }
        }
        self.maybe_auto_checkpoint();
        Ok(())
    }

    /// Reads an extended attribute.
    pub fn get_xattr(&self, path: &str, key: &str) -> Result<Option<String>> {
        let comps = normalize(path)?;
        if comps.is_empty() {
            return Ok(self.root.xattrs.get(key).cloned());
        }
        match self.get_node(&comps) {
            Some(n) => Ok(n.xattrs().get(key).cloned()),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Attaches a persistent filter object to a file or directory,
    /// serializing it into the filter xattr (§3.2.3).
    pub fn attach_filter(&mut self, path: &str, filter: &PersistentFilterRef) -> Result<()> {
        let line = serialize_filter(filter);
        let existing = self.get_xattr(path, XATTR_FILTER)?.unwrap_or_default();
        let combined = if existing.is_empty() {
            line
        } else {
            format!("{existing}\n{line}")
        };
        self.set_xattr(path, XATTR_FILTER, &combined)
    }

    /// Removes all persistent filters from a node.
    pub fn clear_filters(&mut self, path: &str) -> Result<()> {
        let comps = normalize(path)?;
        if !comps.is_empty() && self.get_node(&comps).is_none() {
            return Err(VfsError::NotFound(path.to_string()));
        }
        self.journal(|| FsOp::RemoveXattr {
            path: to_absolute(&comps),
            key: XATTR_FILTER.to_string(),
        })?;
        if comps.is_empty() {
            self.root.xattrs.remove(XATTR_FILTER);
        } else {
            match self.get_node_mut(&comps) {
                Some(n) => {
                    n.xattrs_mut().remove(XATTR_FILTER);
                }
                None => return Err(VfsError::NotFound(path.to_string())),
            }
        }
        self.maybe_auto_checkpoint();
        Ok(())
    }
}

// ---- tree snapshot codec ----

// Node tags in the snapshot body.
const NODE_FILE: u8 = 0;
const NODE_DIR: u8 = 1;
// Xattr value encodings: raw string, or span refs into the snapshot's
// shared policy table (used for `user.resin.policy`, so a thousand files
// under one ACL persist the policy body once).
const XATTR_RAW: u8 = 0;
const XATTR_SPANS: u8 = 1;

fn encode_xattrs(xattrs: &BTreeMap<String, String>, w: &mut SnapshotWriter) -> Result<()> {
    w.put_u32(xattrs.len() as u32);
    for (k, v) in xattrs {
        w.put_str(k);
        if k == XATTR_POLICY && v.starts_with('#') {
            if let Ok(refs) = w.intern_spans_blob(v) {
                w.put_u8(XATTR_SPANS);
                w.put_span_refs(&refs);
                continue;
            }
        }
        w.put_u8(XATTR_RAW);
        w.put_str(v);
    }
    Ok(())
}

fn decode_xattrs(r: &mut SnapshotReader) -> Result<BTreeMap<String, String>> {
    let n = r.u32().map_err(VfsError::from)?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let key = r.str().map_err(VfsError::from)?;
        let value = match r.u8().map_err(VfsError::from)? {
            XATTR_RAW => r.str().map_err(VfsError::from)?,
            XATTR_SPANS => {
                let refs = r.span_refs().map_err(VfsError::from)?;
                r.spans_blob(&refs).map_err(VfsError::from)?
            }
            other => return Err(VfsError::Storage(format!("unknown xattr tag {other}"))),
        };
        out.insert(key, value);
    }
    Ok(out)
}

fn encode_dir(dir: &DirNode, w: &mut SnapshotWriter) -> Result<()> {
    encode_xattrs(&dir.xattrs, w)?;
    w.put_u32(dir.children.len() as u32);
    for (name, node) in &dir.children {
        w.put_str(name);
        match node {
            Node::File(f) => {
                w.put_u8(NODE_FILE);
                w.put_str(&f.content);
                encode_xattrs(&f.xattrs, w)?;
            }
            Node::Dir(d) => {
                w.put_u8(NODE_DIR);
                encode_dir(d, w)?;
            }
        }
    }
    Ok(())
}

fn decode_dir(r: &mut SnapshotReader) -> Result<DirNode> {
    let xattrs = decode_xattrs(r)?;
    let n = r.u32().map_err(VfsError::from)?;
    let mut children = BTreeMap::new();
    for _ in 0..n {
        let name = r.str().map_err(VfsError::from)?;
        let node = match r.u8().map_err(VfsError::from)? {
            NODE_FILE => {
                let content = r.str().map_err(VfsError::from)?;
                let xattrs = decode_xattrs(r)?;
                Node::File(FileNode { content, xattrs })
            }
            NODE_DIR => Node::Dir(decode_dir(r)?),
            other => return Err(VfsError::Storage(format!("unknown node tag {other}"))),
        };
        children.insert(name, node);
    }
    Ok(DirNode { children, xattrs })
}

fn encode_tree(root: &DirNode) -> Result<Vec<u8>> {
    let mut w = SnapshotWriter::new();
    encode_dir(root, &mut w)?;
    Ok(w.finish())
}

fn decode_tree(image: &[u8]) -> Result<DirNode> {
    let mut r = SnapshotReader::parse(image).map_err(VfsError::from)?;
    decode_dir(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfilter::AclWriteFilter;
    use resin_core::{Acl, PagePolicy, PasswordPolicy, Right, UntrustedData};
    use std::sync::Arc;

    fn anon() -> Context {
        Vfs::anonymous_ctx()
    }

    #[test]
    fn mkdir_write_read_roundtrip() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/a/b/c", &anon()).unwrap();
        assert!(fs.is_dir("/a/b/c"));
        fs.write_file("/a/b/c/f.txt", &TaintedString::from("hi"), &anon())
            .unwrap();
        assert_eq!(
            fs.read_file("/a/b/c/f.txt", &anon()).unwrap().as_str(),
            "hi"
        );
        assert_eq!(fs.file_len("/a/b/c/f.txt").unwrap(), 2);
    }

    #[test]
    fn persistent_policy_roundtrip() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/data", &anon()).unwrap();
        let mut secret = TaintedString::from("user:pw123");
        secret.add_policy_range(5..10, Arc::new(PasswordPolicy::new("u@x")));
        fs.write_file("/data/pw.txt", &secret, &anon()).unwrap();

        // The xattr holds the serialized policy.
        let x = fs.get_xattr("/data/pw.txt", XATTR_POLICY).unwrap().unwrap();
        assert!(x.contains("PasswordPolicy"));

        // Reading revives the policy at the same byte range.
        let back = fs.read_file("/data/pw.txt", &anon()).unwrap();
        assert!(back.taint_eq(&secret));
        assert!(back.label_at(0).is_empty());
        assert!(back.label_at(5).has::<PasswordPolicy>());
    }

    #[test]
    fn tracking_off_drops_policies() {
        let mut fs = Vfs::with_mode(TrackingMode::Off);
        fs.mkdir_p("/d", &anon()).unwrap();
        let mut secret = TaintedString::from("pw");
        secret.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        fs.write_file("/d/f", &secret, &anon()).unwrap();
        let back = fs.read_file("/d/f", &anon()).unwrap();
        assert!(back.is_untainted(), "unmodified runtime loses taint");
        assert_eq!(fs.mode(), TrackingMode::Off);
    }

    #[test]
    fn read_raw_bypasses_revival() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d", &anon()).unwrap();
        let mut secret = TaintedString::from("pw");
        secret.add_policy(Arc::new(PasswordPolicy::new("u@x")));
        fs.write_file("/d/f", &secret, &anon()).unwrap();
        assert_eq!(fs.read_raw("/d/f").unwrap(), "pw");
    }

    #[test]
    fn untainted_write_has_no_policy_xattr() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d", &anon()).unwrap();
        fs.write_file("/d/f", &TaintedString::from("x"), &anon())
            .unwrap();
        assert_eq!(fs.get_xattr("/d/f", XATTR_POLICY).unwrap(), None);
        // Overwriting a tainted file with untainted data clears the xattr.
        let mut t = TaintedString::from("y");
        t.add_policy(Arc::new(UntrustedData::new()));
        fs.write_file("/d/f", &t, &anon()).unwrap();
        assert!(fs.get_xattr("/d/f", XATTR_POLICY).unwrap().is_some());
        fs.write_file("/d/f", &TaintedString::from("z"), &anon())
            .unwrap();
        assert_eq!(fs.get_xattr("/d/f", XATTR_POLICY).unwrap(), None);
    }

    #[test]
    fn append_splices_policies() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d", &anon()).unwrap();
        fs.write_file("/d/log", &TaintedString::from("plain:"), &anon())
            .unwrap();
        let mut t = TaintedString::from("tainted");
        t.add_policy(Arc::new(UntrustedData::new()));
        fs.append_file("/d/log", &t, &anon()).unwrap();
        let back = fs.read_file("/d/log", &anon()).unwrap();
        assert_eq!(back.as_str(), "plain:tainted");
        assert!(back.label_at(0).is_empty());
        assert!(back.label_at(6).has::<UntrustedData>());
    }

    #[test]
    fn write_acl_filter_blocks_unauthorized_writes() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/pages/Front", &anon()).unwrap();
        let filter: PersistentFilterRef = Arc::new(AclWriteFilter::new(
            Acl::new().grant("alice", &[Right::Write]),
        ));
        fs.attach_filter("/pages/Front", &filter).unwrap();

        let alice = Vfs::user_ctx("alice");
        let bob = Vfs::user_ctx("bob");
        fs.write_file("/pages/Front/v1", &TaintedString::from("rev1"), &alice)
            .unwrap();
        let err = fs
            .write_file("/pages/Front/v1", &TaintedString::from("vandal"), &bob)
            .unwrap_err();
        assert!(err.is_violation());
        // Creating new versions is also governed (dir op).
        let err = fs
            .write_file("/pages/Front/v2", &TaintedString::from("vandal"), &bob)
            .unwrap_err();
        assert!(err.is_violation());
        // Deleting and renaming too.
        assert!(fs
            .unlink("/pages/Front/v1", &bob)
            .unwrap_err()
            .is_violation());
        assert!(fs
            .rename("/pages/Front/v1", "/pages/Front/v0", &bob)
            .unwrap_err()
            .is_violation());
        assert!(fs
            .rename("/pages/Front/v1", "/pages/Front/v0", &alice)
            .is_ok());
    }

    #[test]
    fn nearest_filter_wins() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/files/alice", &anon()).unwrap();
        // Root denies everyone; alice's home allows alice.
        let deny: PersistentFilterRef = Arc::new(AclWriteFilter::new(Acl::new()));
        let allow: PersistentFilterRef = Arc::new(AclWriteFilter::new(
            Acl::new().grant("alice", &[Right::Write]),
        ));
        fs.attach_filter("/files", &deny).unwrap();
        fs.attach_filter("/files/alice", &allow).unwrap();

        let alice = Vfs::user_ctx("alice");
        fs.write_file("/files/alice/doc", &TaintedString::from("ok"), &alice)
            .unwrap();
        let err = fs
            .write_file("/files/evil", &TaintedString::from("no"), &alice)
            .unwrap_err();
        assert!(err.is_violation(), "root filter governs outside homes");
    }

    #[test]
    fn traversal_attack_caught_by_filter_not_path() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/files/alice", &anon()).unwrap();
        fs.mkdir_p("/files/bob", &anon()).unwrap();
        let bob_only: PersistentFilterRef = Arc::new(AclWriteFilter::new(
            Acl::new().grant("bob", &[Right::Write]),
        ));
        fs.attach_filter("/files/bob", &bob_only).unwrap();

        // Alice submits "../bob/x" to a naive app that joins paths blindly.
        let hostile = crate::path::join("/files/alice", "../bob/pwned");
        let alice = Vfs::user_ctx("alice");
        let err = fs
            .write_file(&hostile, &TaintedString::from("pwn"), &alice)
            .unwrap_err();
        assert!(err.is_violation(), "write filter stops the traversal");
    }

    #[test]
    fn unlink_and_rename_basics() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d", &anon()).unwrap();
        fs.write_file("/d/a", &TaintedString::from("1"), &anon())
            .unwrap();
        fs.rename("/d/a", "/d/b", &anon()).unwrap();
        assert!(!fs.exists("/d/a"));
        assert!(fs.exists("/d/b"));
        fs.unlink("/d/b", &anon()).unwrap();
        assert!(!fs.exists("/d/b"));
        assert!(matches!(
            fs.unlink("/d/b", &anon()),
            Err(VfsError::NotFound(_))
        ));
        assert!(matches!(fs.unlink("/d", &anon()), Ok(())), "empty dir ok");
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d/sub", &anon()).unwrap();
        assert!(matches!(
            fs.unlink("/d", &anon()),
            Err(VfsError::IsADirectory(_))
        ));
    }

    #[test]
    fn open_validates() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d", &anon()).unwrap();
        fs.write_file("/d/f", &TaintedString::from("x"), &anon())
            .unwrap();
        let h = fs.open("/d/f").unwrap();
        assert_eq!(h.path(), "/d/f");
        assert_eq!(fs.read_handle(&h, &anon()).unwrap().as_str(), "x");
        fs.write_handle(&h, &TaintedString::from("y"), &anon())
            .unwrap();
        assert_eq!(fs.read_raw("/d/f").unwrap(), "y");
        assert!(matches!(fs.open("/d"), Err(VfsError::IsADirectory(_))));
        assert!(matches!(fs.open("/nope"), Err(VfsError::NotFound(_))));
    }

    #[test]
    fn list_dir_sorted() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d/z", &anon()).unwrap();
        fs.write_file("/d/a", &TaintedString::from(""), &anon())
            .unwrap();
        let l = fs.list_dir("/d").unwrap();
        assert_eq!(l, vec![("a".to_string(), false), ("z".to_string(), true)]);
        assert!(fs.list_dir("/d/a").is_err());
        assert!(fs.list_dir("/nope").is_err());
    }

    #[test]
    fn page_policy_persists_through_file() {
        // The Figure 5 flow: PagePolicy serialized on write, revived on read.
        let mut fs = Vfs::new();
        fs.mkdir_p("/wiki", &anon()).unwrap();
        let acl = Acl::new().grant("alice", &[Right::Read]);
        let page = TaintedString::with_policy("wiki text", Arc::new(PagePolicy::new(acl)));
        fs.write_file("/wiki/Front", &page, &anon()).unwrap();
        let back = fs.read_file("/wiki/Front", &anon()).unwrap();
        let pol = back.label();
        assert!(pol.has::<PagePolicy>());
        let policies = pol.policies();
        assert!(policies
            .iter()
            .find_map(|p| p.as_any().downcast_ref::<PagePolicy>())
            .unwrap()
            .acl()
            .may("alice", Right::Read));
    }

    fn disk_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("resin-vfs-test-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn disk_reopen_recovers_files_policies_and_filters() {
        let dir = disk_dir("reopen");
        {
            let mut fs = Vfs::open_disk(&dir).unwrap();
            assert!(fs.is_durable());
            fs.mkdir_p("/pages/Front", &anon()).unwrap();
            let filter: PersistentFilterRef = Arc::new(AclWriteFilter::new(
                Acl::new().grant("alice", &[Right::Write]),
            ));
            fs.attach_filter("/pages/Front", &filter).unwrap();
            let mut secret = TaintedString::from("user:pw123");
            secret.add_policy_range(5..10, Arc::new(PasswordPolicy::new("u@x")));
            fs.write_file("/pages/Front/v1", &secret, &Vfs::user_ctx("alice"))
                .unwrap();
            // Dropped without checkpoint: recovery must come from the WAL.
        }
        let fs = Vfs::open_disk(&dir).unwrap();
        let back = fs.read_file("/pages/Front/v1", &anon()).unwrap();
        assert_eq!(back.as_str(), "user:pw123");
        assert!(back.label_at(5).has::<PasswordPolicy>(), "policy revived");
        assert!(back.label_at(0).is_empty());
        // The persistent write filter survived too.
        let mut fs = fs;
        let err = fs
            .write_file(
                "/pages/Front/v1",
                &TaintedString::from("vandal"),
                &Vfs::user_ctx("bob"),
            )
            .unwrap_err();
        assert!(err.is_violation(), "write ACL survives restart");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_checkpoint_then_more_ops_recovers_both() {
        let dir = disk_dir("ckpt");
        {
            let mut fs = Vfs::open_disk(&dir).unwrap();
            fs.mkdir_p("/d", &anon()).unwrap();
            let mut a = TaintedString::from("aa");
            a.add_policy(Arc::new(UntrustedData::new()));
            fs.write_file("/d/a", &a, &anon()).unwrap();
            fs.checkpoint().unwrap();
            fs.write_file("/d/b", &TaintedString::from("bb"), &anon())
                .unwrap();
            fs.rename("/d/b", "/d/c", &anon()).unwrap();
            fs.unlink("/d/a", &anon()).unwrap();
        }
        let fs = Vfs::open_disk(&dir).unwrap();
        assert!(!fs.exists("/d/a"), "post-checkpoint unlink replayed");
        assert_eq!(fs.read_file("/d/c", &anon()).unwrap().as_str(), "bb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_durable_write_never_bricks_reopen() {
        // A write that errors (target is a directory / parent missing)
        // must leave no WAL record: its replay would otherwise fail every
        // future open_disk.
        let dir = disk_dir("failed-write");
        {
            let mut fs = Vfs::open_disk(&dir).unwrap();
            fs.mkdir_p("/pages/Front", &anon()).unwrap();
            let err = fs
                .write_file("/pages/Front", &TaintedString::from("x"), &anon())
                .unwrap_err();
            assert!(matches!(err, VfsError::IsADirectory(_)));
            assert!(matches!(
                fs.write_file("/no/parent/here", &TaintedString::from("x"), &anon()),
                Err(VfsError::NotFound(_))
            ));
            fs.write_file("/pages/Front/v1", &TaintedString::from("ok"), &anon())
                .unwrap();
            // A rename into a missing parent must fail cleanly: source
            // intact in memory, no poison op in the WAL.
            assert!(matches!(
                fs.rename("/pages/Front/v1", "/missing/dir/x", &anon()),
                Err(VfsError::NotFound(_))
            ));
            assert!(
                fs.exists("/pages/Front/v1"),
                "source survives the failed rename"
            );
        }
        let fs = Vfs::open_disk(&dir).expect("failed writes must not poison the log");
        assert!(!fs.recovered_from_torn_wal(), "clean log, clean open");
        assert_eq!(
            fs.read_file("/pages/Front/v1", &anon()).unwrap().as_str(),
            "ok"
        );
        assert!(fs.is_dir("/pages/Front"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_backend_checkpoint_is_noop() {
        let mut fs = Vfs::new();
        assert!(!fs.is_durable());
        fs.checkpoint().unwrap();
    }

    #[test]
    fn clean_checkpoint_is_skipped() {
        let dir = disk_dir("clean-ckpt");
        {
            let mut fs = Vfs::open_disk(&dir).unwrap();
            fs.mkdir_p("/d", &anon()).unwrap();
            fs.write_file("/d/a", &TaintedString::from("aa"), &anon())
                .unwrap();
            fs.checkpoint().unwrap();
            let after_first = fs.store_stats().unwrap();
            assert_eq!(after_first.base_seq, 2);
            // No ops since: a periodic checkpointer costs nothing (the
            // skip mechanics are pinned down in the backend tests).
            fs.checkpoint().unwrap();
            fs.checkpoint().unwrap();
            assert_eq!(fs.store_stats().unwrap().base_seq, after_first.base_seq);
            // The next op makes the tree dirty again.
            fs.write_file("/d/b", &TaintedString::from("bb"), &anon())
                .unwrap();
            fs.checkpoint().unwrap();
            assert_eq!(fs.store_stats().unwrap().base_seq, 3);
        }
        let fs = Vfs::open_disk(&dir).unwrap();
        assert!(!fs.recovered_from_torn_wal());
        assert!(!fs.recovered_torn_cross_segment());
        assert_eq!(fs.read_file("/d/b", &anon()).unwrap().as_str(), "bb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_to_dir_path_fails() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d/sub", &anon()).unwrap();
        let err = fs
            .write_file("/d/sub", &TaintedString::from("x"), &anon())
            .unwrap_err();
        assert!(matches!(err, VfsError::IsADirectory(_)));
        // mkdir over a file fails.
        fs.write_file("/d/file", &TaintedString::from("x"), &anon())
            .unwrap();
        assert!(fs.mkdir_p("/d/file/sub", &anon()).is_err());
    }

    #[test]
    fn size_based_auto_checkpoint_bounds_the_op_log() {
        let dir = disk_dir("auto-ckpt");
        {
            let mut fs = Vfs::open_disk(&dir).unwrap();
            fs.mkdir_p("/logs", &anon()).unwrap();
            // Off by default: the op log grows without bound.
            for i in 0..16 {
                fs.write_file(
                    &format!("/logs/entry-{i}"),
                    &TaintedString::from("a log line fat enough to matter"),
                    &anon(),
                )
                .unwrap();
            }
            let before = fs.store_stats().unwrap();
            assert_eq!(before.base_seq, 0, "no checkpoint without the trigger");
            assert!(before.live_wal_bytes > 256);

            fs.set_auto_checkpoint_wal_bytes(256);
            assert_eq!(fs.auto_checkpoint_wal_bytes(), 256);
            let mut max_wal = 0;
            for i in 16..48 {
                fs.write_file(
                    &format!("/logs/entry-{i}"),
                    &TaintedString::from("a log line fat enough to matter"),
                    &anon(),
                )
                .unwrap();
                max_wal = max_wal.max(fs.store_stats().unwrap().live_wal_bytes);
            }
            let after = fs.store_stats().unwrap();
            assert!(after.base_seq > 0, "trigger never checkpointed");
            // One op may overshoot before the trigger fires, but the log
            // never grows a second threshold past the line.
            assert!(
                max_wal < 256 + 1024,
                "op log unbounded with the trigger armed: {max_wal}"
            );
        }
        // Recovery sees checkpoint + tail, nothing lost.
        let fs = Vfs::open_disk(&dir).unwrap();
        for i in 0..48 {
            assert!(fs.exists(&format!("/logs/entry-{i}")), "entry-{i} lost");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
