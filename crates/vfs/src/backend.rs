//! Durability backends for the vfs.
//!
//! The tree in [`crate::Vfs`] is the working state; a [`Backend`] is the
//! durability sink underneath it. Every mutating file operation that
//! commits to the tree is offered to the backend as an [`FsOp`]; a
//! checkpoint hands it the whole encoded tree. Two impls:
//!
//! * [`MemBackend`] — the default: nothing persists (the seed behaviour,
//!   and what `TrackingMode::Off` baselines measure against);
//! * [`DiskBackend`] — a [`resin_store::Store`]: ops append to a
//!   checksummed WAL, checkpoints write an atomic snapshot whose policy
//!   xattrs are deduplicated through the shared policy table, and
//!   [`DiskBackend::open`] recovers the last consistent tree even from a
//!   torn WAL tail.
//!
//! Ops are logged **post-guard**: persistent filters and dir-op checks
//! ran before the tree mutated, so recovery re-applies raw state changes
//! without re-running (or needing the code of) any filter.

use std::fmt;
use std::path::Path;

use resin_store::io::{put_str, put_u8, Cursor};
use resin_store::{Store, StoreError};

use crate::error::{Result, VfsError};

impl From<StoreError> for VfsError {
    fn from(e: StoreError) -> Self {
        VfsError::Storage(e.to_string())
    }
}

/// One committed mutation of the tree, as logged to a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// A directory came into existence (one op per created component).
    Mkdir {
        /// Absolute path of the created directory.
        path: String,
    },
    /// A file's content was replaced (creating it if needed).
    Write {
        /// Absolute file path.
        path: String,
        /// The new content bytes.
        content: String,
        /// Serialized byte-range policies (`None` clears the policy
        /// xattr, mirroring an untainted write).
        policy: Option<String>,
    },
    /// A file or empty directory was removed.
    Unlink {
        /// Absolute path removed.
        path: String,
    },
    /// A node moved.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// An extended attribute was set (persistent filters arrive here:
    /// `attach_filter` is a `user.resin.filter` xattr write).
    SetXattr {
        /// Node path.
        path: String,
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: String,
    },
    /// An extended attribute was removed (e.g. `clear_filters`).
    RemoveXattr {
        /// Node path.
        path: String,
        /// Attribute key.
        key: String,
    },
}

const OP_MKDIR: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_UNLINK: u8 = 2;
const OP_RENAME: u8 = 3;
const OP_SET_XATTR: u8 = 4;
const OP_REMOVE_XATTR: u8 = 5;

impl FsOp {
    /// Encodes the op as a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            FsOp::Mkdir { path } => {
                put_u8(&mut buf, OP_MKDIR);
                put_str(&mut buf, path);
            }
            FsOp::Write {
                path,
                content,
                policy,
            } => {
                put_u8(&mut buf, OP_WRITE);
                put_str(&mut buf, path);
                put_str(&mut buf, content);
                match policy {
                    Some(p) => {
                        put_u8(&mut buf, 1);
                        put_str(&mut buf, p);
                    }
                    None => put_u8(&mut buf, 0),
                }
            }
            FsOp::Unlink { path } => {
                put_u8(&mut buf, OP_UNLINK);
                put_str(&mut buf, path);
            }
            FsOp::Rename { from, to } => {
                put_u8(&mut buf, OP_RENAME);
                put_str(&mut buf, from);
                put_str(&mut buf, to);
            }
            FsOp::SetXattr { path, key, value } => {
                put_u8(&mut buf, OP_SET_XATTR);
                put_str(&mut buf, path);
                put_str(&mut buf, key);
                put_str(&mut buf, value);
            }
            FsOp::RemoveXattr { path, key } => {
                put_u8(&mut buf, OP_REMOVE_XATTR);
                put_str(&mut buf, path);
                put_str(&mut buf, key);
            }
        }
        buf
    }

    /// Decodes a WAL payload.
    pub fn decode(payload: &[u8]) -> Result<FsOp> {
        let mut c = Cursor::new(payload);
        let op = match c.u8().map_err(VfsError::from)? {
            OP_MKDIR => FsOp::Mkdir {
                path: c.str().map_err(VfsError::from)?,
            },
            OP_WRITE => {
                let path = c.str().map_err(VfsError::from)?;
                let content = c.str().map_err(VfsError::from)?;
                let policy = match c.u8().map_err(VfsError::from)? {
                    0 => None,
                    _ => Some(c.str().map_err(VfsError::from)?),
                };
                FsOp::Write {
                    path,
                    content,
                    policy,
                }
            }
            OP_UNLINK => FsOp::Unlink {
                path: c.str().map_err(VfsError::from)?,
            },
            OP_RENAME => FsOp::Rename {
                from: c.str().map_err(VfsError::from)?,
                to: c.str().map_err(VfsError::from)?,
            },
            OP_SET_XATTR => FsOp::SetXattr {
                path: c.str().map_err(VfsError::from)?,
                key: c.str().map_err(VfsError::from)?,
                value: c.str().map_err(VfsError::from)?,
            },
            OP_REMOVE_XATTR => FsOp::RemoveXattr {
                path: c.str().map_err(VfsError::from)?,
                key: c.str().map_err(VfsError::from)?,
            },
            other => return Err(VfsError::Storage(format!("unknown fs op tag {other}"))),
        };
        Ok(op)
    }
}

/// The durability sink beneath a [`crate::Vfs`].
pub trait Backend: fmt::Debug + Send + Sync {
    /// Records one committed tree mutation.
    fn log(&mut self, op: &FsOp) -> Result<()>;

    /// Replaces the durable snapshot with `image` (the encoded tree) and
    /// resets the op log.
    fn checkpoint(&mut self, image: &[u8]) -> Result<()>;

    /// True when ops actually persist (diagnostics and tests).
    fn is_durable(&self) -> bool;

    /// True when ops were logged since the last checkpoint — a clean
    /// backend lets [`crate::Vfs::checkpoint`] skip re-encoding the tree
    /// entirely. Non-durable backends are never dirty.
    fn is_dirty(&self) -> bool {
        false
    }

    /// Live storage counters of the underlying store, if any.
    fn store_stats(&self) -> Option<resin_store::StoreStats> {
        None
    }
}

/// The default backend: nothing persists.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemBackend;

impl Backend for MemBackend {
    fn log(&mut self, _op: &FsOp) -> Result<()> {
        Ok(())
    }

    fn checkpoint(&mut self, _image: &[u8]) -> Result<()> {
        Ok(())
    }

    fn is_durable(&self) -> bool {
        false
    }
}

/// A disk-backed backend over a [`resin_store::Store`].
#[derive(Debug)]
pub struct DiskBackend {
    store: Store,
    /// Ops logged since the last checkpoint: a clean backend means the
    /// durable snapshot already equals the tree, so a checkpoint can be
    /// skipped outright.
    dirty: bool,
}

/// What [`DiskBackend::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct VfsRecovered {
    /// The last tree snapshot image, if a checkpoint was ever taken.
    pub snapshot: Option<Vec<u8>>,
    /// Ops committed after that snapshot, in order.
    pub ops: Vec<FsOp>,
    /// True when a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
    /// True when the discarded tail also dropped one or more whole later
    /// WAL segments — a wider loss window than one in-flight append.
    pub torn_cross_segment: bool,
}

impl DiskBackend {
    /// Opens (creating if needed) the store at `dir`, returning the
    /// backend plus the state to rebuild: last snapshot and the WAL's
    /// surviving op prefix (a torn tail is discarded and repaired).
    pub fn open(dir: impl AsRef<Path>) -> Result<(DiskBackend, VfsRecovered)> {
        let (store, recovered) = Store::open(dir).map_err(VfsError::from)?;
        let mut ops = Vec::with_capacity(recovered.records.len());
        for payload in &recovered.records {
            ops.push(FsOp::decode(payload)?);
        }
        Ok((
            DiskBackend {
                store,
                // Replayed ops post-date the snapshot: the tree is ahead
                // of it until the next checkpoint folds them in.
                dirty: !ops.is_empty(),
            },
            VfsRecovered {
                snapshot: recovered.snapshot,
                ops,
                torn_tail: recovered.torn_tail,
                torn_cross_segment: recovered.torn_cross_segment,
            },
        ))
    }

    /// Whether WAL appends fsync (see [`Store::set_sync`]).
    pub fn set_sync(&mut self, sync: bool) {
        self.store.set_sync(sync);
    }
}

impl Backend for DiskBackend {
    fn log(&mut self, op: &FsOp) -> Result<()> {
        self.store.append(&op.encode()).map_err(VfsError::from)?;
        self.dirty = true;
        Ok(())
    }

    fn checkpoint(&mut self, image: &[u8]) -> Result<()> {
        self.store.checkpoint(image).map_err(VfsError::from)?;
        self.dirty = false;
        Ok(())
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn is_dirty(&self) -> bool {
        self.dirty
    }

    fn store_stats(&self) -> Option<resin_store::StoreStats> {
        Some(self.store.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip() {
        let ops = vec![
            FsOp::Mkdir { path: "/a".into() },
            FsOp::Write {
                path: "/a/f".into(),
                content: "hello".into(),
                policy: Some("#UntrustedData{}#0..5|0".into()),
            },
            FsOp::Write {
                path: "/a/g".into(),
                content: String::new(),
                policy: None,
            },
            FsOp::Unlink {
                path: "/a/g".into(),
            },
            FsOp::Rename {
                from: "/a/f".into(),
                to: "/a/h".into(),
            },
            FsOp::SetXattr {
                path: "/a".into(),
                key: "user.resin.filter".into(),
                value: "AclWriteFilter{acl=alice:w}".into(),
            },
            FsOp::RemoveXattr {
                path: "/a".into(),
                key: "user.resin.filter".into(),
            },
        ];
        for op in &ops {
            assert_eq!(&FsOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(FsOp::decode(&[99]).is_err(), "unknown tag");
        assert!(FsOp::decode(&[]).is_err(), "empty payload");
    }

    #[test]
    fn disk_backend_tracks_dirtiness() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("resin-vfs-backend-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (mut b, rec) = DiskBackend::open(&dir).unwrap();
        assert!(!b.is_dirty(), "fresh store is clean");
        assert!(rec.ops.is_empty());
        b.set_sync(false);
        b.log(&FsOp::Mkdir { path: "/a".into() }).unwrap();
        assert!(b.is_dirty());
        b.checkpoint(b"IMG").unwrap();
        assert!(!b.is_dirty(), "checkpoint folds the log in");
        b.log(&FsOp::Unlink { path: "/a".into() }).unwrap();
        drop(b);

        // Reopen with an op past the checkpoint: dirty from the start —
        // the tree is ahead of the durable snapshot until the next
        // checkpoint, which must therefore not be skipped.
        let (b, rec) = DiskBackend::open(&dir).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"IMG"[..]));
        assert_eq!(rec.ops.len(), 1);
        assert!(b.is_dirty());
        assert!(b.store_stats().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
