//! Storage error types.

use std::fmt;

/// Errors produced by the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure.
    Io(std::io::Error),
    /// The buffer ended before a complete value could be read. For WAL
    /// records this is the expected shape of a torn tail and is tolerated
    /// by recovery; everywhere else it is corruption.
    Truncated {
        /// Byte offset of the failed read.
        at: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The data is structurally invalid (bad magic, checksum mismatch,
    /// out-of-range index, non-UTF-8 text).
    Corrupt(String),
    /// The snapshot was written by an unsupported format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Another process (or another `Store` in this one) holds the store
    /// directory's advisory lock.
    Locked(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Truncated { at, needed, have } => {
                write!(f, "truncated at byte {at}: needed {needed}, have {have}")
            }
            StoreError::Corrupt(m) => write!(f, "corrupt store data: {m}"),
            StoreError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {supported})"
                )
            }
            StoreError::Locked(dir) => {
                write!(f, "store at `{dir}` is locked by another process")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;
