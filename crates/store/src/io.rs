//! Binary encoding primitives shared by the snapshot and WAL formats.
//!
//! Everything is little-endian and length-prefixed; there are no varints
//! and no alignment requirements, so a decoder can always tell a truncated
//! buffer from a corrupt one. Integrity is an FNV-1a 64-bit checksum —
//! cheap, dependency-free, and strong enough to detect the torn or
//! partially-written records that crash recovery must tolerate.

use crate::error::{Result, StoreError};

/// FNV-1a 64-bit over `data`.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reading cursor over an encoded buffer.
///
/// Every read distinguishes "buffer too short" from "well-formed": short
/// reads surface as [`StoreError::Truncated`], which the WAL replayer
/// treats as the torn tail of an interrupted append.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                at: self.pos,
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "héllo");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xdead_beef);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.i64().unwrap(), -42);
        assert_eq!(c.str().unwrap(), "héllo");
        assert!(c.is_empty());
    }

    #[test]
    fn short_reads_are_truncation_errors() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 100); // claims a 100-byte string...
        buf.extend_from_slice(b"short"); // ...but delivers 5 bytes
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.str(), Err(StoreError::Truncated { .. })));
        assert!(matches!(
            Cursor::new(&[1, 2]).u32(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = checksum(b"hello world");
        let mut data = b"hello world".to_vec();
        data[3] ^= 1;
        assert_ne!(a, checksum(&data));
        assert_eq!(a, checksum(b"hello world"), "deterministic");
    }
}
