//! WAL shipping and read-only tailing for read replicas.
//!
//! A replica is fed by copying the primary's store directory — manifest,
//! part images, and WAL segments — into its own directory ([`ship`]),
//! then reading it **without** taking the store's writer lock or
//! mutating anything ([`read_checkpoint`], [`tail_records`]). This works
//! because every durable artifact is append-only or immutable:
//!
//! * part files are written once under a fresh name and never modified,
//!   so copying one is idempotent;
//! * segments only grow between checkpoints, so shipping resumes by
//!   copying the byte tail past what the replica already has — a frame
//!   half-copied by one ship completes on the next;
//! * the manifest is replaced atomically (temp + rename), and is only
//!   shipped after the parts it references, so a replica-side reader
//!   never sees a manifest pointing at a missing part.
//!
//! [`tail_records`] treats a torn tail as "end of shipped log", not an
//! error: the tear is the in-flight append the next ship will complete.
//! Segments the primary has compacted away are deleted from the replica
//! directory once — and only once — the shipped checkpoint covers them:
//! every record the replica's copy holds must have `seq <=` the shipped
//! manifest's base sequence number. A torn copy of a compacted segment
//! passes the same test on its valid prefix — sound because the primary
//! only compacts a segment after the manifest covering *all* of its
//! records is durable, so whatever the tear hides is covered too. A
//! segment whose records exceed the shipped base sequence (a primary-side
//! bug the replica must not amplify) is kept. This bounds the replica
//! directory by the same retention the primary enforces, without ever
//! dropping a record a replay still needs.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::Result;
use crate::io::checksum;
use crate::segment::list_segments;
use crate::store::{decode_manifest, read_checkpoint_state, Parts, MANIFEST_FILE};
use crate::wal::{scan, Record};

/// What one [`ship`] call copied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Segments that received new bytes.
    pub segments_copied: u64,
    /// Checkpoint part files newly copied.
    pub parts_copied: u64,
    /// Total bytes copied (segments + parts + manifest).
    pub bytes_copied: u64,
    /// Replica segments deleted because the primary compacted them away
    /// and the shipped checkpoint covers every record they held.
    pub segments_pruned: u64,
}

/// Records tailed from a shipped (or live) store directory.
#[derive(Debug, Clone, Default)]
pub struct Tailed {
    /// Records with sequence number strictly greater than `after_seq`,
    /// in append order.
    pub records: Vec<Record>,
    /// True when the scan stopped at a torn tail (an append still in
    /// flight on the primary, or a partially shipped frame).
    pub torn: bool,
}

/// Copies the primary store at `src` into the replica directory `dst`:
/// new checkpoint parts first, then the manifest, then segment tails,
/// then prunes replica segments the primary compacted away **if** the
/// shipped checkpoint fully covers their records. Incremental and
/// idempotent; the only deletions are those checkpoint-covered segments,
/// so a slow follower that has not shipped the covering manifest yet
/// keeps every segment it might still need.
pub fn ship(src: &Path, dst: &Path) -> Result<ShipReport> {
    std::fs::create_dir_all(dst)?;
    let mut report = ShipReport::default();

    // Checkpoint parts before the manifest that references them.
    let manifest_bytes = match std::fs::read(src.join(MANIFEST_FILE)) {
        Ok(b) => Some(b),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    if let Some(bytes) = manifest_bytes {
        let (_, entries) = decode_manifest(&bytes)?;
        for e in &entries {
            let to = dst.join(&e.file);
            let already = std::fs::metadata(&to).map(|m| m.len()).unwrap_or(0);
            if already == e.len {
                continue; // part files are immutable: same length = same file
            }
            let image = std::fs::read(src.join(&e.file))?;
            write_atomic(dst, &e.file, &image)?;
            report.parts_copied += 1;
            report.bytes_copied += image.len() as u64;
        }
        let have = std::fs::read(dst.join(MANIFEST_FILE)).unwrap_or_default();
        if have != bytes {
            write_atomic(dst, MANIFEST_FILE, &bytes)?;
            report.bytes_copied += bytes.len() as u64;
        }
    }

    // Segment tails: append-only between checkpoints, so resume at the
    // replica's current length. A shorter source (post-crash repair on
    // the primary) forces a full re-copy.
    let src_segments = list_segments(src)?;
    for (index, path) in &src_segments {
        let (index, path) = (*index, path);
        let src_len = std::fs::metadata(path)?.len();
        let to = crate::segment::segment_path(dst, index);
        let dst_len = std::fs::metadata(&to).map(|m| m.len()).unwrap_or(0);
        if dst_len == src_len {
            continue;
        }
        let from = if dst_len < src_len { dst_len } else { 0 };
        let mut src_file = File::open(path)?;
        src_file.seek(SeekFrom::Start(from))?;
        let mut tail = Vec::new();
        src_file.read_to_end(&mut tail)?;
        let mut dst_file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&to)?;
        dst_file.set_len(from)?;
        dst_file.seek(SeekFrom::Start(from))?;
        dst_file.write_all(&tail)?;
        dst_file.sync_data()?;
        report.segments_copied += 1;
        report.bytes_copied += tail.len() as u64;
    }

    // Retention: drop replica segments the primary compacted away, but
    // only when the checkpoint we just shipped covers their records.
    // Indexes are monotonic and never reused, so "absent at src and below
    // the lowest live source index" means compacted. Each candidate is
    // still scanned: a record above base_seq (which compaction should
    // have made impossible) or an unreadable file keeps the segment — a
    // replica never amplifies a primary-side bug into data loss. A torn
    // candidate's valid prefix passing the seq test is enough: the
    // primary only deletes a segment once the covering manifest is
    // durable, so the tear cannot hide an uncovered record.
    if let Some(base_seq) = checkpoint_base_seq(dst)? {
        let min_src = src_segments.iter().map(|(i, _)| *i).min();
        for (index, path) in list_segments(dst)? {
            if min_src.is_some_and(|m| index >= m) {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let Ok(scanned) = scan(&bytes) else { continue };
            if scanned.records.iter().all(|r| r.seq <= base_seq) {
                std::fs::remove_file(&path)?;
                report.segments_pruned += 1;
            }
        }
    }

    if let Ok(d) = File::open(dst) {
        let _ = d.sync_all();
    }
    Ok(report)
}

/// Reads just the checkpoint's base sequence number from a store
/// directory's manifest — cheap (no part images touched), for pollers
/// deciding whether a full [`read_checkpoint`] is warranted. `None`
/// when no manifest exists.
pub fn checkpoint_base_seq(dir: &Path) -> Result<Option<u64>> {
    match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => {
            let (base_seq, _) = decode_manifest(&bytes)?;
            Ok(Some(base_seq))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Reads the checkpoint (base sequence number + named parts) from a
/// store directory without locking or mutating it. Returns `None` when
/// no checkpoint was ever taken.
pub fn read_checkpoint(dir: &Path) -> Result<Option<(u64, Parts)>> {
    let (_, base_seq, parts) = read_checkpoint_state(dir)?;
    if parts.is_empty() && base_seq == 0 {
        return Ok(None);
    }
    Ok(Some((base_seq, parts)))
}

/// Scans the WAL segments of a store directory read-only, returning
/// every record with `seq > after_seq` in append order. Stops at the
/// first torn frame (reported, not repaired — the next [`ship`] may
/// complete it). Never locks, truncates, or deletes anything.
pub fn tail_records(dir: &Path, after_seq: u64) -> Result<Tailed> {
    let mut out = Tailed::default();
    for (_, path) in list_segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let scanned = scan(&bytes)?;
        out.records
            .extend(scanned.records.into_iter().filter(|r| r.seq > after_seq));
        if scanned.torn {
            out.torn = true;
            break;
        }
    }
    Ok(out)
}

/// Writes `bytes` into `dir/name` atomically (temp file + rename), so a
/// replica-side reader never observes a half-copied file.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join(format!("{name}.shiptmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// FNV-1a checksum of a shipped file, for divergence diagnostics.
pub fn file_checksum(path: &Path) -> Result<u64> {
    Ok(checksum(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "resin-replica-test-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn ship_and_tail_follow_the_primary() {
        let src = tmp_dir("src");
        let dst = tmp_dir("dst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        ship(&src, &dst).unwrap();
        let t = tail_records(&dst, 0).unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[1].payload, b"two");
        assert!(!t.torn);
        // Incremental: only the new tail ships.
        s.append(b"three").unwrap();
        let rep = ship(&src, &dst).unwrap();
        assert_eq!(rep.segments_copied, 1);
        let t = tail_records(&dst, 2).unwrap();
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].payload, b"three");
        // Idempotent when nothing changed.
        let rep = ship(&src, &dst).unwrap();
        assert_eq!(rep, ShipReport::default());
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn ship_carries_checkpoint_and_compaction() {
        let src = tmp_dir("ckptsrc");
        let dst = tmp_dir("ckptdst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.set_segment_max_bytes(64);
        for i in 0..10u32 {
            s.append(format!("r{i}").as_bytes()).unwrap();
        }
        s.checkpoint(b"CKPT").unwrap();
        s.append(b"post").unwrap();
        let rep = ship(&src, &dst).unwrap();
        assert!(rep.parts_copied >= 1);
        let (base_seq, parts) = read_checkpoint(&dst).unwrap().expect("checkpoint shipped");
        assert_eq!(base_seq, 10);
        assert_eq!(parts[0].1, b"CKPT");
        let t = tail_records(&dst, base_seq).unwrap();
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].payload, b"post");
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn shipped_replica_directory_stays_bounded_under_checkpoints() {
        let src = tmp_dir("prunesrc");
        let dst = tmp_dir("prunedst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.set_segment_max_bytes(64);
        let mut pruned_total = 0;
        for round in 0..8u32 {
            for i in 0..6u32 {
                s.append(format!("round{round}-rec{i}-payload").as_bytes())
                    .unwrap();
            }
            // Ship the live log first (the replica now holds the rotated
            // segments), then checkpoint — the next ship must prune them.
            ship(&src, &dst).unwrap();
            s.checkpoint(format!("CKPT{round}").as_bytes()).unwrap();
            let rep = ship(&src, &dst).unwrap();
            pruned_total += rep.segments_pruned;
            // The replica holds a subset of the primary's segments (an
            // empty active segment is never materialized): compaction-
            // covered history is pruned, nothing else accumulates.
            let src_idx: Vec<u64> = list_segments(&src)
                .unwrap()
                .iter()
                .map(|(i, _)| *i)
                .collect();
            let dst_idx: Vec<u64> = list_segments(&dst)
                .unwrap()
                .iter()
                .map(|(i, _)| *i)
                .collect();
            assert!(
                dst_idx.iter().all(|i| src_idx.contains(i)),
                "round {round}: replica directory unbounded: src {src_idx:?} dst {dst_idx:?}"
            );
            // Replay still reconstructs the full state.
            let (base_seq, parts) = read_checkpoint(&dst).unwrap().expect("checkpoint shipped");
            assert_eq!(parts[0].1, format!("CKPT{round}").as_bytes());
            let t = tail_records(&dst, base_seq).unwrap();
            assert!(t.records.is_empty());
            assert!(!t.torn);
        }
        assert!(pruned_total > 0, "compaction never pruned anything");
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn pruning_spares_uncovered_segments_and_needs_a_checkpoint() {
        let src = tmp_dir("sparesrc");
        let dst = tmp_dir("sparedst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.set_segment_max_bytes(32);
        for i in 0..6u32 {
            s.append(format!("record-{i}-padding-bytes").as_bytes())
                .unwrap();
        }
        ship(&src, &dst).unwrap();
        let shipped = list_segments(&dst).unwrap();
        assert!(shipped.len() >= 3, "cap must force rotation");
        // Simulate a primary that lost an old segment without ever
        // checkpointing: no manifest at the replica means no pruning, so
        // the replica keeps its copy (the only surviving one).
        let (lost_idx, lost_src_path) = list_segments(&src).unwrap().remove(0);
        std::fs::remove_file(&lost_src_path).unwrap();
        ship(&src, &dst).unwrap();
        assert!(
            list_segments(&dst)
                .unwrap()
                .iter()
                .any(|(i, _)| *i == lost_idx),
            "pruned without a covering checkpoint"
        );
        // Now checkpoint — compaction drops the remaining old segments at
        // the source — but hand the replica a *stale* manifest whose
        // base_seq predates the tail records: segments holding records
        // above it must survive.
        s.checkpoint(b"CKPT").unwrap();
        ship(&src, &dst).unwrap();
        let base_seq = checkpoint_base_seq(&dst).unwrap().unwrap();
        assert_eq!(base_seq, 6);
        for i in 0..4u32 {
            s.append(format!("after-ckpt-{i}-padding").as_bytes())
                .unwrap();
        }
        // Records 7..=10 live in segments the replica has; pretend the
        // primary compacted them away prematurely (a bug) by deleting
        // them at the source after shipping.
        ship(&src, &dst).unwrap();
        let src_now = list_segments(&src).unwrap();
        let (active_idx, _) = *src_now.last().unwrap();
        for (i, p) in &src_now {
            if *i < active_idx {
                std::fs::remove_file(p).unwrap();
            }
        }
        let rep = ship(&src, &dst).unwrap();
        assert_eq!(rep.segments_pruned, 0, "pruned records above base_seq");
        let t = tail_records(&dst, base_seq).unwrap();
        assert_eq!(t.records.len(), 4, "uncovered records must survive");
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn torn_copy_of_a_compacted_segment_is_pruned_once_covered() {
        let src = tmp_dir("tornprunesrc");
        let dst = tmp_dir("tornprunedst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.set_segment_max_bytes(32);
        for i in 0..6u32 {
            s.append(format!("record-{i}-padding-bytes").as_bytes())
                .unwrap();
        }
        ship(&src, &dst).unwrap();
        // Tear the replica's oldest segment mid-frame (a ship that raced
        // an append), then checkpoint: the primary compacts the segment
        // away, so the tear can never be repaired — but the covering
        // manifest makes the whole segment prunable, valid prefix and
        // hidden tail alike.
        let (torn_idx, torn_path) = list_segments(&dst).unwrap().remove(0);
        let bytes = std::fs::read(&torn_path).unwrap();
        std::fs::write(&torn_path, &bytes[..bytes.len() - 3]).unwrap();
        s.checkpoint(b"CKPT").unwrap();
        let rep = ship(&src, &dst).unwrap();
        assert!(rep.segments_pruned >= 1, "torn covered segment leaked");
        assert!(
            list_segments(&dst)
                .unwrap()
                .iter()
                .all(|(i, _)| *i != torn_idx),
            "torn covered segment still present"
        );
        // Replay is whole: checkpoint plus (empty) tail.
        let (base_seq, parts) = read_checkpoint(&dst).unwrap().unwrap();
        assert_eq!(parts[0].1, b"CKPT");
        let t = tail_records(&dst, base_seq).unwrap();
        assert!(t.records.is_empty() && !t.torn);
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn partially_shipped_frame_reads_as_torn_then_completes() {
        let src = tmp_dir("tornsrc");
        let dst = tmp_dir("torndst");
        let (s, _) = Store::open(&src).unwrap();
        s.set_sync(false);
        s.append(b"whole-record-payload").unwrap();
        ship(&src, &dst).unwrap();
        // Chop the replica's copy mid-frame, as if ship raced an append.
        let seg = crate::segment::segment_path(&dst, 1);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let t = tail_records(&dst, 0).unwrap();
        assert!(t.torn);
        assert!(t.records.is_empty());
        // The next ship completes the frame from the source tail.
        ship(&src, &dst).unwrap();
        let t = tail_records(&dst, 0).unwrap();
        assert!(!t.torn);
        assert_eq!(t.records[0].payload, b"whole-record-payload");
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }
}
