//! WAL segment naming and discovery.
//!
//! The log is a sequence of size-capped files `wal.000001`, `wal.000002`,
//! … inside the store directory. Segment indexes are monotonic and never
//! reused: rotation opens the next index, checkpoint compaction deletes
//! every index below the active one. Record framing inside a segment is
//! unchanged ([`crate::wal`]); the segmented log as a whole is the
//! concatenation of its segments in index order, so the torn-tail
//! contract extends naturally: recovery scans segments in order and keeps
//! the longest valid prefix, truncating the torn segment and discarding
//! any segments after it.

use std::path::{Path, PathBuf};

use crate::error::Result;

/// File-name prefix shared by every segment (`wal.NNNNNN`).
pub const SEGMENT_PREFIX: &str = "wal.";

/// The file name of segment `index` (indexes start at 1).
pub fn segment_file_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:06}")
}

/// The path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(segment_file_name(index))
}

/// Parses a segment index out of a file name; `None` for anything that is
/// not an all-digit `wal.NNNNNN` name (so `wal.bin` and `wal.lock` are
/// never mistaken for segments).
pub fn parse_segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(SEGMENT_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the segments present in `dir`, sorted by index.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = parse_segment_index(name) {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(segment_file_name(1), "wal.000001");
        assert_eq!(segment_file_name(42), "wal.000042");
        assert_eq!(parse_segment_index("wal.000042"), Some(42));
        assert_eq!(parse_segment_index("wal.1000000"), Some(1_000_000));
        assert_eq!(parse_segment_index("wal.bin"), None);
        assert_eq!(parse_segment_index("wal.lock"), None);
        assert_eq!(parse_segment_index("wal."), None);
        assert_eq!(parse_segment_index("snapshot.bin"), None);
    }

    #[test]
    fn listing_sorts_by_index() {
        let dir = std::env::temp_dir().join(format!("resin-seg-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for i in [3u64, 1, 2] {
            std::fs::write(segment_path(&dir, i), b"x").unwrap();
        }
        std::fs::write(dir.join("wal.lock"), b"").unwrap();
        let got: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
