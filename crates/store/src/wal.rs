//! The append-only write-ahead log.
//!
//! Each record is framed as
//!
//! ```text
//! len      u32   (payload length)
//! seq      u64   (monotonic sequence number)
//! checksum u64   (FNV-1a over seq bytes + payload)
//! payload  bytes
//! ```
//!
//! Replay walks records front to back and stops at the first frame that is
//! incomplete or fails its checksum — the **torn tail** an interrupted
//! append leaves behind. Everything before the tear is intact by
//! construction (appends are sequential), so recovery keeps the longest
//! valid prefix and discards the rest; [`scan`] reports the byte offset of
//! the tear so the opener can truncate the file before appending again.

use crate::error::Result;
use crate::io::{checksum, put_u32, put_u64};

/// Frame header size: len (4) + seq (8) + checksum (8).
pub const RECORD_HEADER: usize = 20;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number assigned at append time.
    pub seq: u64,
    /// The client payload.
    pub payload: Vec<u8>,
}

/// Encodes one record frame.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u64(&mut frame, seq);
    let mut sum_input = Vec::with_capacity(8 + payload.len());
    put_u64(&mut sum_input, seq);
    sum_input.extend_from_slice(payload);
    put_u64(&mut frame, checksum(&sum_input));
    frame.extend_from_slice(payload);
    frame
}

/// The result of scanning a WAL byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Every record of the longest valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of that prefix (truncate the file here to repair).
    pub valid_len: usize,
    /// True when trailing bytes after the valid prefix were discarded.
    pub torn: bool,
}

/// Scans `bytes`, tolerating a torn tail: decoding stops at the first
/// incomplete or checksum-failing frame and reports what survived.
pub fn scan(bytes: &[u8]) -> Result<Scan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(Scan {
                records,
                valid_len: pos,
                torn: false,
            });
        }
        if remaining < RECORD_HEADER {
            break; // torn mid-header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("len 8"));
        let stored = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("len 8"));
        if remaining - RECORD_HEADER < len {
            break; // torn mid-payload
        }
        let payload = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        let mut sum_input = Vec::with_capacity(8 + len);
        put_u64(&mut sum_input, seq);
        sum_input.extend_from_slice(payload);
        if checksum(&sum_input) != stored {
            break; // torn or corrupted frame
        }
        records.push(Record {
            seq,
            payload: payload.to_vec(),
        });
        pos += RECORD_HEADER + len;
    }
    Ok(Scan {
        records,
        valid_len: pos,
        torn: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            out.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        out
    }

    #[test]
    fn clean_log_scans_fully() {
        let bytes = wal_of(&[b"alpha", b"beta", b""]);
        let s = scan(&bytes).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0].payload, b"alpha");
        assert_eq!(s.records[2].seq, 3);
        assert_eq!(s.valid_len, bytes.len());
        assert!(!s.torn);
    }

    #[test]
    fn truncation_at_every_byte_keeps_a_valid_prefix() {
        let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; i * 3]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let bytes = wal_of(&refs);
        // Frame boundaries for computing the expected surviving prefix.
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_HEADER + p.len());
        }
        for cut in 0..=bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            assert_eq!(s.valid_len, boundaries[expect], "cut at {cut}");
            assert_eq!(s.torn, cut != boundaries[expect], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_tear() {
        let bytes = wal_of(&[b"first", b"second", b"third"]);
        let mut corrupt = bytes.clone();
        // Flip a byte inside the second record's payload.
        let off = RECORD_HEADER + 5 + RECORD_HEADER + 2;
        corrupt[off] ^= 0x40;
        let s = scan(&corrupt).unwrap();
        assert_eq!(s.records.len(), 1, "only the first record survives");
        assert!(s.torn);
        assert_eq!(s.valid_len, RECORD_HEADER + 5);
    }
}
