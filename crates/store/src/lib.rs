//! # resin-store — durable storage for persistent policies
//!
//! RESIN's central promise is that policies travel *with* data into
//! durable storage and come back on read (§3.4, §6.1). The in-memory SQL
//! engine and vfs uphold that within a process; this crate makes it hold
//! across process exits and crashes:
//!
//! * [`snapshot`] — a versioned binary image format whose header persists
//!   the **deduplicated policy table once**, with per-cell/per-span `u32`
//!   refs — the durable twin of the in-memory `Label` interning;
//! * [`wal`] — checksummed append-only record framing whose replay
//!   tolerates the torn tail an interrupted append leaves behind;
//! * [`segment`] — size-capped, rotating WAL segment files (`wal.000001`,
//!   …) whose concatenation in index order is the log;
//! * [`store::Store`] — one directory holding a manifest-based checkpoint
//!   (named, immutable part images — unchanged parts carry between
//!   checkpoints by reference) plus the WAL segments, with atomic
//!   checkpoints (temp file + rename), fsynced appends, compaction of
//!   covered segments, and sequence numbers that keep a crash between
//!   "rename manifest" and "delete covered segments" from double-applying
//!   operations;
//! * [`replica`] — WAL shipping (incremental directory copy) and
//!   read-only tailing, the transport under read replicas.
//!
//! The store is deliberately *policy-oblivious*: policy bodies are opaque
//! strings in `resin_core`'s textual wire format, tokenized (never
//! deserialized) while building the table. Checkpointing and recovery
//! therefore work without any policy class being registered — the paper's
//! property that persisted policies outlive the code that produced them.
//!
//! The client layers live upstream: `resin_sql` snapshots its table
//! catalog and logs post-guard statements; `resin_vfs` snapshots its tree
//! and logs file operations. Both recover by replaying the WAL onto the
//! last complete snapshot.

pub mod error;
pub mod io;
pub mod replica;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{Result, StoreError};
pub use replica::{checkpoint_base_seq, read_checkpoint, ship, tail_records, ShipReport, Tailed};
pub use snapshot::{SnapshotReader, SnapshotWriter, SpanRef, SNAPSHOT_VERSION};
pub use store::{Part, Parts, Recovered, Store, StoreStats, IMAGE_PART};
