//! The versioned snapshot image format.
//!
//! A snapshot is the durable twin of the in-memory label interning
//! (§3.4.1): the **policy table** — every distinct serialized policy body
//! — is written exactly once in the header, and the client body refers to
//! policies by `u32` index. A database with a million password cells under
//! one `PasswordPolicy` persists one policy body and a million 4-byte
//! refs, not a million copies of the body.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    "RSNP"
//! version  u32           (snapshot format)
//! wire     u32           (resin_core::serialize::WIRE_VERSION of the bodies)
//! policies u32 count, then count × length-prefixed policy bodies
//! body     u64 length, then client-encoded bytes
//! checksum u64           (FNV-1a over everything above)
//! ```
//!
//! The storage layer never *deserializes* policies: bodies are opaque
//! strings in the textual wire format, re-tokenized with
//! [`split_serialized`] only to pull out table entries. Policy classes
//! therefore do not need to be registered to checkpoint or recover a
//! store — exactly the paper's property that persisted policies outlive
//! (and never load) the code that produced them.

use std::collections::HashMap;

use resin_core::serialize::{split_serialized, WIRE_VERSION};

use crate::error::{Result, StoreError};
use crate::io::{checksum, put_i64, put_str, put_u32, put_u64, put_u8, Cursor};

/// Magic bytes opening every snapshot image.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"RSNP";

/// Version of the snapshot container format.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One byte range of a persisted datum and the policy-table indexes of the
/// policies attached to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRef {
    /// Start byte offset (inclusive).
    pub start: u64,
    /// End byte offset (exclusive).
    pub end: u64,
    /// Indexes into the snapshot policy table.
    pub policies: Vec<u32>,
}

/// Builds a snapshot image: interns policy bodies into the shared table
/// while the client encodes its body through the `put_*` methods.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    body: Vec<u8>,
    policies: Vec<String>,
    index: HashMap<String, u32>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Interns one serialized policy body, returning its table index.
    pub fn intern(&mut self, body: &str) -> u32 {
        if let Some(&i) = self.index.get(body) {
            return i;
        }
        let i = self.policies.len() as u32;
        self.policies.push(body.to_string());
        self.index.insert(body.to_string(), i);
        i
    }

    /// Parses an interned spans blob (`#table#spans`, the output of
    /// `serialize_spans`) and interns its policies into the shared table,
    /// returning per-span refs.
    pub fn intern_spans_blob(&mut self, blob: &str) -> Result<Vec<SpanRef>> {
        let rest = blob
            .strip_prefix('#')
            .ok_or_else(|| StoreError::Corrupt(format!("spans blob without `#`: `{blob}`")))?;
        let parts = split_serialized(rest, '#');
        let [table_src, spans_src] = parts.as_slice() else {
            return Err(StoreError::Corrupt(format!(
                "expected `#table#spans`, got `{blob}`"
            )));
        };
        // Local (per-blob) table index → shared table index.
        let mut local: Vec<u32> = Vec::new();
        if !table_src.is_empty() {
            for body in split_serialized(table_src, ',') {
                local.push(self.intern(body));
            }
        }
        let mut refs = Vec::new();
        if spans_src.is_empty() {
            return Ok(refs);
        }
        for span in split_serialized(spans_src, ';') {
            let (range, idxs) = span
                .split_once('|')
                .ok_or_else(|| StoreError::Corrupt(format!("bad span `{span}`")))?;
            let (a, b) = range
                .split_once("..")
                .ok_or_else(|| StoreError::Corrupt(format!("bad range `{range}`")))?;
            let start: u64 = a
                .parse()
                .map_err(|_| StoreError::Corrupt(format!("bad start `{a}`")))?;
            let end: u64 = b
                .parse()
                .map_err(|_| StoreError::Corrupt(format!("bad end `{b}`")))?;
            let mut policies = Vec::new();
            for idx in idxs.split(',').filter(|s| !s.is_empty()) {
                let i: usize = idx
                    .parse()
                    .map_err(|_| StoreError::Corrupt(format!("bad index `{idx}`")))?;
                let shared = *local.get(i).ok_or_else(|| {
                    StoreError::Corrupt(format!("index `{i}` outside the blob policy table"))
                })?;
                policies.push(shared);
            }
            refs.push(SpanRef {
                start,
                end,
                policies,
            });
        }
        Ok(refs)
    }

    /// Parses a whole-datum label blob (comma-joined policy bodies, the
    /// output of `serialize_label`) into shared table indexes.
    pub fn intern_label_blob(&mut self, blob: &str) -> Result<Vec<u32>> {
        if blob.is_empty() {
            return Ok(Vec::new());
        }
        Ok(split_serialized(blob, ',')
            .into_iter()
            .map(|body| self.intern(body))
            .collect())
    }

    // ---- body encoding ----

    /// Appends a `u8` to the body.
    pub fn put_u8(&mut self, v: u8) {
        put_u8(&mut self.body, v);
    }

    /// Appends a `u32` to the body.
    pub fn put_u32(&mut self, v: u32) {
        put_u32(&mut self.body, v);
    }

    /// Appends a `u64` to the body.
    pub fn put_u64(&mut self, v: u64) {
        put_u64(&mut self.body, v);
    }

    /// Appends an `i64` to the body.
    pub fn put_i64(&mut self, v: i64) {
        put_i64(&mut self.body, v);
    }

    /// Appends a length-prefixed string to the body.
    pub fn put_str(&mut self, s: &str) {
        put_str(&mut self.body, s);
    }

    /// Appends span refs (count + per-span start/end/policy indexes).
    pub fn put_span_refs(&mut self, refs: &[SpanRef]) {
        put_u32(&mut self.body, refs.len() as u32);
        for r in refs {
            put_u64(&mut self.body, r.start);
            put_u64(&mut self.body, r.end);
            put_u32(&mut self.body, r.policies.len() as u32);
            for &p in &r.policies {
                put_u32(&mut self.body, p);
            }
        }
    }

    /// Appends label refs (count + policy indexes).
    pub fn put_label_refs(&mut self, idxs: &[u32]) {
        put_u32(&mut self.body, idxs.len() as u32);
        for &i in idxs {
            put_u32(&mut self.body, i);
        }
    }

    /// Seals the image: header, policy table, body, trailing checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 64);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, WIRE_VERSION);
        put_u32(&mut out, self.policies.len() as u32);
        for p in &self.policies {
            put_str(&mut out, p);
        }
        put_u64(&mut out, self.body.len() as u64);
        out.extend_from_slice(&self.body);
        let sum = checksum(&out);
        put_u64(&mut out, sum);
        out
    }
}

/// Decodes a snapshot image: validates the header and checksum, exposes
/// the policy table, and walks the client body.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    policies: Vec<String>,
    cursor: Cursor<'a>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and validates `bytes`, leaving the cursor at the body start.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(StoreError::Corrupt("snapshot too short".into()));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("len 8"));
        if checksum(payload) != stored {
            return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
        }
        let mut c = Cursor::new(payload);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = c.u8()?;
        }
        if &magic != SNAPSHOT_MAGIC {
            return Err(StoreError::Corrupt("bad snapshot magic".into()));
        }
        let version = c.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::Version {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let wire = c.u32()?;
        if wire > WIRE_VERSION {
            return Err(StoreError::Version {
                found: wire,
                supported: WIRE_VERSION,
            });
        }
        let count = c.u32()? as usize;
        let mut policies = Vec::with_capacity(count);
        for _ in 0..count {
            policies.push(c.str()?);
        }
        let body_len = c.u64()? as usize;
        if c.remaining() != body_len {
            return Err(StoreError::Corrupt(format!(
                "body length {body_len} does not match remaining {}",
                c.remaining()
            )));
        }
        Ok(SnapshotReader {
            policies,
            cursor: c,
        })
    }

    /// The policy body at `idx`.
    pub fn policy(&self, idx: u32) -> Result<&str> {
        self.policies
            .get(idx as usize)
            .map(|s| s.as_str())
            .ok_or_else(|| StoreError::Corrupt(format!("policy index {idx} out of range")))
    }

    /// Regenerates an interned `#table#spans` blob from span refs — the
    /// inverse of [`SnapshotWriter::intern_spans_blob`] up to local table
    /// ordering (the revived taint is identical).
    pub fn spans_blob(&self, refs: &[SpanRef]) -> Result<String> {
        let mut local: Vec<&str> = Vec::new();
        let mut map: HashMap<u32, usize> = HashMap::new();
        let mut spans: Vec<String> = Vec::new();
        for r in refs {
            let idxs: Vec<String> = r
                .policies
                .iter()
                .map(|&p| {
                    let body = self.policy(p)?;
                    let i = *map.entry(p).or_insert_with(|| {
                        local.push(body);
                        local.len() - 1
                    });
                    Ok(i.to_string())
                })
                .collect::<Result<_>>()?;
            spans.push(format!("{}..{}|{}", r.start, r.end, idxs.join(",")));
        }
        Ok(format!("#{}#{}", local.join(","), spans.join(";")))
    }

    /// Regenerates a whole-datum label blob from policy indexes.
    pub fn label_blob(&self, idxs: &[u32]) -> Result<String> {
        let bodies: Vec<&str> = idxs
            .iter()
            .map(|&i| self.policy(i))
            .collect::<Result<_>>()?;
        Ok(bodies.join(","))
    }

    // ---- body decoding ----

    /// Reads a `u8` from the body.
    pub fn u8(&mut self) -> Result<u8> {
        self.cursor.u8()
    }

    /// Reads a `u32` from the body.
    pub fn u32(&mut self) -> Result<u32> {
        self.cursor.u32()
    }

    /// Reads a `u64` from the body.
    pub fn u64(&mut self) -> Result<u64> {
        self.cursor.u64()
    }

    /// Reads an `i64` from the body.
    pub fn i64(&mut self) -> Result<i64> {
        self.cursor.i64()
    }

    /// Reads a length-prefixed string from the body.
    pub fn str(&mut self) -> Result<String> {
        self.cursor.str()
    }

    /// Reads span refs written by [`SnapshotWriter::put_span_refs`].
    pub fn span_refs(&mut self) -> Result<Vec<SpanRef>> {
        let count = self.cursor.u32()? as usize;
        let mut refs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let start = self.cursor.u64()?;
            let end = self.cursor.u64()?;
            let n = self.cursor.u32()? as usize;
            let mut policies = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                policies.push(self.cursor.u32()?);
            }
            refs.push(SpanRef {
                start,
                end,
                policies,
            });
        }
        Ok(refs)
    }

    /// Reads label refs written by [`SnapshotWriter::put_label_refs`].
    pub fn label_refs(&mut self) -> Result<Vec<u32>> {
        let count = self.cursor.u32()? as usize;
        let mut idxs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            idxs.push(self.cursor.u32()?);
        }
        Ok(idxs)
    }

    /// True when the whole body has been consumed.
    pub fn at_end(&self) -> bool {
        self.cursor.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_and_policy_table_roundtrip() {
        let mut w = SnapshotWriter::new();
        let a = w.intern("PasswordPolicy{email=u@x}");
        let b = w.intern("UntrustedData{}");
        let a2 = w.intern("PasswordPolicy{email=u@x}");
        assert_eq!(a, a2, "bodies dedup into one table entry");
        w.put_str("hello");
        w.put_i64(-5);
        w.put_span_refs(&[SpanRef {
            start: 0,
            end: 5,
            policies: vec![a, b],
        }]);
        let bytes = w.finish();

        let mut r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.policy(0).unwrap(), "PasswordPolicy{email=u@x}");
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.i64().unwrap(), -5);
        let refs = r.span_refs().unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].policies, vec![0, 1]);
        assert!(r.at_end());
    }

    #[test]
    fn spans_blob_roundtrips_through_refs() {
        // The exact output format of resin_core::serialize_spans.
        let blob = "#UntrustedData{},PasswordPolicy{email=a@b;allow_chair=true}#0..2|0;4..9|0,1";
        let mut w = SnapshotWriter::new();
        let refs = w.intern_spans_blob(blob).unwrap();
        assert_eq!(refs.len(), 2);
        w.put_span_refs(&refs);
        let bytes = w.finish();
        let mut r = SnapshotReader::parse(&bytes).unwrap();
        let back = r.span_refs().unwrap();
        assert_eq!(back, refs);
        assert_eq!(r.spans_blob(&back).unwrap(), blob, "byte-identical here");
    }

    #[test]
    fn label_blob_roundtrips() {
        let blob = "UntrustedData{source=q},SqlSanitized{}";
        let mut w = SnapshotWriter::new();
        let idxs = w.intern_label_blob(blob).unwrap();
        assert_eq!(idxs.len(), 2);
        assert!(w.intern_label_blob("").unwrap().is_empty());
        w.put_label_refs(&idxs);
        let bytes = w.finish();
        let mut r = SnapshotReader::parse(&bytes).unwrap();
        let back = r.label_refs().unwrap();
        assert_eq!(r.label_blob(&back).unwrap(), blob);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_str("data");
        let mut bytes = w.finish();
        // Flip one body byte: checksum catches it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(StoreError::Corrupt(_))
        ));
        assert!(SnapshotReader::parse(b"RS").is_err(), "too short");
        assert!(
            SnapshotReader::parse(b"XXXXYYYYZZZZWWWWVVVV").is_err(),
            "bad magic/checksum"
        );
    }

    #[test]
    fn malformed_blobs_are_corrupt_errors() {
        let mut w = SnapshotWriter::new();
        assert!(w.intern_spans_blob("no-hash").is_err());
        assert!(w.intern_spans_blob("#onlyone").is_err());
        assert!(w.intern_spans_blob("#T{}#nospan").is_err());
        assert!(w.intern_spans_blob("#T{}#0..1|9").is_err(), "bad local idx");
        assert!(w.intern_spans_blob("#T{}#a..1|0").is_err(), "bad range");
    }
}
