//! The durable store: one snapshot file plus one WAL, with crash
//! recovery and **group commit**.
//!
//! On-disk layout inside the store directory:
//!
//! ```text
//! snapshot.bin   last complete checkpoint (atomic: written to a temp
//!                file, fsynced, renamed over)
//! wal.bin        append-only records since that checkpoint
//! ```
//!
//! # Recovery contract
//!
//! [`Store::open`] loads the last complete snapshot and replays the WAL's
//! longest valid prefix, truncating any torn tail left by a crash
//! mid-append. The snapshot records the sequence number it covers
//! (`base_seq`), and replay skips records at or below it — so a crash
//! *between* "rename new snapshot into place" and "truncate the WAL"
//! cannot double-apply operations. Every crash point therefore recovers
//! to a consistent state: the last checkpoint plus a prefix of the
//! operations appended after it.
//!
//! # Group commit
//!
//! A fsynced append costs two orders of magnitude more than the write
//! itself, and it is the *fsync* that is amortizable: when N threads
//! commit concurrently, their frames can go to disk under **one**
//! `fsync` instead of N. [`Store`] is therefore a cheap `Clone` handle
//! over shared state, and [`append`](Store::append) runs a
//! leader/follower protocol:
//!
//! 1. every appender takes the queue lock, claims the next sequence
//!    number, and stages its encoded frame into a shared buffer;
//! 2. if no leader is active, the appender becomes the leader: it takes
//!    the whole staged buffer, **releases the lock**, and performs a
//!    single `write` + `fsync` for the batch;
//! 3. otherwise it parks on a condvar until the durable watermark
//!    reaches its sequence number. Frames staged while a leader is
//!    writing form the next batch — the next leader is whichever parked
//!    appender wakes first and finds the leader slot free.
//!
//! A single uncontended appender becomes leader immediately and pays
//! exactly one fsync — the floor — so group commit costs nothing when
//! there is nothing to batch. When a batched write fails, the file is
//! truncated back to the durable boundary and every appender whose
//! staged frame was discarded gets an error: acknowledged state and
//! recoverable state never diverge.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::error::{Result, StoreError};
use crate::io::{checksum, put_u64};
use crate::wal::{encode_record, scan, Record};

const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const WAL_FILE: &str = "wal.bin";

/// Outer framing of the snapshot file: magic, base sequence number,
/// checksum over both, then the client image (which carries its own
/// integrity trailer via [`crate::snapshot::SnapshotReader`]).
const SNAP_FILE_MAGIC: &[u8; 4] = b"RSTO";

/// What [`Store::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The last complete snapshot image, if a checkpoint was ever taken.
    pub snapshot: Option<Vec<u8>>,
    /// WAL payloads appended after that snapshot, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
}

/// The WAL file plus the group-commit queue, shared by every clone of
/// the owning [`Store`].
///
/// The `File` sits *outside* the mutex on purpose: the leader must
/// write and fsync with the queue unlocked so other appenders can stage
/// the next batch meanwhile. Exclusive file access is a protocol
/// invariant, not a lock: the file is touched only (a) by the thread
/// that set `leader` under the lock, or (b) under the lock while
/// `leader` is false.
#[derive(Debug)]
struct WalShared {
    wal: File,
    state: Mutex<WalState>,
    /// Signaled whenever the durable watermark advances, a batch fails,
    /// or the leader slot frees — parked appenders re-check their seq.
    durable: Condvar,
    /// Number of `fsync` calls issued, ever. Lets benchmarks and tests
    /// observe the amortization directly: with group commit, 8 threads ×
    /// K appends need far fewer than 8·K syncs.
    syncs: AtomicU64,
}

#[derive(Debug)]
struct WalState {
    /// Last *claimed* sequence number (staged or durable).
    seq: u64,
    /// Last sequence number whose frame is in the file (and fsynced,
    /// when sync is on). `durable_seq < seq` exactly when frames are
    /// staged or a leader is mid-write.
    durable_seq: u64,
    /// Durable WAL byte length. The store is the file's sole writer (the
    /// advisory lock guarantees it), so tracking the offset here keeps
    /// the hot path free of metadata syscalls while giving the
    /// failed-write rollback its truncation target.
    wal_len: u64,
    /// Encoded frames staged for the next batch write, in seq order.
    staged: Vec<u8>,
    /// Inclusive seq ranges discarded by failed batch writes. Sequence
    /// numbers are never reused (recovery tolerates gaps — frames carry
    /// their own seq), so a parked appender can distinguish "my frame
    /// became durable" from "a later batch with a recycled seq did".
    /// Grows only on WAL I/O failure, which is terminal in practice.
    dead: Vec<(u64, u64)>,
    /// True while some appender is writing a batch outside the lock.
    leader: bool,
    sync: bool,
    group: bool,
}

// The queue is consistent at every unlock point (frames are staged as
// complete units), so a panicking appender must not poison the store
// for every other thread.
fn lock(shared: &WalShared) -> MutexGuard<'_, WalState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A durable snapshot+WAL store rooted at one directory.
///
/// `Store` is a cheap `Clone` handle: clones share the WAL file, the
/// sequence counter, and the group-commit queue, so any number of
/// threads may [`append`](Store::append) concurrently and share fsyncs.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    shared: Arc<WalShared>,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering the last
    /// consistent state: snapshot, surviving WAL records, and a repaired
    /// (truncated) WAL ready for appends.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Store, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (snapshot, base_seq) = match read_snapshot_file(&dir.join(SNAPSHOT_FILE))? {
            Some((image, base_seq)) => (Some(image), base_seq),
            None => (None, 0),
        };

        let wal_path = dir.join(WAL_FILE);
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        // One writer per store: an advisory lock on the WAL (released when
        // the last clone drops the file) keeps a second process from
        // interleaving appends into the same log.
        match wal.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked(dir.display().to_string()));
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let scanned = scan(&bytes)?;
        if scanned.torn {
            // Repair: drop the torn tail so future appends extend a valid
            // prefix instead of burying garbage mid-log.
            wal.set_len(scanned.valid_len as u64)?;
            wal.sync_data()?;
        }
        wal.seek(SeekFrom::Start(scanned.valid_len as u64))?;

        let last_seq = scanned.records.last().map(|r| r.seq).unwrap_or(0);
        let seq = last_seq.max(base_seq);
        // Skip records the snapshot already covers (crash between snapshot
        // rename and WAL truncate).
        let records: Vec<Vec<u8>> = scanned
            .records
            .into_iter()
            .filter(|r: &Record| r.seq > base_seq)
            .map(|r| r.payload)
            .collect();

        Ok((
            Store {
                dir,
                shared: Arc::new(WalShared {
                    wal,
                    state: Mutex::new(WalState {
                        seq,
                        durable_seq: seq,
                        wal_len: scanned.valid_len as u64,
                        staged: Vec::new(),
                        dead: Vec::new(),
                        leader: false,
                        sync: true,
                        group: true,
                    }),
                    durable: Condvar::new(),
                    syncs: AtomicU64::new(0),
                }),
            },
            Recovered {
                snapshot,
                records,
                torn_tail: scanned.torn,
            },
        ))
    }

    /// Whether appends fsync before returning (default `true`). Turning
    /// this off trades crash durability of the very last appends for
    /// throughput — benchmarks and tests only.
    pub fn set_sync(&self, sync: bool) {
        lock(&self.shared).sync = sync;
    }

    /// Whether concurrent synced appends share fsyncs (default `true`).
    /// Turning it off makes every append pay its own fsync while holding
    /// the queue lock — the per-append-fsync baseline that group commit
    /// is measured against.
    pub fn set_group_commit(&self, group: bool) {
        lock(&self.shared).group = group;
    }

    /// Number of `fsync` calls this store has issued since open — the
    /// direct observable of group-commit amortization.
    pub fn sync_count(&self) -> u64 {
        self.shared.syncs.load(Ordering::Relaxed)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the most recent append (0 if none yet).
    pub fn seq(&self) -> u64 {
        lock(&self.shared).seq
    }

    /// Durable WAL length in bytes (diagnostics and checkpoint policy).
    pub fn wal_len(&self) -> u64 {
        lock(&self.shared).wal_len
    }

    /// Appends one record to the WAL, returning its sequence number. The
    /// record is on disk (fsynced, unless [`set_sync`](Store::set_sync)
    /// disabled it) when this returns. Concurrent appends share one
    /// fsync per batch (see the module docs).
    ///
    /// A failed batch write rolls the file back to the durable record
    /// boundary: the log must not keep a partial frame — which would
    /// read as a tear at recovery and silently swallow every *later*
    /// acknowledged append — nor a complete frame the caller was told
    /// failed, which would resurrect on restart. Every appender whose
    /// staged frame was discarded gets the error.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        if payload.len() > u32::MAX as usize {
            // The frame's length field is u32; a silently wrapped length
            // would read back as a torn tail and truncate every record
            // after it. Refuse loudly instead.
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes exceeds the 4 GiB frame limit",
                payload.len()
            )));
        }
        let mut state = lock(&self.shared);
        state.seq += 1;
        let seq = state.seq;
        let frame = encode_record(seq, payload);
        state.staged.extend_from_slice(&frame);

        if (!state.sync || !state.group) && !state.leader {
            // Solo path: flush everything staged right here, under the
            // lock. Without sync this is just a buffered write; without
            // group commit it is the one-fsync-per-append baseline. (If a
            // leader is mid-write the file is not ours — fall through to
            // the queue protocol, which handles the frame correctly.)
            return self.flush_staged(&mut state).map(|()| seq);
        }

        loop {
            // Dead check first: the durable watermark advances past the
            // seq gap a failed batch leaves behind.
            if state.dead.iter().any(|&(lo, hi)| lo <= seq && seq <= hi) {
                return Err(StoreError::Io(std::io::Error::other(
                    "append discarded: batched WAL write failed",
                )));
            }
            if state.durable_seq >= seq {
                return Ok(seq);
            }
            if !state.leader {
                // Become the leader for everything staged so far.
                state.leader = true;
                // Gather window: drop the lock and yield once so peers
                // just woken by the previous commit can stage into this
                // batch instead of arriving right after the fsync starts
                // (which would halve the effective batch size). For an
                // uncontended writer this costs one sched_yield — noise
                // next to the fsync itself.
                drop(state);
                std::thread::yield_now();
                state = lock(&self.shared);
                let batch = std::mem::take(&mut state.staged);
                let batch_high = state.seq;
                let durable_boundary = state.wal_len;
                drop(state);
                let outcome = self.write_durable(&batch, true);
                state = lock(&self.shared);
                state.leader = false;
                match outcome {
                    Ok(()) => {
                        state.durable_seq = state.durable_seq.max(batch_high);
                        state.wal_len += batch.len() as u64;
                        self.shared.durable.notify_all();
                        // Loop around: our own seq is inside the batch.
                    }
                    Err(e) => {
                        // Roll the file back to the durable boundary and
                        // fail every in-flight append: the batch *and*
                        // frames staged behind it, whose seq numbers
                        // assume our batch landed.
                        self.rollback(&mut state, durable_boundary);
                        return Err(e);
                    }
                }
            } else {
                state = self
                    .shared
                    .durable
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Writes `batch` at the WAL cursor and (optionally) fsyncs. The
    /// caller must hold exclusive file access per the protocol invariant
    /// on [`WalShared`].
    fn write_durable(&self, batch: &[u8], sync: bool) -> Result<()> {
        let mut wal = &self.shared.wal;
        wal.write_all(batch)?;
        if sync {
            wal.sync_data()?;
            self.shared.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Truncates the WAL back to `durable_boundary` after a failed batch
    /// write and marks every undurable claimed seq dead so its appender
    /// errors out. Best effort on the file ops — the boundary itself is
    /// already durable.
    fn rollback(&self, state: &mut WalState, durable_boundary: u64) {
        let mut wal = &self.shared.wal;
        let _ = wal.set_len(durable_boundary);
        let _ = wal.seek(SeekFrom::Start(durable_boundary));
        let _ = wal.sync_data();
        state.staged.clear();
        // The failed batch plus anything staged behind it: all claimed,
        // none durable.
        state.dead.push((state.durable_seq + 1, state.seq));
        self.shared.durable.notify_all();
    }

    /// Flushes all staged frames under the held lock. Caller must ensure
    /// no leader is active (so the file is exclusively ours).
    fn flush_staged(&self, state: &mut WalState) -> Result<()> {
        let staged = std::mem::take(&mut state.staged);
        if staged.is_empty() {
            return Ok(());
        }
        let high = state.seq;
        match self.write_durable(&staged, state.sync) {
            Ok(()) => {
                state.durable_seq = high;
                state.wal_len += staged.len() as u64;
                self.shared.durable.notify_all();
                Ok(())
            }
            Err(e) => {
                let boundary = state.wal_len;
                self.rollback(state, boundary);
                Err(e)
            }
        }
    }

    /// Checkpoints `image` as the new snapshot and resets the WAL.
    ///
    /// The snapshot is written to a temp file, fsynced, and renamed into
    /// place — readers see either the old or the new snapshot, never a
    /// partial one. The WAL is truncated afterwards; if a crash
    /// intervenes, the base sequence number stored in the snapshot keeps
    /// the stale records from replaying twice. Any staged-but-unwritten
    /// frames are flushed first, so the snapshot's base sequence never
    /// claims to cover a record that is not on disk.
    pub fn checkpoint(&self, image: &[u8]) -> Result<()> {
        let mut state = lock(&self.shared);
        // Wait out any in-flight batch write: truncating under a leader
        // would corrupt the log.
        while state.leader {
            state = self
                .shared
                .durable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        self.flush_staged(&mut state)?;

        let tmp = self.dir.join(SNAPSHOT_TMP);
        let fin = self.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame_snapshot_file(image, state.seq))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &fin)?;
        // Make the rename itself durable before discarding the WAL.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let mut wal = &self.shared.wal;
        wal.set_len(0)?;
        wal.seek(SeekFrom::Start(0))?;
        wal.sync_data()?;
        state.wal_len = 0;
        Ok(())
    }
}

fn frame_snapshot_file(image: &[u8], base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.len() + 24);
    out.extend_from_slice(SNAP_FILE_MAGIC);
    put_u64(&mut out, base_seq);
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out.extend_from_slice(image);
    out
}

fn read_snapshot_file(path: &Path) -> Result<Option<(Vec<u8>, u64)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 20 {
        return Err(StoreError::Corrupt("snapshot file too short".into()));
    }
    if &bytes[..4] != SNAP_FILE_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot file magic".into()));
    }
    let base_seq = u64::from_le_bytes(bytes[4..12].try_into().expect("len 8"));
    let stored = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    if checksum(&bytes[..12]) != stored {
        return Err(StoreError::Corrupt("snapshot header checksum".into()));
    }
    Ok(Some((bytes[20..].to_vec(), base_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("resin-store-test-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn append_close_reopen_replays() {
        let dir = tmp_dir("replay");
        {
            let (s, r) = Store::open(&dir).unwrap();
            assert!(r.snapshot.is_none());
            assert!(r.records.is_empty());
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!r.torn_tail);
        assert_eq!(s.seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_wal_and_survives() {
        let dir = tmp_dir("checkpoint");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"pre").unwrap();
            s.checkpoint(b"IMAGE").unwrap();
            s.append(b"post").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"IMAGE" as &[u8]));
        assert_eq!(r.records, vec![b"post".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let dir = tmp_dir("torn");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"keep me").unwrap();
            s.append(b"torn away").unwrap();
        }
        // Tear the second record mid-payload.
        let wal = dir.join("wal.bin");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 4]).unwrap();
        {
            let (s, r) = Store::open(&dir).unwrap();
            assert_eq!(r.records, vec![b"keep me".to_vec()]);
            assert!(r.torn_tail);
            // The repaired log accepts new appends cleanly.
            s.append(b"after repair").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(
            r.records,
            vec![b"keep me".to_vec(), b"after repair".to_vec()]
        );
        assert!(!r.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_checkpoint_is_not_replayed_twice() {
        // Simulate a crash between snapshot rename and WAL truncate: the
        // WAL still holds records the snapshot covers.
        let dir = tmp_dir("staleseq");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"covered").unwrap();
            // Checkpoint, then put the pre-checkpoint WAL bytes back.
            let wal_bytes = std::fs::read(dir.join("wal.bin")).unwrap();
            s.checkpoint(b"SNAP").unwrap();
            std::fs::write(dir.join("wal.bin"), &wal_bytes).unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP" as &[u8]));
        assert!(
            r.records.is_empty(),
            "covered records must not replay twice"
        );
        // New appends continue above the covered sequence numbers.
        assert_eq!(s.append(b"fresh").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_a_live_store_is_refused() {
        let dir = tmp_dir("lock");
        let (store, _) = Store::open(&dir).unwrap();
        assert!(
            matches!(Store::open(&dir), Err(StoreError::Locked(_))),
            "advisory lock must refuse a second writer"
        );
        drop(store);
        assert!(Store::open(&dir).is_ok(), "lock released on drop");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_file_is_an_error() {
        let dir = tmp_dir("badsnap");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.checkpoint(b"GOOD").unwrap();
        }
        let snap = dir.join("snapshot.bin");
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[5] ^= 0xff; // corrupt the header
        std::fs::write(&snap, &bytes).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_all_durable_in_seq_order() {
        // 8 committer threads share one store: every record must land,
        // exactly once, in sequence order, and survive reopen —
        // regardless of how the leader batches them.
        let dir = tmp_dir("group");
        const THREADS: usize = 8;
        const PER: usize = 50;
        let total_syncs;
        {
            let (store, _) = Store::open(&dir).unwrap();
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = store.clone();
                    std::thread::spawn(move || {
                        (0..PER)
                            .map(|i| s.append(format!("t{t}-r{i}").as_bytes()).unwrap())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            let mut seqs = Vec::new();
            for h in handles {
                let got = h.join().unwrap();
                // Each thread's own appends are strictly ordered.
                assert!(got.windows(2).all(|w| w[0] < w[1]));
                seqs.extend(got);
            }
            seqs.sort_unstable();
            let expect: Vec<u64> = (1..=(THREADS * PER) as u64).collect();
            assert_eq!(seqs, expect, "every seq claimed exactly once");
            total_syncs = store.sync_count();
            assert!(total_syncs >= 1);
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), THREADS * PER);
        assert!(!r.torn_tail);
        // Sanity on the amortization mechanism: syncs can never exceed
        // appends. (The *ratio* is measured in the net_throughput bench,
        // not asserted here, to keep the test scheduler-independent.)
        assert!(total_syncs <= (THREADS * PER) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn solo_baseline_syncs_once_per_append() {
        let dir = tmp_dir("solo");
        let (store, _) = Store::open(&dir).unwrap();
        store.set_group_commit(false);
        store.append(b"a").unwrap();
        store.append(b"b").unwrap();
        assert_eq!(store.sync_count(), 2, "per-append fsync baseline");
        store.set_group_commit(true);
        store.append(b"c").unwrap();
        assert_eq!(store.sync_count(), 3, "uncontended append = one fsync");
        drop(store);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nosync_appends_recoverable() {
        let dir = tmp_dir("nosync");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.set_sync(false);
            s.append(b"fast").unwrap();
            assert_eq!(s.sync_count(), 0, "no fsync in nosync mode");
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"fast".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_sequence_and_file() {
        let dir = tmp_dir("clones");
        let (a, _) = Store::open(&dir).unwrap();
        let b = a.clone();
        assert_eq!(a.append(b"from a").unwrap(), 1);
        assert_eq!(b.append(b"from b").unwrap(), 2);
        assert_eq!(a.seq(), 2);
        drop(a);
        drop(b);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"from a".to_vec(), b"from b".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_with_checkpoint_interleaved() {
        // Checkpoints racing appends must never lose an acknowledged
        // record: after the final checkpoint, the snapshot covers every
        // append and the WAL is empty.
        let dir = tmp_dir("ckptrace");
        const THREADS: usize = 4;
        const PER: usize = 30;
        {
            let (store, _) = Store::open(&dir).unwrap();
            store.set_sync(false); // keep the race window tight, not slow
            let appenders: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = store.clone();
                    std::thread::spawn(move || {
                        for i in 0..PER {
                            s.append(format!("t{t}-r{i}").as_bytes()).unwrap();
                        }
                    })
                })
                .collect();
            for _ in 0..5 {
                store.checkpoint(b"MID").unwrap();
                std::thread::yield_now();
            }
            for h in appenders {
                h.join().unwrap();
            }
            store.checkpoint(b"FINAL").unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"FINAL" as &[u8]));
        assert!(r.records.is_empty(), "final checkpoint covers all appends");
        assert_eq!(s.seq(), (THREADS * PER) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
