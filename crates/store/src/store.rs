//! The durable store: one snapshot file plus one WAL, with crash
//! recovery.
//!
//! On-disk layout inside the store directory:
//!
//! ```text
//! snapshot.bin   last complete checkpoint (atomic: written to a temp
//!                file, fsynced, renamed over)
//! wal.bin        append-only records since that checkpoint
//! ```
//!
//! # Recovery contract
//!
//! [`Store::open`] loads the last complete snapshot and replays the WAL's
//! longest valid prefix, truncating any torn tail left by a crash
//! mid-append. The snapshot records the sequence number it covers
//! (`base_seq`), and replay skips records at or below it — so a crash
//! *between* "rename new snapshot into place" and "truncate the WAL"
//! cannot double-apply operations. Every crash point therefore recovers
//! to a consistent state: the last checkpoint plus a prefix of the
//! operations appended after it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{Result, StoreError};
use crate::io::{checksum, put_u64};
use crate::wal::{encode_record, scan, Record};

const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const WAL_FILE: &str = "wal.bin";

/// Outer framing of the snapshot file: magic, base sequence number,
/// checksum over both, then the client image (which carries its own
/// integrity trailer via [`crate::snapshot::SnapshotReader`]).
const SNAP_FILE_MAGIC: &[u8; 4] = b"RSTO";

/// What [`Store::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The last complete snapshot image, if a checkpoint was ever taken.
    pub snapshot: Option<Vec<u8>>,
    /// WAL payloads appended after that snapshot, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
}

/// A durable snapshot+WAL store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: File,
    seq: u64,
    /// Current WAL byte length. The store is the file's sole writer (the
    /// advisory lock guarantees it), so tracking the offset here keeps
    /// the append hot path free of metadata syscalls while still giving
    /// the failed-append rollback its truncation target.
    wal_len: u64,
    sync: bool,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering the last
    /// consistent state: snapshot, surviving WAL records, and a repaired
    /// (truncated) WAL ready for appends.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Store, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (snapshot, base_seq) = match read_snapshot_file(&dir.join(SNAPSHOT_FILE))? {
            Some((image, base_seq)) => (Some(image), base_seq),
            None => (None, 0),
        };

        let wal_path = dir.join(WAL_FILE);
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        // One writer per store: an advisory lock on the WAL (released when
        // the Store drops) keeps a second process from interleaving
        // appends into the same log.
        match wal.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked(dir.display().to_string()));
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let scanned = scan(&bytes)?;
        if scanned.torn {
            // Repair: drop the torn tail so future appends extend a valid
            // prefix instead of burying garbage mid-log.
            wal.set_len(scanned.valid_len as u64)?;
            wal.sync_data()?;
        }
        wal.seek(SeekFrom::End(0))?;

        let last_seq = scanned.records.last().map(|r| r.seq).unwrap_or(0);
        let seq = last_seq.max(base_seq);
        // Skip records the snapshot already covers (crash between snapshot
        // rename and WAL truncate).
        let records: Vec<Vec<u8>> = scanned
            .records
            .into_iter()
            .filter(|r: &Record| r.seq > base_seq)
            .map(|r| r.payload)
            .collect();

        Ok((
            Store {
                dir,
                wal,
                seq,
                wal_len: scanned.valid_len as u64,
                sync: true,
            },
            Recovered {
                snapshot,
                records,
                torn_tail: scanned.torn,
            },
        ))
    }

    /// Whether appends fsync before returning (default `true`). Turning
    /// this off trades crash durability of the very last appends for
    /// throughput — benchmarks and tests only.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the most recent append (0 if none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Appends one record to the WAL, returning its sequence number. The
    /// record is on disk (fsynced, unless [`set_sync`](Store::set_sync)
    /// disabled it) when this returns.
    ///
    /// A failed append rolls the file back to the previous record
    /// boundary (best effort): the log must not keep a partial frame —
    /// which would read as a tear and silently swallow every *later*
    /// acknowledged append at recovery — nor a complete frame the caller
    /// was told failed, which would resurrect on restart.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > u32::MAX as usize {
            // The frame's length field is u32; a silently wrapped length
            // would read back as a torn tail and truncate every record
            // after it. Refuse loudly instead.
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes exceeds the 4 GiB frame limit",
                payload.len()
            )));
        }
        let start = self.wal_len;
        let seq = self.seq + 1;
        let frame = encode_record(seq, payload);
        let outcome = self.wal.write_all(&frame).and_then(|()| {
            if self.sync {
                self.wal.sync_data()
            } else {
                Ok(())
            }
        });
        if let Err(e) = outcome {
            let _ = self.wal.set_len(start);
            let _ = self.wal.seek(SeekFrom::End(0));
            let _ = self.wal.sync_data();
            return Err(e.into());
        }
        self.seq = seq;
        self.wal_len = start + frame.len() as u64;
        Ok(seq)
    }

    /// Checkpoints `image` as the new snapshot and resets the WAL.
    ///
    /// The snapshot is written to a temp file, fsynced, and renamed into
    /// place — readers see either the old or the new snapshot, never a
    /// partial one. The WAL is truncated afterwards; if a crash intervenes
    /// the base sequence number stored in the snapshot keeps the stale
    /// records from replaying twice.
    pub fn checkpoint(&mut self, image: &[u8]) -> Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let fin = self.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame_snapshot_file(image, self.seq))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &fin)?;
        // Make the rename itself durable before discarding the WAL.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.sync_data()?;
        self.wal_len = 0;
        Ok(())
    }

    /// Current WAL length in bytes (diagnostics and checkpoint policy).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }
}

fn frame_snapshot_file(image: &[u8], base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.len() + 24);
    out.extend_from_slice(SNAP_FILE_MAGIC);
    put_u64(&mut out, base_seq);
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out.extend_from_slice(image);
    out
}

fn read_snapshot_file(path: &Path) -> Result<Option<(Vec<u8>, u64)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 20 {
        return Err(StoreError::Corrupt("snapshot file too short".into()));
    }
    if &bytes[..4] != SNAP_FILE_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot file magic".into()));
    }
    let base_seq = u64::from_le_bytes(bytes[4..12].try_into().expect("len 8"));
    let stored = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    if checksum(&bytes[..12]) != stored {
        return Err(StoreError::Corrupt("snapshot header checksum".into()));
    }
    Ok(Some((bytes[20..].to_vec(), base_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("resin-store-test-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn append_close_reopen_replays() {
        let dir = tmp_dir("replay");
        {
            let (mut s, r) = Store::open(&dir).unwrap();
            assert!(r.snapshot.is_none());
            assert!(r.records.is_empty());
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!r.torn_tail);
        assert_eq!(s.seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_wal_and_survives() {
        let dir = tmp_dir("checkpoint");
        {
            let (mut s, _) = Store::open(&dir).unwrap();
            s.append(b"pre").unwrap();
            s.checkpoint(b"IMAGE").unwrap();
            s.append(b"post").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"IMAGE" as &[u8]));
        assert_eq!(r.records, vec![b"post".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let dir = tmp_dir("torn");
        {
            let (mut s, _) = Store::open(&dir).unwrap();
            s.append(b"keep me").unwrap();
            s.append(b"torn away").unwrap();
        }
        // Tear the second record mid-payload.
        let wal = dir.join("wal.bin");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 4]).unwrap();
        {
            let (mut s, r) = Store::open(&dir).unwrap();
            assert_eq!(r.records, vec![b"keep me".to_vec()]);
            assert!(r.torn_tail);
            // The repaired log accepts new appends cleanly.
            s.append(b"after repair").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(
            r.records,
            vec![b"keep me".to_vec(), b"after repair".to_vec()]
        );
        assert!(!r.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_checkpoint_is_not_replayed_twice() {
        // Simulate a crash between snapshot rename and WAL truncate: the
        // WAL still holds records the snapshot covers.
        let dir = tmp_dir("staleseq");
        {
            let (mut s, _) = Store::open(&dir).unwrap();
            s.append(b"covered").unwrap();
            // Checkpoint, then put the pre-checkpoint WAL bytes back.
            let wal_bytes = std::fs::read(dir.join("wal.bin")).unwrap();
            s.checkpoint(b"SNAP").unwrap();
            std::fs::write(dir.join("wal.bin"), &wal_bytes).unwrap();
        }
        let (mut s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP" as &[u8]));
        assert!(
            r.records.is_empty(),
            "covered records must not replay twice"
        );
        // New appends continue above the covered sequence numbers.
        assert_eq!(s.append(b"fresh").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_a_live_store_is_refused() {
        let dir = tmp_dir("lock");
        let (store, _) = Store::open(&dir).unwrap();
        assert!(
            matches!(Store::open(&dir), Err(StoreError::Locked(_))),
            "advisory lock must refuse a second writer"
        );
        drop(store);
        assert!(Store::open(&dir).is_ok(), "lock released on drop");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_file_is_an_error() {
        let dir = tmp_dir("badsnap");
        {
            let (mut s, _) = Store::open(&dir).unwrap();
            s.checkpoint(b"GOOD").unwrap();
        }
        let snap = dir.join("snapshot.bin");
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[5] ^= 0xff; // corrupt the header
        std::fs::write(&snap, &bytes).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
