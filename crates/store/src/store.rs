//! The durable store: a manifest-based checkpoint plus a segmented WAL,
//! with crash recovery and **group commit**.
//!
//! On-disk layout inside the store directory:
//!
//! ```text
//! manifest.bin   the last complete checkpoint: base sequence number plus
//!                a list of named parts (atomic: temp file + rename)
//! part.NNNNNN.bin  one immutable checkpoint part image per file; part
//!                files are written once under a fresh name and never
//!                modified, so an unchanged part carries over between
//!                checkpoints by *reference* instead of being rewritten
//! wal.NNNNNN     append-only WAL segments since that checkpoint,
//!                size-capped and rotated; compaction deletes segments
//!                fully covered by the checkpoint's base sequence number
//! wal.lock       advisory single-writer lock
//! ```
//!
//! Older stores used a single `snapshot.bin` + `wal.bin`; [`Store::open`]
//! migrates them transparently (the legacy WAL becomes segment 1, the
//! legacy snapshot reads as a single part) and the next checkpoint
//! rewrites everything in the current format.
//!
//! # Recovery contract
//!
//! [`Store::open`] loads the last complete checkpoint and replays the
//! WAL's longest valid prefix *across segments*: segments are scanned in
//! index order, and the first torn or corrupt frame ends replay — the
//! torn segment is truncated to its valid prefix and every later segment
//! is discarded, exactly as a torn tail in a single file would swallow
//! everything after the tear. The manifest records the sequence number it
//! covers (`base_seq`), and replay skips records at or below it — so a
//! crash *between* "rename new manifest into place" and "delete covered
//! segments" cannot double-apply operations. Every crash point therefore
//! recovers to a consistent state: the last checkpoint plus a prefix of
//! the operations appended after it.
//!
//! # Incremental checkpoints
//!
//! [`Store::checkpoint_parts`] takes a list of named parts where each is
//! either a new image or `Unchanged`: unchanged parts are re-referenced
//! from the previous manifest without touching their bytes, so a
//! checkpoint costs O(changed parts), not O(database). Parts absent from
//! the list are dropped. The single-image [`Store::checkpoint`] is the
//! degenerate one-part case.
//!
//! # Group commit
//!
//! A fsynced append costs two orders of magnitude more than the write
//! itself, and it is the *fsync* that is amortizable: when N threads
//! commit concurrently, their frames can go to disk under **one**
//! `fsync` instead of N. [`Store`] is therefore a cheap `Clone` handle
//! over shared state, and [`append`](Store::append) runs a
//! leader/follower protocol:
//!
//! 1. every appender takes the queue lock, claims the next sequence
//!    number, and stages its encoded frame into a shared buffer;
//! 2. if no leader is active, the appender becomes the leader: it takes
//!    the whole staged buffer, **releases the lock**, and performs a
//!    single `write` + `fsync` for the batch;
//! 3. otherwise it parks on a condvar until the durable watermark
//!    reaches its sequence number. Frames staged while a leader is
//!    writing form the next batch — the next leader is whichever parked
//!    appender wakes first and finds the leader slot free.
//!
//! A single uncontended appender becomes leader immediately and pays
//! exactly one fsync — the floor — so group commit costs nothing when
//! there is nothing to batch. When a batched write fails, the active
//! segment is truncated back to the durable boundary and every appender
//! whose staged frame was discarded gets an error: acknowledged state and
//! recoverable state never diverge.
//!
//! The active segment lives in its own mutex, ordered *after* the queue
//! lock; exclusive write access is still the leader-protocol invariant
//! (the segment is written only by the thread that set `leader`, or under
//! the queue lock while `leader` is false) — the mutex exists so rotation
//! can swap the file handle and so read-side diagnostics can observe it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::error::{Result, StoreError};
use crate::io::{checksum, put_str, put_u32, put_u64, Cursor};
use crate::segment::{list_segments, segment_path};
use crate::wal::{encode_record, scan, Record};

pub(crate) const MANIFEST_FILE: &str = "manifest.bin";
const MANIFEST_TMP: &str = "manifest.tmp";
const LOCK_FILE: &str = "wal.lock";
const LEGACY_SNAPSHOT_FILE: &str = "snapshot.bin";
const LEGACY_WAL_FILE: &str = "wal.bin";

/// The part name [`Store::checkpoint`] uses for its single image, and
/// the name under which a legacy `snapshot.bin` is surfaced.
pub const IMAGE_PART: &str = "__image__";

/// Default segment rotation threshold (bytes). Small enough that
/// compaction reclaims space promptly, large enough that rotation is
/// rare next to appends.
const DEFAULT_SEGMENT_MAX: u64 = 4 * 1024 * 1024;

/// Outer framing of the legacy snapshot file: magic, base sequence
/// number, checksum over both, then the client image.
const SNAP_FILE_MAGIC: &[u8; 4] = b"RSTO";

/// Magic bytes opening the checkpoint manifest.
const MANIFEST_MAGIC: &[u8; 4] = b"RSTM";
const MANIFEST_VERSION: u32 = 1;

/// One named part the caller wants in the next checkpoint.
#[derive(Debug, Clone)]
pub struct Part {
    /// Stable part name (e.g. a table name).
    pub name: String,
    /// `Some(bytes)` writes a fresh image; `None` re-references the
    /// part's image from the previous manifest (error if there is none).
    pub image: Option<Vec<u8>>,
}

impl Part {
    /// A part with a fresh image.
    pub fn new(name: impl Into<String>, image: Vec<u8>) -> Part {
        Part {
            name: name.into(),
            image: Some(image),
        }
    }

    /// A part carried over unchanged from the previous checkpoint.
    pub fn unchanged(name: impl Into<String>) -> Part {
        Part {
            name: name.into(),
            image: None,
        }
    }
}

/// One manifest entry: a named part and the immutable file holding it.
#[derive(Debug, Clone)]
pub(crate) struct ManifestEntry {
    pub(crate) name: String,
    pub(crate) file: String,
    pub(crate) len: u64,
    pub(crate) sum: u64,
}

/// Named checkpoint parts in manifest order: `(part name, image bytes)`.
pub type Parts = Vec<(String, Vec<u8>)>;

/// What [`Store::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The last complete single-image snapshot, if the last checkpoint
    /// was taken through [`Store::checkpoint`] (or recovered from a
    /// legacy `snapshot.bin`). `None` when the checkpoint is multi-part.
    pub snapshot: Option<Vec<u8>>,
    /// Every named part of the last checkpoint, in manifest order.
    /// Empty if no checkpoint was ever taken.
    pub parts: Vec<(String, Vec<u8>)>,
    /// WAL payloads appended after that checkpoint, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
    /// True when the torn tail was found while more than one WAL segment
    /// was on disk — i.e. recovery crossed (or discarded) a segment
    /// boundary to repair the log. Surfaced so operators can tell a
    /// mundane single-segment tear from one that dropped whole segments.
    pub torn_cross_segment: bool,
}

/// Point-in-time counters for diagnostics (see the observability
/// satellite): segment count, live WAL bytes, sequence watermarks, and
/// the cost of the last checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL segments currently on disk.
    pub segments: u64,
    /// Bytes across those segments (appended since the last compaction).
    pub live_wal_bytes: u64,
    /// Last claimed sequence number.
    pub seq: u64,
    /// Sequence number the last checkpoint covers.
    pub base_seq: u64,
    /// Parts referenced by the current manifest.
    pub parts: u64,
    /// Parts actually (re)written by the last checkpoint — the direct
    /// observable of incremental reuse.
    pub last_checkpoint_parts_written: u64,
    /// Wall-clock duration of the last checkpoint, microseconds.
    pub last_checkpoint_micros: u64,
}

/// The segmented WAL plus the group-commit queue, shared by every clone
/// of the owning [`Store`].
///
/// The active segment sits in its own mutex (ordered after `state`) so
/// rotation can replace the handle. Exclusive *write* access is a
/// protocol invariant, not the mutex: frames are written only (a) by the
/// thread that set `leader` under the queue lock, or (b) under the queue
/// lock while `leader` is false.
#[derive(Debug)]
struct WalShared {
    dir: PathBuf,
    /// Advisory single-writer lock, held for the store's lifetime.
    _lock: File,
    active: Mutex<ActiveWal>,
    state: Mutex<WalState>,
    /// Signaled whenever the durable watermark advances, a batch fails,
    /// or the leader slot frees — parked appenders re-check their seq.
    durable: Condvar,
    /// Number of `fsync` calls issued, ever. Lets benchmarks and tests
    /// observe the amortization directly: with group commit, 8 threads ×
    /// K appends need far fewer than 8·K syncs.
    syncs: AtomicU64,
    /// Current manifest (in-memory mirror of `manifest.bin`); the source
    /// of images for `Part::unchanged` references.
    manifest: Mutex<Vec<ManifestEntry>>,
    /// Next part-file number (part files are never reused).
    next_part: AtomicU64,
    /// Sequence number the current manifest covers.
    base_seq: AtomicU64,
    last_ckpt_micros: AtomicU64,
    last_ckpt_parts_written: AtomicU64,
}

/// The open tail segment of the log.
#[derive(Debug)]
struct ActiveWal {
    file: File,
    /// Index of the active segment.
    index: u64,
    /// Durable byte length of the active segment (the rollback target
    /// for a failed batch write).
    len: u64,
    /// Index of the oldest segment still on disk.
    first_index: u64,
}

#[derive(Debug)]
struct WalState {
    /// Last *claimed* sequence number (staged or durable).
    seq: u64,
    /// Last sequence number whose frame is in the file (and fsynced,
    /// when sync is on). `durable_seq < seq` exactly when frames are
    /// staged or a leader is mid-write.
    durable_seq: u64,
    /// Bytes appended across all live segments since the last
    /// compaction (diagnostics and checkpoint policy).
    live_bytes: u64,
    /// Encoded frames staged for the next batch write, in seq order.
    staged: Vec<u8>,
    /// Inclusive seq ranges discarded by failed batch writes. Sequence
    /// numbers are never reused (recovery tolerates gaps — frames carry
    /// their own seq), so a parked appender can distinguish "my frame
    /// became durable" from "a later batch with a recycled seq did".
    /// Grows only on WAL I/O failure, which is terminal in practice.
    dead: Vec<(u64, u64)>,
    /// True while some appender is writing a batch outside the lock.
    leader: bool,
    sync: bool,
    group: bool,
    /// Rotation threshold: a batch that finds the active segment at or
    /// past this length opens the next segment first.
    segment_max: u64,
}

// The queue is consistent at every unlock point (frames are staged as
// complete units), so a panicking appender must not poison the store
// for every other thread.
fn lock(shared: &WalShared) -> MutexGuard<'_, WalState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_active(shared: &WalShared) -> MutexGuard<'_, ActiveWal> {
    shared.active.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_manifest(shared: &WalShared) -> MutexGuard<'_, Vec<ManifestEntry>> {
    shared
        .manifest
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort directory fsync, making renames/creates/unlinks durable.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// A durable checkpoint+WAL store rooted at one directory.
///
/// `Store` is a cheap `Clone` handle: clones share the WAL segments, the
/// sequence counter, and the group-commit queue, so any number of
/// threads may [`append`](Store::append) concurrently and share fsyncs.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    shared: Arc<WalShared>,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering the last
    /// consistent state: checkpoint parts, surviving WAL records, and a
    /// repaired (truncated) WAL ready for appends.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Store, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // One writer per store: an advisory lock (released when the last
        // clone drops the file) keeps a second process from interleaving
        // appends into the same log.
        let lock_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOCK_FILE))?;
        match lock_file.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked(dir.display().to_string()));
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }

        let (manifest, base_seq, parts) = read_checkpoint_state(&dir)?;

        // Legacy layout: a single `wal.bin` becomes segment 1.
        let legacy_wal = dir.join(LEGACY_WAL_FILE);
        if legacy_wal.exists() {
            if !list_segments(&dir)?.is_empty() {
                return Err(StoreError::Corrupt(
                    "both legacy wal.bin and WAL segments present".into(),
                ));
            }
            std::fs::rename(&legacy_wal, segment_path(&dir, 1))?;
            sync_dir(&dir);
        }

        let mut segments = list_segments(&dir)?;
        if segments.is_empty() {
            let path = segment_path(&dir, 1);
            OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)?;
            sync_dir(&dir);
            segments.push((1, path));
        }

        // Scan segments in index order; the first tear ends the log.
        let total_segments = segments.len();
        let mut records: Vec<Record> = Vec::new();
        let mut torn = false;
        let mut live_bytes = 0u64;
        let mut active: Option<(u64, File, u64)> = None;
        let first_index = segments[0].0;
        for (pos, (index, path)) in segments.iter().enumerate() {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .truncate(false)
                .open(path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let scanned = scan(&bytes)?;
            records.extend(scanned.records);
            live_bytes += scanned.valid_len as u64;
            if scanned.torn {
                // Repair: truncate the torn segment and discard every
                // later one — they are past the tear, exactly like bytes
                // after a torn tail in a single file.
                file.set_len(scanned.valid_len as u64)?;
                file.sync_data()?;
                for (_, later) in &segments[pos + 1..] {
                    std::fs::remove_file(later)?;
                }
                sync_dir(&dir);
                torn = true;
                file.seek(SeekFrom::Start(scanned.valid_len as u64))?;
                active = Some((*index, file, scanned.valid_len as u64));
                break;
            }
            file.seek(SeekFrom::Start(scanned.valid_len as u64))?;
            active = Some((*index, file, scanned.valid_len as u64));
        }
        let (active_index, active_file, active_len) = active.expect("at least one segment");

        let last_seq = records.last().map(|r| r.seq).unwrap_or(0);
        let seq = last_seq.max(base_seq);
        // Skip records the checkpoint already covers (crash between
        // manifest rename and segment deletion).
        let records: Vec<Vec<u8>> = records
            .into_iter()
            .filter(|r: &Record| r.seq > base_seq)
            .map(|r| r.payload)
            .collect();

        let next_part = next_part_number(&dir)?;
        remove_orphan_parts(&dir, &manifest);

        let snapshot = match parts.as_slice() {
            [(name, image)] if name == IMAGE_PART => Some(image.clone()),
            _ => None,
        };

        Ok((
            Store {
                dir: dir.clone(),
                shared: Arc::new(WalShared {
                    dir,
                    _lock: lock_file,
                    active: Mutex::new(ActiveWal {
                        file: active_file,
                        index: active_index,
                        len: active_len,
                        first_index,
                    }),
                    state: Mutex::new(WalState {
                        seq,
                        durable_seq: seq,
                        live_bytes,
                        staged: Vec::new(),
                        dead: Vec::new(),
                        leader: false,
                        sync: true,
                        group: true,
                        segment_max: DEFAULT_SEGMENT_MAX,
                    }),
                    durable: Condvar::new(),
                    syncs: AtomicU64::new(0),
                    manifest: Mutex::new(manifest),
                    next_part: AtomicU64::new(next_part),
                    base_seq: AtomicU64::new(base_seq),
                    last_ckpt_micros: AtomicU64::new(0),
                    last_ckpt_parts_written: AtomicU64::new(0),
                }),
            },
            Recovered {
                snapshot,
                parts,
                records,
                torn_tail: torn,
                torn_cross_segment: torn && total_segments > 1,
            },
        ))
    }

    /// Whether appends fsync before returning (default `true`). Turning
    /// this off trades crash durability of the very last appends for
    /// throughput — benchmarks and tests only.
    pub fn set_sync(&self, sync: bool) {
        lock(&self.shared).sync = sync;
    }

    /// Whether concurrent synced appends share fsyncs (default `true`).
    /// Turning it off makes every append pay its own fsync while holding
    /// the queue lock — the per-append-fsync baseline that group commit
    /// is measured against.
    pub fn set_group_commit(&self, group: bool) {
        lock(&self.shared).group = group;
    }

    /// Sets the segment rotation threshold in bytes. Small values force
    /// frequent rotation (tests); the default is 4 MiB.
    pub fn set_segment_max_bytes(&self, max: u64) {
        lock(&self.shared).segment_max = max.max(1);
    }

    /// Number of `fsync` calls this store has issued since open — the
    /// direct observable of group-commit amortization.
    pub fn sync_count(&self) -> u64 {
        self.shared.syncs.load(Ordering::Relaxed)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the most recent append (0 if none yet).
    pub fn seq(&self) -> u64 {
        lock(&self.shared).seq
    }

    /// Live WAL bytes across all segments (diagnostics and checkpoint
    /// policy).
    pub fn wal_len(&self) -> u64 {
        lock(&self.shared).live_bytes
    }

    /// The sequence number the current checkpoint covers (0 if none).
    pub fn base_seq(&self) -> u64 {
        self.shared.base_seq.load(Ordering::Relaxed)
    }

    /// Names of the parts referenced by the current manifest.
    pub fn part_names(&self) -> Vec<String> {
        lock_manifest(&self.shared)
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Point-in-time diagnostics counters.
    pub fn stats(&self) -> StoreStats {
        let state = lock(&self.shared);
        let (seq, live) = (state.seq, state.live_bytes);
        drop(state);
        let active = lock_active(&self.shared);
        let segments = active.index - active.first_index + 1;
        drop(active);
        StoreStats {
            segments,
            live_wal_bytes: live,
            seq,
            base_seq: self.shared.base_seq.load(Ordering::Relaxed),
            parts: lock_manifest(&self.shared).len() as u64,
            last_checkpoint_parts_written: self
                .shared
                .last_ckpt_parts_written
                .load(Ordering::Relaxed),
            last_checkpoint_micros: self.shared.last_ckpt_micros.load(Ordering::Relaxed),
        }
    }

    /// Appends one record to the WAL, returning its sequence number. The
    /// record is on disk (fsynced, unless [`set_sync`](Store::set_sync)
    /// disabled it) when this returns. Concurrent appends share one
    /// fsync per batch (see the module docs).
    ///
    /// A failed batch write rolls the active segment back to the durable
    /// record boundary: the log must not keep a partial frame — which
    /// would read as a tear at recovery and silently swallow every
    /// *later* acknowledged append — nor a complete frame the caller was
    /// told failed, which would resurrect on restart. Every appender
    /// whose staged frame was discarded gets the error.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        if payload.len() > u32::MAX as usize {
            // The frame's length field is u32; a silently wrapped length
            // would read back as a torn tail and truncate every record
            // after it. Refuse loudly instead.
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes exceeds the 4 GiB frame limit",
                payload.len()
            )));
        }
        let mut state = lock(&self.shared);
        state.seq += 1;
        let seq = state.seq;
        let frame = encode_record(seq, payload);
        state.staged.extend_from_slice(&frame);

        if (!state.sync || !state.group) && !state.leader {
            // Solo path: flush everything staged right here, under the
            // lock. Without sync this is just a buffered write; without
            // group commit it is the one-fsync-per-append baseline. (If a
            // leader is mid-write the file is not ours — fall through to
            // the queue protocol, which handles the frame correctly.)
            return self.flush_staged(&mut state).map(|()| seq);
        }

        loop {
            // Dead check first: the durable watermark advances past the
            // seq gap a failed batch leaves behind.
            if state.dead.iter().any(|&(lo, hi)| lo <= seq && seq <= hi) {
                return Err(StoreError::Io(std::io::Error::other(
                    "append discarded: batched WAL write failed",
                )));
            }
            if state.durable_seq >= seq {
                return Ok(seq);
            }
            if !state.leader {
                // Become the leader for everything staged so far.
                state.leader = true;
                let segment_max = state.segment_max;
                // Gather window: drop the lock and yield once so peers
                // just woken by the previous commit can stage into this
                // batch instead of arriving right after the fsync starts
                // (which would halve the effective batch size). For an
                // uncontended writer this costs one sched_yield — noise
                // next to the fsync itself.
                drop(state);
                std::thread::yield_now();
                state = lock(&self.shared);
                let batch = std::mem::take(&mut state.staged);
                let batch_high = state.seq;
                drop(state);
                let outcome = self.write_durable(&batch, true, segment_max);
                state = lock(&self.shared);
                state.leader = false;
                match outcome {
                    Ok(()) => {
                        state.durable_seq = state.durable_seq.max(batch_high);
                        state.live_bytes += batch.len() as u64;
                        self.shared.durable.notify_all();
                        // Loop around: our own seq is inside the batch.
                    }
                    Err(e) => {
                        // The segment is already rolled back to the
                        // durable boundary; fail every in-flight append:
                        // the batch *and* frames staged behind it, whose
                        // seq numbers assume our batch landed.
                        self.rollback(&mut state);
                        return Err(e);
                    }
                }
            } else {
                state = self
                    .shared
                    .durable
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Writes `batch` at the active segment's cursor, rotating first if
    /// the segment is at the cap, and (optionally) fsyncs. On a failed
    /// write the segment is truncated back to the pre-batch boundary.
    /// The caller must hold exclusive write access per the protocol
    /// invariant on [`WalShared`].
    fn write_durable(&self, batch: &[u8], sync: bool, segment_max: u64) -> Result<()> {
        let mut active = lock_active(&self.shared);
        if active.len >= segment_max && active.len > 0 && !batch.is_empty() {
            // Rotate at batch boundaries only: a frame never splits
            // across segments (a batch may overshoot the cap instead).
            self.rotate_locked(&mut active)?;
        }
        let boundary = active.len;
        let res = (|| -> Result<()> {
            active.file.write_all(batch)?;
            if sync {
                active.file.sync_data()?;
                self.shared.syncs.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                active.len += batch.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best effort on the file ops — the boundary itself is
                // already durable.
                let _ = active.file.set_len(boundary);
                let _ = active.file.seek(SeekFrom::Start(boundary));
                let _ = active.file.sync_data();
                Err(e)
            }
        }
    }

    /// Opens the next segment and makes it the active one. The directory
    /// entry is fsynced before any frame lands in the new file.
    fn rotate_locked(&self, active: &mut ActiveWal) -> Result<()> {
        let next = active.index + 1;
        let path = segment_path(&self.shared.dir, next);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        sync_dir(&self.shared.dir);
        active.file = file;
        active.index = next;
        active.len = 0;
        Ok(())
    }

    /// Marks every undurable claimed seq dead after a failed batch write
    /// so its appender errors out (the file itself was already rolled
    /// back by [`write_durable`](Store::write_durable)).
    fn rollback(&self, state: &mut WalState) {
        state.staged.clear();
        // The failed batch plus anything staged behind it: all claimed,
        // none durable.
        state.dead.push((state.durable_seq + 1, state.seq));
        self.shared.durable.notify_all();
    }

    /// Flushes all staged frames under the held lock. Caller must ensure
    /// no leader is active (so the active segment is exclusively ours).
    fn flush_staged(&self, state: &mut WalState) -> Result<()> {
        let staged = std::mem::take(&mut state.staged);
        if staged.is_empty() {
            return Ok(());
        }
        let high = state.seq;
        match self.write_durable(&staged, state.sync, state.segment_max) {
            Ok(()) => {
                state.durable_seq = high;
                state.live_bytes += staged.len() as u64;
                self.shared.durable.notify_all();
                Ok(())
            }
            Err(e) => {
                self.rollback(state);
                Err(e)
            }
        }
    }

    /// Checkpoints `image` as a single-part manifest and compacts the
    /// WAL. See [`checkpoint_parts`](Store::checkpoint_parts).
    pub fn checkpoint(&self, image: &[u8]) -> Result<()> {
        self.checkpoint_parts(vec![Part::new(IMAGE_PART, image.to_vec())])
    }

    /// Checkpoints the given parts as the new manifest and compacts the
    /// WAL.
    ///
    /// New part images are written to fresh immutable files and fsynced;
    /// `Part::unchanged` entries re-reference the previous manifest's
    /// file without touching its bytes. The manifest is then written to
    /// a temp file, fsynced, and renamed into place — readers see either
    /// the old or the new checkpoint, never a partial one. Covered WAL
    /// segments are deleted afterwards; if a crash intervenes, the base
    /// sequence number stored in the manifest keeps the stale records
    /// from replaying twice. Any staged-but-unwritten frames are flushed
    /// first, so the manifest's base sequence never claims to cover a
    /// record that is not on disk.
    pub fn checkpoint_parts(&self, parts: Vec<Part>) -> Result<()> {
        let started = Instant::now();
        let mut state = lock(&self.shared);
        // Wait out any in-flight batch write: compacting under a leader
        // would corrupt the log.
        while state.leader {
            state = self
                .shared
                .durable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        self.flush_staged(&mut state)?;
        let base_seq = state.seq;

        let mut manifest = lock_manifest(&self.shared);
        let mut entries: Vec<ManifestEntry> = Vec::with_capacity(parts.len());
        let mut written = 0u64;
        for part in parts {
            match part.image {
                Some(bytes) => {
                    let n = self.shared.next_part.fetch_add(1, Ordering::Relaxed);
                    let file_name = format!("part.{n:06}.bin");
                    let mut f = File::create(self.dir.join(&file_name))?;
                    f.write_all(&bytes)?;
                    f.sync_all()?;
                    entries.push(ManifestEntry {
                        name: part.name,
                        file: file_name,
                        len: bytes.len() as u64,
                        sum: checksum(&bytes),
                    });
                    written += 1;
                }
                None => {
                    let prev = manifest
                        .iter()
                        .find(|e| e.name == part.name)
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "unchanged checkpoint part `{}` has no previous image",
                                part.name
                            ))
                        })?;
                    entries.push(prev.clone());
                }
            }
        }

        let tmp = self.dir.join(MANIFEST_TMP);
        let fin = self.dir.join(MANIFEST_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&encode_manifest(base_seq, &entries))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &fin)?;
        // Make the rename itself durable before discarding the WAL.
        sync_dir(&self.dir);

        // The new manifest is the truth: drop superseded/orphan part
        // files, the legacy snapshot, and every covered segment.
        *manifest = entries;
        let _ = std::fs::remove_file(self.dir.join(LEGACY_SNAPSHOT_FILE));
        remove_orphan_parts(&self.dir, &manifest);
        drop(manifest);

        let mut active = lock_active(&self.shared);
        if active.len > 0 {
            // Rotate so every record ≤ base_seq sits in a prior segment.
            self.rotate_locked(&mut active)?;
        }
        for i in active.first_index..active.index {
            let _ = std::fs::remove_file(segment_path(&self.dir, i));
        }
        active.first_index = active.index;
        drop(active);
        sync_dir(&self.dir);

        state.live_bytes = 0;
        self.shared.base_seq.store(base_seq, Ordering::Relaxed);
        self.shared
            .last_ckpt_parts_written
            .store(written, Ordering::Relaxed);
        self.shared
            .last_ckpt_micros
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Ok(())
    }
}

fn encode_manifest(base_seq: u64, entries: &[ManifestEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, MANIFEST_VERSION);
    put_u64(&mut out, base_seq);
    put_u32(&mut out, entries.len() as u32);
    for e in entries {
        put_str(&mut out, &e.name);
        put_str(&mut out, &e.file);
        put_u64(&mut out, e.len);
        put_u64(&mut out, e.sum);
    }
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out
}

pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<(u64, Vec<ManifestEntry>)> {
    if bytes.len() < 8 {
        return Err(StoreError::Corrupt("manifest too short".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("len 8"));
    if checksum(body) != stored {
        return Err(StoreError::Corrupt("manifest checksum mismatch".into()));
    }
    let mut c = Cursor::new(body);
    let magic = [c.u8()?, c.u8()?, c.u8()?, c.u8()?];
    if &magic != MANIFEST_MAGIC {
        return Err(StoreError::Corrupt("bad manifest magic".into()));
    }
    let version = c.u32()?;
    if version != MANIFEST_VERSION {
        return Err(StoreError::Version {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }
    let base_seq = c.u64()?;
    let count = c.u32()?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = c.str()?;
        let file = c.str()?;
        let len = c.u64()?;
        let sum = c.u64()?;
        entries.push(ManifestEntry {
            name,
            file,
            len,
            sum,
        });
    }
    Ok((base_seq, entries))
}

/// Reads the checkpoint (manifest + part images, or the legacy single
/// snapshot) without taking any locks or mutating anything. Shared by
/// [`Store::open`] and the read-only replica tail
/// ([`crate::replica::read_checkpoint`]).
pub(crate) fn read_checkpoint_state(dir: &Path) -> Result<(Vec<ManifestEntry>, u64, Parts)> {
    match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => {
            let (base_seq, entries) = decode_manifest(&bytes)?;
            let mut parts = Vec::with_capacity(entries.len());
            for e in &entries {
                let image = std::fs::read(dir.join(&e.file))?;
                if image.len() as u64 != e.len || checksum(&image) != e.sum {
                    return Err(StoreError::Corrupt(format!(
                        "checkpoint part `{}` ({}) fails its checksum",
                        e.name, e.file
                    )));
                }
                parts.push((e.name.clone(), image));
            }
            Ok((entries, base_seq, parts))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            match read_snapshot_file(&dir.join(LEGACY_SNAPSHOT_FILE))? {
                Some((image, base_seq)) => {
                    Ok((Vec::new(), base_seq, vec![(IMAGE_PART.to_string(), image)]))
                }
                None => Ok((Vec::new(), 0, Vec::new())),
            }
        }
        Err(e) => Err(e.into()),
    }
}

/// The highest part-file number on disk plus one.
fn next_part_number(dir: &Path) -> Result<u64> {
    let mut max = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("part.") {
            if let Some(digits) = rest.strip_suffix(".bin") {
                if let Ok(n) = digits.parse::<u64>() {
                    max = max.max(n + 1);
                }
            }
        }
    }
    Ok(max)
}

/// Deletes `part.*.bin` files not referenced by `manifest` — superseded
/// images and the debris of a crash between part write and manifest
/// rename. Best effort.
fn remove_orphan_parts(dir: &Path, manifest: &[ManifestEntry]) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("part.")
            && name.ends_with(".bin")
            && !manifest.iter().any(|e| e.file == name)
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn read_snapshot_file(path: &Path) -> Result<Option<(Vec<u8>, u64)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 20 {
        return Err(StoreError::Corrupt("snapshot file too short".into()));
    }
    if &bytes[..4] != SNAP_FILE_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot file magic".into()));
    }
    let base_seq = u64::from_le_bytes(bytes[4..12].try_into().expect("len 8"));
    let stored = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    if checksum(&bytes[..12]) != stored {
        return Err(StoreError::Corrupt("snapshot header checksum".into()));
    }
    Ok(Some((bytes[20..].to_vec(), base_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::put_u64;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("resin-store-test-{}-{tag}-{n}", std::process::id()))
    }

    fn segment_count(dir: &Path) -> usize {
        list_segments(dir).unwrap().len()
    }

    #[test]
    fn append_close_reopen_replays() {
        let dir = tmp_dir("replay");
        {
            let (s, r) = Store::open(&dir).unwrap();
            assert!(r.snapshot.is_none());
            assert!(r.parts.is_empty());
            assert!(r.records.is_empty());
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!r.torn_tail);
        assert_eq!(s.seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_wal_and_survives() {
        let dir = tmp_dir("checkpoint");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"pre").unwrap();
            s.checkpoint(b"IMAGE").unwrap();
            s.append(b"post").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"IMAGE" as &[u8]));
        assert_eq!(r.records, vec![b"post".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let dir = tmp_dir("torn");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"keep me").unwrap();
            s.append(b"torn away").unwrap();
        }
        // Tear the second record mid-payload.
        let wal = segment_path(&dir, 1);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 4]).unwrap();
        {
            let (s, r) = Store::open(&dir).unwrap();
            assert_eq!(r.records, vec![b"keep me".to_vec()]);
            assert!(r.torn_tail);
            assert!(!r.torn_cross_segment, "single segment tear");
            // The repaired log accepts new appends cleanly.
            s.append(b"after repair").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(
            r.records,
            vec![b"keep me".to_vec(), b"after repair".to_vec()]
        );
        assert!(!r.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_checkpoint_is_not_replayed_twice() {
        // Simulate a crash between manifest rename and segment deletion:
        // a covered segment is still on disk.
        let dir = tmp_dir("staleseq");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.append(b"covered").unwrap();
            // Checkpoint, then put the pre-checkpoint segment back.
            let wal_bytes = std::fs::read(segment_path(&dir, 1)).unwrap();
            s.checkpoint(b"SNAP").unwrap();
            std::fs::write(segment_path(&dir, 1), &wal_bytes).unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP" as &[u8]));
        assert!(
            r.records.is_empty(),
            "covered records must not replay twice"
        );
        // New appends continue above the covered sequence numbers.
        assert_eq!(s.append(b"fresh").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_a_live_store_is_refused() {
        let dir = tmp_dir("lock");
        let (store, _) = Store::open(&dir).unwrap();
        assert!(
            matches!(Store::open(&dir), Err(StoreError::Locked(_))),
            "advisory lock must refuse a second writer"
        );
        drop(store);
        assert!(Store::open(&dir).is_ok(), "lock released on drop");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_part_is_an_error() {
        let dir = tmp_dir("badsnap");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.checkpoint(b"GOOD").unwrap();
        }
        // Corrupt the single part image behind the manifest.
        let part = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("part."))
            })
            .expect("one part file");
        let mut bytes = std::fs::read(&part).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&part, &bytes).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_layout_migrates_to_segments() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-craft the old layout: snapshot.bin + wal.bin.
        let mut snap = Vec::new();
        snap.extend_from_slice(SNAP_FILE_MAGIC);
        put_u64(&mut snap, 1); // base_seq
        let sum = checksum(&snap);
        put_u64(&mut snap, sum);
        snap.extend_from_slice(b"LEGACY");
        std::fs::write(dir.join(LEGACY_SNAPSHOT_FILE), &snap).unwrap();
        let mut wal = Vec::new();
        wal.extend_from_slice(&encode_record(1, b"covered"));
        wal.extend_from_slice(&encode_record(2, b"fresh"));
        std::fs::write(dir.join(LEGACY_WAL_FILE), &wal).unwrap();

        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"LEGACY" as &[u8]));
        assert_eq!(r.parts, vec![(IMAGE_PART.to_string(), b"LEGACY".to_vec())]);
        assert_eq!(r.records, vec![b"fresh".to_vec()]);
        assert!(
            !dir.join(LEGACY_WAL_FILE).exists(),
            "wal.bin became wal.000001"
        );
        assert!(segment_path(&dir, 1).exists());
        // The first checkpoint converts the snapshot to manifest form.
        s.append(b"post").unwrap();
        s.checkpoint(b"NEW").unwrap();
        assert!(!dir.join(LEGACY_SNAPSHOT_FILE).exists());
        assert!(dir.join(MANIFEST_FILE).exists());
        drop(s);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"NEW" as &[u8]));
        assert!(r.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_rotate_segments_at_the_cap() {
        let dir = tmp_dir("rotate");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.set_sync(false);
            s.set_segment_max_bytes(64);
            for i in 0..20u32 {
                s.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
            assert!(
                segment_count(&dir) > 1,
                "64-byte cap must force rotation: {} segments",
                segment_count(&dir)
            );
            assert_eq!(s.stats().segments as usize, segment_count(&dir));
        }
        // All records survive across the segment boundaries.
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), 20);
        assert_eq!(r.records[7], b"record-0007".to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_across_segments_drops_later_segments() {
        let dir = tmp_dir("tornseg");
        let cut_segment;
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.set_sync(false);
            s.set_segment_max_bytes(64);
            for i in 0..20u32 {
                s.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
            let segs = list_segments(&dir).unwrap();
            assert!(segs.len() >= 3, "need several segments, got {}", segs.len());
            cut_segment = segs[1].clone();
        }
        // Tear the middle segment mid-record: everything after the tear
        // — including whole later segments — must be discarded.
        let bytes = std::fs::read(&cut_segment.1).unwrap();
        std::fs::write(&cut_segment.1, &bytes[..bytes.len() - 3]).unwrap();
        let survivors;
        {
            let (s, r) = Store::open(&dir).unwrap();
            assert!(r.torn_tail);
            assert!(r.torn_cross_segment, "tear dropped later segments");
            survivors = r.records.len();
            assert!(survivors < 20);
            // Later segments are gone; the torn one is the active tail.
            let segs = list_segments(&dir).unwrap();
            assert_eq!(segs.last().unwrap().0, cut_segment.0);
            s.append(b"after repair").unwrap();
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), survivors + 1);
        assert_eq!(r.records.last().unwrap(), &b"after repair".to_vec());
        assert!(!r.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_covered_segments() {
        let dir = tmp_dir("compact");
        let (s, _) = Store::open(&dir).unwrap();
        s.set_sync(false);
        s.set_segment_max_bytes(64);
        for i in 0..20u32 {
            s.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        assert!(segment_count(&dir) > 1);
        s.checkpoint(b"COMPACT").unwrap();
        assert_eq!(
            segment_count(&dir),
            1,
            "compaction leaves only the fresh active segment"
        );
        assert_eq!(s.wal_len(), 0);
        let stats = s.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.base_seq, 20);
        drop(s);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"COMPACT" as &[u8]));
        assert!(r.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_parts_reuse_unchanged_images() {
        let dir = tmp_dir("parts");
        let (s, _) = Store::open(&dir).unwrap();
        s.checkpoint_parts(vec![
            Part::new("alpha", b"AAAA".to_vec()),
            Part::new("beta", b"BBBB".to_vec()),
        ])
        .unwrap();
        assert_eq!(s.stats().last_checkpoint_parts_written, 2);
        // Second checkpoint rewrites only beta; alpha carries by reference.
        s.checkpoint_parts(vec![
            Part::unchanged("alpha"),
            Part::new("beta", b"B2B2".to_vec()),
        ])
        .unwrap();
        let stats = s.stats();
        assert_eq!(stats.last_checkpoint_parts_written, 1);
        assert_eq!(stats.parts, 2);
        drop(s);
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(
            r.parts,
            vec![
                ("alpha".to_string(), b"AAAA".to_vec()),
                ("beta".to_string(), b"B2B2".to_vec()),
            ]
        );
        assert!(
            r.snapshot.is_none(),
            "multi-part checkpoint has no single image"
        );
        // A part dropped from the list disappears, and an unchanged
        // reference to a never-written part is refused.
        s.checkpoint_parts(vec![Part::unchanged("beta")]).unwrap();
        assert_eq!(s.part_names(), vec!["beta".to_string()]);
        assert!(s.checkpoint_parts(vec![Part::unchanged("alpha")]).is_err());
        drop(s);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.parts, vec![("beta".to_string(), b"B2B2".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_all_durable_in_seq_order() {
        // 8 committer threads share one store: every record must land,
        // exactly once, in sequence order, and survive reopen —
        // regardless of how the leader batches them.
        let dir = tmp_dir("group");
        const THREADS: usize = 8;
        const PER: usize = 50;
        let total_syncs;
        {
            let (store, _) = Store::open(&dir).unwrap();
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = store.clone();
                    std::thread::spawn(move || {
                        (0..PER)
                            .map(|i| s.append(format!("t{t}-r{i}").as_bytes()).unwrap())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            let mut seqs = Vec::new();
            for h in handles {
                let got = h.join().unwrap();
                // Each thread's own appends are strictly ordered.
                assert!(got.windows(2).all(|w| w[0] < w[1]));
                seqs.extend(got);
            }
            seqs.sort_unstable();
            let expect: Vec<u64> = (1..=(THREADS * PER) as u64).collect();
            assert_eq!(seqs, expect, "every seq claimed exactly once");
            total_syncs = store.sync_count();
            assert!(total_syncs >= 1);
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), THREADS * PER);
        assert!(!r.torn_tail);
        // Sanity on the amortization mechanism: syncs can never exceed
        // appends. (The *ratio* is measured in the net_throughput bench,
        // not asserted here, to keep the test scheduler-independent.)
        assert!(total_syncs <= (THREADS * PER) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn solo_baseline_syncs_once_per_append() {
        let dir = tmp_dir("solo");
        let (store, _) = Store::open(&dir).unwrap();
        store.set_group_commit(false);
        store.append(b"a").unwrap();
        store.append(b"b").unwrap();
        assert_eq!(store.sync_count(), 2, "per-append fsync baseline");
        store.set_group_commit(true);
        store.append(b"c").unwrap();
        assert_eq!(store.sync_count(), 3, "uncontended append = one fsync");
        drop(store);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nosync_appends_recoverable() {
        let dir = tmp_dir("nosync");
        {
            let (s, _) = Store::open(&dir).unwrap();
            s.set_sync(false);
            s.append(b"fast").unwrap();
            assert_eq!(s.sync_count(), 0, "no fsync in nosync mode");
        }
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"fast".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_sequence_and_file() {
        let dir = tmp_dir("clones");
        let (a, _) = Store::open(&dir).unwrap();
        let b = a.clone();
        assert_eq!(a.append(b"from a").unwrap(), 1);
        assert_eq!(b.append(b"from b").unwrap(), 2);
        assert_eq!(a.seq(), 2);
        drop(a);
        drop(b);
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.records, vec![b"from a".to_vec(), b"from b".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_with_checkpoint_interleaved() {
        // Checkpoints racing appends must never lose an acknowledged
        // record: after the final checkpoint, the snapshot covers every
        // append and the WAL is empty.
        let dir = tmp_dir("ckptrace");
        const THREADS: usize = 4;
        const PER: usize = 30;
        {
            let (store, _) = Store::open(&dir).unwrap();
            store.set_sync(false); // keep the race window tight, not slow
            let appenders: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = store.clone();
                    std::thread::spawn(move || {
                        for i in 0..PER {
                            s.append(format!("t{t}-r{i}").as_bytes()).unwrap();
                        }
                    })
                })
                .collect();
            for _ in 0..5 {
                store.checkpoint(b"MID").unwrap();
                std::thread::yield_now();
            }
            for h in appenders {
                h.join().unwrap();
            }
            store.checkpoint(b"FINAL").unwrap();
        }
        let (s, r) = Store::open(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"FINAL" as &[u8]));
        assert!(r.records.is_empty(), "final checkpoint covers all appends");
        assert_eq!(s.seq(), (THREADS * PER) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_racing_appends_never_drops_acknowledged_records() {
        // The segmented variant of the checkpoint race: tiny segments
        // force rotation *and* compaction while appenders run. Every
        // acknowledged record must be recoverable — either covered by
        // the final checkpoint or present in a surviving segment.
        let dir = tmp_dir("compactrace");
        const THREADS: usize = 4;
        const PER: usize = 50;
        {
            let (store, _) = Store::open(&dir).unwrap();
            store.set_sync(false);
            store.set_segment_max_bytes(96);
            let appenders: Vec<_> = (0..THREADS)
                .map(|t| {
                    let s = store.clone();
                    std::thread::spawn(move || {
                        for i in 0..PER {
                            s.append(format!("t{t}-r{i}").as_bytes()).unwrap();
                        }
                    })
                })
                .collect();
            for _ in 0..8 {
                store.checkpoint(b"MID").unwrap();
                std::thread::yield_now();
            }
            for h in appenders {
                h.join().unwrap();
            }
            // No final checkpoint: the tail records must survive in the
            // segments compaction left behind.
            assert_eq!(store.seq(), (THREADS * PER) as u64);
        }
        let (_, r) = Store::open(&dir).unwrap();
        // Whatever the last MID checkpoint covered is in the snapshot;
        // everything after it must be in the recovered records, with no
        // gaps: base_seq + records == all acknowledged appends.
        assert_eq!(r.snapshot.as_deref(), Some(b"MID" as &[u8]));
        assert!(!r.torn_tail);
        let (_, base_seq, _) = read_checkpoint_state(&dir).unwrap();
        assert_eq!(
            base_seq + r.records.len() as u64,
            (THREADS * PER) as u64,
            "every acknowledged record is covered or recovered"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_checkpoint_cost() {
        let dir = tmp_dir("stats");
        let (s, _) = Store::open(&dir).unwrap();
        s.append(b"x").unwrap();
        let before = s.stats();
        assert_eq!(before.base_seq, 0);
        assert!(before.live_wal_bytes > 0);
        s.checkpoint(b"IMG").unwrap();
        let after = s.stats();
        assert_eq!(after.base_seq, 1);
        assert_eq!(after.live_wal_bytes, 0);
        assert_eq!(after.parts, 1);
        assert!(after.last_checkpoint_micros > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
