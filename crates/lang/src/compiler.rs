//! The RSL bytecode compiler: AST → [`Chunk`].
//!
//! Lowering rules mirror the tree-walker exactly — same scoping (last
//! local frame, then globals, PHP-style implicit definition), same
//! evaluation order (assignment value before target, receiver before
//! arguments), same short-circuit results (`&&`/`||` always yield bools).
//! The differential test suite holds the two engines to bit-identical
//! values, labels, and error messages.
//!
//! This module also owns the process-wide **policy chunk cache** that
//! lives alongside the global policy interner: a policy's `export_check`
//! method compiles once per process (keyed by the method's `FnDecl`
//! allocation, which the interned policy keeps alive), so every gate
//! crossing after the first is a read-locked map lookup plus a VM run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::ast::{BinOp, Expr, FnDecl, Stmt, StmtKind, Target};
use crate::chunk::{Chunk, Const, Op};
use crate::interp::{Interp, LangError};

/// Compiles a top-level program. Every variable is a global; the chunk
/// returns the value of the last statement (matching `exec_program`).
pub(crate) fn compile_program(program: &[Stmt]) -> Result<Chunk, LangError> {
    let mut c = Compiler::new(String::new(), None);
    c.block(program, true)?;
    c.emit(Op::Return);
    Ok(c.finish())
}

/// Compiles a function or method body. Parameters and assigned names
/// become local slots; the implicit return value is `null`.
pub(crate) fn compile_function(decl: &FnDecl) -> Result<Chunk, LangError> {
    let mut c = Compiler::new(decl.name.clone(), Some(decl));
    c.block(&decl.body, false)?;
    c.emit(Op::Null);
    c.emit(Op::Return);
    Ok(c.finish())
}

// ---- the process-wide policy chunk cache ----

type ChunkCache = RwLock<HashMap<usize, (Arc<FnDecl>, Arc<Chunk>)>>;

fn policy_chunks() -> &'static ChunkCache {
    static CACHE: OnceLock<ChunkCache> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

static POLICY_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of distinct chunks the process-wide policy cache has compiled.
///
/// Observable by tests: checking the same policy N times moves this by
/// one; two distinct classes with byte-identical source move it by two
/// (they must not conflate — same rule as `intern_discriminator`).
pub fn compiled_policy_chunks() -> u64 {
    POLICY_COMPILES.load(Ordering::SeqCst)
}

/// Get-or-compile through the process-wide cache. Keyed by the `FnDecl`
/// allocation address; callers hold the `Arc` in the cache so the address
/// cannot be reused while the entry lives.
pub(crate) fn global_chunk_for(decl: &Arc<FnDecl>) -> Result<Arc<Chunk>, LangError> {
    let key = Arc::as_ptr(decl) as usize;
    if let Some((_, chunk)) = policy_chunks()
        .read()
        .expect("chunk cache poisoned")
        .get(&key)
    {
        return Ok(chunk.clone());
    }
    let chunk = Arc::new(compile_function(decl)?);
    let mut cache = policy_chunks().write().expect("chunk cache poisoned");
    if let Some((_, chunk)) = cache.get(&key) {
        return Ok(chunk.clone());
    }
    POLICY_COMPILES.fetch_add(1, Ordering::SeqCst);
    cache.insert(key, (decl.clone(), chunk.clone()));
    Ok(chunk)
}

/// Get-or-compile for a script function: the per-interpreter cache for
/// long-lived interpreters, or the process-wide cache for the short-lived
/// evaluators that run policy checks.
pub(crate) fn chunk_for(interp: &mut Interp, decl: &Arc<FnDecl>) -> Result<Arc<Chunk>, LangError> {
    if interp.use_global_chunk_cache {
        return global_chunk_for(decl);
    }
    let key = Arc::as_ptr(decl) as usize;
    if let Some((_, chunk)) = interp.chunks.get(&key) {
        return Ok(chunk.clone());
    }
    let chunk = Arc::new(compile_function(decl)?);
    interp.chunks.insert(key, (decl.clone(), chunk.clone()));
    Ok(chunk)
}

// ---- lowering ----

/// Dedup key for scalar constants.
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Str(String),
}

struct Compiler {
    code: Vec<Op>,
    consts: Vec<Const>,
    const_idx: HashMap<ConstKey, u32>,
    names: Vec<Arc<str>>,
    name_idx: HashMap<String, u32>,
    slot_names: Vec<Arc<str>>,
    slot_idx: HashMap<String, u16>,
    lines: Vec<(u32, u32)>,
    name: String,
    /// False for a top-level program (no local frame, everything global).
    in_function: bool,
}

impl Compiler {
    fn new(name: String, decl: Option<&FnDecl>) -> Compiler {
        let mut c = Compiler {
            code: Vec::new(),
            consts: Vec::new(),
            const_idx: HashMap::new(),
            names: Vec::new(),
            name_idx: HashMap::new(),
            slot_names: Vec::new(),
            slot_idx: HashMap::new(),
            lines: Vec::new(),
            name,
            in_function: decl.is_some(),
        };
        if let Some(decl) = decl {
            // Slots: parameters first, then every name `let`-bound or
            // assigned anywhere in the body (nested control flow included,
            // nested function bodies excluded — they get their own chunk).
            for p in &decl.params {
                c.add_slot(p);
            }
            collect_assigned(&decl.body, &mut c);
        }
        c
    }

    fn finish(self) -> Chunk {
        Chunk {
            code: self.code,
            consts: self.consts,
            names: self.names,
            slot_names: self.slot_names,
            lines: self.lines,
            name: self.name,
        }
    }

    fn add_slot(&mut self, name: &str) {
        if !self.slot_idx.contains_key(name) {
            let i = self.slot_names.len() as u16;
            self.slot_names.push(Arc::from(name));
            self.slot_idx.insert(name.to_string(), i);
        }
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn mark_line(&mut self, line: u32) {
        let at = self.code.len() as u32;
        if self.lines.last().map(|&(_, l)| l) != Some(line) {
            self.lines.push((at, line));
        }
    }

    fn const_of(&mut self, key: ConstKey, make: impl FnOnce() -> Const) -> Result<u32, LangError> {
        if let Some(&i) = self.const_idx.get(&key) {
            return Ok(i);
        }
        let i = push_idx(&mut self.consts, make(), "constant pool")?;
        self.const_idx.insert(key, i);
        Ok(i)
    }

    fn name_of(&mut self, name: &str) -> Result<u32, LangError> {
        if let Some(&i) = self.name_idx.get(name) {
            return Ok(i);
        }
        let i = push_idx(&mut self.names, Arc::from(name), "name table")?;
        self.name_idx.insert(name.to_string(), i);
        Ok(i)
    }

    /// Emits a jump with a placeholder target; [`Compiler::patch`] later.
    fn emit_jump(&mut self, op: Op) -> usize {
        self.emit(op)
    }

    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        self.code[at] = match self.code[at] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(target),
            Op::JumpSlotsGe { a, b, .. } => Op::JumpSlotsGe { a, b, t: target },
            other => unreachable!("patching non-jump {other:?}"),
        };
    }

    /// Compiles a block. With `want`, the block's value — the last
    /// statement's value, or `null` when empty — is left on the stack
    /// (only the top-level program's tail wants a value).
    fn block(&mut self, stmts: &[Stmt], want: bool) -> Result<(), LangError> {
        match stmts.split_last() {
            None => {
                if want {
                    self.emit(Op::Null);
                }
            }
            Some((last, init)) => {
                for s in init {
                    self.stmt(s, false)?;
                }
                self.stmt(last, want)?;
            }
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, want: bool) -> Result<(), LangError> {
        self.mark_line(stmt.line);
        match &stmt.kind {
            StmtKind::Let(name, e) => {
                self.expr(e)?;
                if self.in_function {
                    let i = self.slot_idx[name.as_str()];
                    self.emit(Op::LetSlot(i));
                } else {
                    let i = self.name_of(name)?;
                    self.emit(Op::StoreGlobal(i));
                }
                if want {
                    self.emit(Op::Null);
                }
            }
            StmtKind::Assign(target, e) => {
                if let Some(op) = self.fused_inc(target, e) {
                    self.emit(op);
                    if want {
                        self.emit(Op::Null);
                    }
                    return Ok(());
                }
                // Evaluation order matches the tree-walker: value first,
                // then the target's container and index expressions.
                self.expr(e)?;
                match target {
                    Target::Var(name) => self.store_var(name)?,
                    Target::Prop(obj, field) => {
                        self.expr(obj)?;
                        let i = self.name_of(field)?;
                        self.emit(Op::SetProp(i));
                    }
                    Target::Index(arr, idx) => {
                        self.expr(arr)?;
                        self.expr(idx)?;
                        self.emit(Op::SetIndex);
                    }
                }
                if want {
                    self.emit(Op::Null);
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e)?;
                if !want {
                    self.emit(Op::Pop);
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(cond)?;
                let to_else = self.emit_jump(Op::JumpIfFalse(0));
                self.block(then_body, want)?;
                let to_end = self.emit_jump(Op::Jump(0));
                self.patch(to_else);
                self.block(else_body, want)?;
                self.patch(to_end);
            }
            StmtKind::While { cond, body } => {
                let top = self.code.len() as u32;
                let to_end = match self.fused_guard(cond) {
                    Some(op) => self.emit_jump(op),
                    None => {
                        self.expr(cond)?;
                        self.emit_jump(Op::JumpIfFalse(0))
                    }
                };
                self.block(body, false)?;
                self.emit(Op::Jump(top));
                self.patch(to_end);
                if want {
                    self.emit(Op::Null);
                }
            }
            StmtKind::Return(e) => {
                match e {
                    Some(e) => self.expr(e)?,
                    None => {
                        self.emit(Op::Null);
                    }
                }
                self.emit(Op::Return);
            }
            StmtKind::Throw(e) => {
                self.expr(e)?;
                self.emit(Op::Throw);
            }
            StmtKind::FnDef(decl) => {
                let i = push_idx(&mut self.consts, Const::Fn(decl.clone()), "constant pool")?;
                self.emit(Op::DefineFn(i));
                if want {
                    self.emit(Op::Null);
                }
            }
            StmtKind::ClassDef(decl) => {
                let i = push_idx(
                    &mut self.consts,
                    Const::Class(decl.clone()),
                    "constant pool",
                )?;
                self.emit(Op::DefineClass(i));
                if want {
                    self.emit(Op::Null);
                }
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), LangError> {
        match e {
            Expr::Int(n) => {
                let i = self.const_of(ConstKey::Int(*n), || Const::Int(*n))?;
                self.emit(Op::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_of(ConstKey::Str(s.clone()), || Const::Str(s.clone()))?;
                self.emit(Op::Const(i));
            }
            Expr::Bool(true) => {
                self.emit(Op::True);
            }
            Expr::Bool(false) => {
                self.emit(Op::False);
            }
            Expr::Null => {
                self.emit(Op::Null);
            }
            Expr::Var(name) => self.load_var(name)?,
            Expr::This => {
                self.emit(Op::LoadThis);
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item)?;
                }
                let n = u16::try_from(items.len())
                    .map_err(|_| LangError::new("array literal too large"))?;
                self.emit(Op::MakeArray(n));
            }
            Expr::Not(e) => {
                self.expr(e)?;
                self.emit(Op::Not);
            }
            Expr::Neg(e) => {
                self.expr(e)?;
                self.emit(Op::Neg);
            }
            Expr::Binary { op, left, right } => self.binary(*op, left, right)?,
            Expr::Call { name, args } => {
                for a in args {
                    self.expr(a)?;
                }
                let name = self.name_of(name)?;
                let argc = arg_count(args.len())?;
                self.emit(Op::Call { name, argc });
            }
            Expr::MethodCall { recv, method, args } => {
                self.expr(recv)?;
                for a in args {
                    self.expr(a)?;
                }
                let name = self.name_of(method)?;
                let argc = arg_count(args.len())?;
                self.emit(Op::Method { name, argc });
            }
            Expr::Prop(obj, field) => {
                self.expr(obj)?;
                let i = self.name_of(field)?;
                self.emit(Op::GetProp(i));
            }
            Expr::Index(arr, idx) => {
                if let Some(op) = self.fused_index(arr, idx) {
                    self.emit(op);
                } else {
                    self.expr(arr)?;
                    self.expr(idx)?;
                    self.emit(Op::GetIndex);
                }
            }
            Expr::New { class, args } => {
                for a in args {
                    self.expr(a)?;
                }
                let class = self.name_of(class)?;
                let argc = arg_count(args.len())?;
                self.emit(Op::New { class, argc });
            }
        }
        Ok(())
    }

    fn binary(&mut self, op: BinOp, left: &Expr, right: &Expr) -> Result<(), LangError> {
        match op {
            // Short-circuit logicals always produce a plain bool, exactly
            // like the tree-walker.
            BinOp::And => {
                self.expr(left)?;
                let to_false = self.emit_jump(Op::JumpIfFalse(0));
                self.expr(right)?;
                self.emit(Op::Truthy);
                let to_end = self.emit_jump(Op::Jump(0));
                self.patch(to_false);
                self.emit(Op::False);
                self.patch(to_end);
            }
            BinOp::Or => {
                self.expr(left)?;
                let to_true = self.emit_jump(Op::JumpIfTrue(0));
                self.expr(right)?;
                self.emit(Op::Truthy);
                let to_end = self.emit_jump(Op::Jump(0));
                self.patch(to_true);
                self.emit(Op::True);
                self.patch(to_end);
            }
            // Arithmetic with a literal right operand folds the constant
            // into the opcode (`i + 1`, `h % 65521`, ...).
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod if matches!(right, Expr::Int(k) if i32::try_from(*k).is_ok()) =>
            {
                let Expr::Int(k) = right else { unreachable!() };
                self.expr(left)?;
                self.emit(Op::ConstArith { op, k: *k as i32 });
            }
            _ => {
                self.expr(left)?;
                self.expr(right)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
        }
        Ok(())
    }

    /// Slot index for `name` when reads of it compile to `LoadSlot`.
    fn slot_of(&self, e: &Expr) -> Option<u16> {
        if !self.in_function {
            return None;
        }
        let Expr::Var(name) = e else { return None };
        self.slot_idx.get(name.as_str()).copied()
    }

    /// `while (a < b)` with both operands local slots fuses the guard into
    /// one instruction.
    fn fused_guard(&self, cond: &Expr) -> Option<Op> {
        let Expr::Binary {
            op: BinOp::Lt,
            left,
            right,
        } = cond
        else {
            return None;
        };
        let a = u8::try_from(self.slot_of(left)?).ok()?;
        let b = u8::try_from(self.slot_of(right)?).ok()?;
        Some(Op::JumpSlotsGe { a, b, t: 0 })
    }

    /// `x = x + k` with `x` a local slot fuses into one in-place add.
    fn fused_inc(&self, target: &Target, e: &Expr) -> Option<Op> {
        let Target::Var(name) = target else {
            return None;
        };
        let Expr::Binary {
            op: BinOp::Add,
            left,
            right,
        } = e
        else {
            return None;
        };
        let Expr::Var(lname) = left.as_ref() else {
            return None;
        };
        if lname != name {
            return None;
        }
        let Expr::Int(k) = right.as_ref() else {
            return None;
        };
        Some(Op::IncSlot {
            slot: self.slot_of(left)?,
            k: i32::try_from(*k).ok()?,
        })
    }

    /// `arr[idx]` with both operands local slots fuses into one push.
    fn fused_index(&self, arr: &Expr, idx: &Expr) -> Option<Op> {
        Some(Op::IndexSlots {
            arr: self.slot_of(arr)?,
            idx: self.slot_of(idx)?,
        })
    }

    fn load_var(&mut self, name: &str) -> Result<(), LangError> {
        if self.in_function {
            if let Some(&i) = self.slot_idx.get(name) {
                self.emit(Op::LoadSlot(i));
                return Ok(());
            }
        }
        let i = self.name_of(name)?;
        self.emit(Op::LoadGlobal(i));
        Ok(())
    }

    fn store_var(&mut self, name: &str) -> Result<(), LangError> {
        if self.in_function {
            if let Some(&i) = self.slot_idx.get(name) {
                self.emit(Op::StoreSlot(i));
                return Ok(());
            }
        }
        let i = self.name_of(name)?;
        self.emit(Op::StoreGlobal(i));
        Ok(())
    }
}

fn arg_count(n: usize) -> Result<u8, LangError> {
    u8::try_from(n).map_err(|_| LangError::new("too many arguments (max 255)"))
}

fn push_idx<T>(v: &mut Vec<T>, item: T, what: &str) -> Result<u32, LangError> {
    let i = u32::try_from(v.len()).map_err(|_| LangError::new(format!("{what} overflow")))?;
    v.push(item);
    Ok(i)
}

/// Collects every name the body may bind locally: `let` targets and plain
/// variable assignments, through `if`/`while` but not into nested function
/// or class bodies (those compile to their own chunks with their own
/// slots). Matches the tree-walker, where only `define`/`set_var` against
/// the current frame create locals.
fn collect_assigned(stmts: &[Stmt], c: &mut Compiler) {
    for s in stmts {
        match &s.kind {
            StmtKind::Let(name, _) => c.add_slot(name),
            StmtKind::Assign(Target::Var(name), _) => c.add_slot(name),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, c);
                collect_assigned(else_body, c);
            }
            StmtKind::While { body, .. } => collect_assigned(body, c),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Chunk {
        compile_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn toplevel_uses_globals() {
        let c = compile("let x = 1; x;");
        assert!(c.code.contains(&Op::StoreGlobal(0)));
        assert!(c.code.contains(&Op::LoadGlobal(0)));
        assert_eq!(c.slot_count(), 0);
    }

    #[test]
    fn function_params_and_locals_become_slots() {
        let program =
            parse_program("fn f(a, b) { let x = a; if (b) { y = 1; } return x; }").unwrap();
        let StmtKind::FnDef(decl) = &program[0].kind else {
            panic!()
        };
        let c = compile_function(decl).unwrap();
        // a, b (params), then x, y (assigned) — reads of `a` hit slot 0.
        assert_eq!(c.slot_count(), 4);
        assert!(c.code.contains(&Op::LoadSlot(0)));
        assert!(c.code.contains(&Op::LetSlot(2)));
    }

    #[test]
    fn constants_are_deduplicated() {
        let c = compile(r#"1 + 1 + 1; "s" + "s";"#);
        let ints = c
            .consts
            .iter()
            .filter(|k| matches!(k, Const::Int(1)))
            .count();
        let strs = c
            .consts
            .iter()
            .filter(|k| matches!(k, Const::Str(s) if s == "s"))
            .count();
        assert_eq!((ints, strs), (1, 1));
    }

    #[test]
    fn while_compiles_to_backward_jump() {
        let c = compile("let i = 0; while (i < 3) { i = i + 1; }");
        assert!(c
            .code
            .iter()
            .enumerate()
            .any(|(at, op)| matches!(op, Op::Jump(t) if (*t as usize) < at)));
    }

    #[test]
    fn line_table_marks_statements() {
        let c = compile("1;\n2;\n3;");
        assert_eq!(c.line_of(0), Some(1));
        let last = c.len() - 1;
        assert_eq!(c.line_of(last), Some(3));
    }

    #[test]
    fn global_cache_compiles_once_per_decl() {
        let program = parse_program("fn probe_cache_once() { return 1; }").unwrap();
        let StmtKind::FnDef(decl) = &program[0].kind else {
            panic!()
        };
        let before = compiled_policy_chunks();
        let a = global_chunk_for(decl).unwrap();
        let b = global_chunk_for(decl).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(compiled_policy_chunks(), before + 1);
    }
}
