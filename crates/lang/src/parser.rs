//! Recursive-descent parser for RSL.

use std::fmt;
use std::sync::Arc;

use crate::ast::{BinOp, ClassDecl, Expr, FnDecl, Stmt, StmtKind, Target};
use crate::lexer::{lex, LexError, Tok, Token};

/// How deep expressions and blocks may nest before the parser refuses.
///
/// The parser is recursive-descent, so unbounded nesting (`((((...`)
/// translates directly into native stack depth — a crash any script author
/// could trigger. The cap is far above anything a real policy needs, but
/// low enough that the full precedence chain (~9 native frames per level)
/// fits comfortably in a debug-build test thread's 2 MiB stack.
const MAX_NESTING: u32 = 64;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line, when known.
    pub line: u32,
    /// 1-based byte column, when known.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error on line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            col: e.col,
            message: e.message,
        }
    }
}

/// Parses a program (a sequence of statements).
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression/block nesting depth (bounded by [`MAX_NESTING`]).
    depth: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn pos_token(&self) -> Option<&Token> {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
    }

    fn line(&self) -> u32 {
        self.pos_token().map(|t| t.line).unwrap_or(0)
    }

    fn col(&self) -> u32 {
        self.pos_token().map(|t| t.col).unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            col: self.col(),
            message: msg.into(),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{op}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let n = name.clone();
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.enter()?;
        self.expect_op("{")?;
        let mut stmts = Vec::new();
        while !self.eat_op("}") {
            if self.at_end() {
                self.leave();
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.leave();
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        Ok(Stmt::new(self.statement_kind()?, line))
    }

    fn statement_kind(&mut self) -> Result<StmtKind, ParseError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect_op("=")?;
            let e = self.expr()?;
            self.expect_op(";")?;
            return Ok(StmtKind::Let(name, e));
        }
        if self.eat_kw("if") {
            self.expect_op("(")?;
            let cond = self.expr()?;
            self.expect_op(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_kw("else") {
                if matches!(self.peek(), Some(Tok::Kw("if"))) {
                    vec![self.statement()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(StmtKind::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.eat_kw("while") {
            self.expect_op("(")?;
            let cond = self.expr()?;
            self.expect_op(")")?;
            let body = self.block()?;
            return Ok(StmtKind::While { cond, body });
        }
        if self.eat_kw("return") {
            if self.eat_op(";") {
                return Ok(StmtKind::Return(None));
            }
            let e = self.expr()?;
            self.expect_op(";")?;
            return Ok(StmtKind::Return(Some(e)));
        }
        if self.eat_kw("throw") {
            let e = self.expr()?;
            self.expect_op(";")?;
            return Ok(StmtKind::Throw(e));
        }
        if self.eat_kw("fn") {
            return Ok(StmtKind::FnDef(Arc::new(self.fn_decl()?)));
        }
        if self.eat_kw("class") {
            let name = self.ident()?;
            self.expect_op("{")?;
            let mut methods = Vec::new();
            while !self.eat_op("}") {
                if !self.eat_kw("fn") {
                    return Err(self.err("expected `fn` in class body"));
                }
                methods.push(Arc::new(self.fn_decl()?));
            }
            return Ok(StmtKind::ClassDef(Arc::new(ClassDecl { name, methods })));
        }
        // Expression or assignment.
        let e = self.expr()?;
        if self.eat_op("=") {
            let target = match e {
                Expr::Var(name) => Target::Var(name),
                Expr::Prop(obj, field) => Target::Prop(*obj, field),
                Expr::Index(arr, idx) => Target::Index(*arr, *idx),
                other => return Err(self.err(format!("invalid assignment target {other:?}"))),
            };
            let value = self.expr()?;
            self.expect_op(";")?;
            return Ok(StmtKind::Assign(target, value));
        }
        self.expect_op(";")?;
        Ok(StmtKind::Expr(e))
    }

    fn fn_decl(&mut self) -> Result<FnDecl, ParseError> {
        let name = self.ident()?;
        self.expect_op("(")?;
        let mut params = Vec::new();
        if !self.eat_op(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_op(")") {
                    break;
                }
                self.expect_op(",")?;
            }
        }
        let body = self.block()?;
        Ok(FnDecl { name, params, body })
    }

    // Precedence: or > and > equality > comparison > additive >
    // multiplicative > unary > postfix > primary.

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = self.or_expr();
        self.leave();
        e
    }

    fn binary_level<F>(
        &mut self,
        next: F,
        table: &[(&str, BinOp)],
        keywords: &[(&str, BinOp)],
    ) -> Result<Expr, ParseError>
    where
        F: Fn(&mut Self) -> Result<Expr, ParseError>,
    {
        let mut left = next(self)?;
        'outer: loop {
            for (op, bin) in table {
                if self.eat_op(op) {
                    let right = next(self)?;
                    left = Expr::Binary {
                        op: *bin,
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                    continue 'outer;
                }
            }
            for (kw, bin) in keywords {
                if self.eat_kw(kw) {
                    let right = next(self)?;
                    left = Expr::Binary {
                        op: *bin,
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                    continue 'outer;
                }
            }
            return Ok(left);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::and_expr, &[("||", BinOp::Or)], &[("or", BinOp::Or)])
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::equality,
            &[("&&", BinOp::And)],
            &[("and", BinOp::And)],
        )
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::comparison,
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[],
        )
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::additive,
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[],
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::multiplicative,
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::unary,
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            &[],
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op("!") || self.eat_kw("not") {
            self.enter()?;
            let e = self.unary();
            self.leave();
            return Ok(Expr::Not(Box::new(e?)));
        }
        if self.eat_op("-") {
            self.enter()?;
            let e = self.unary();
            self.leave();
            return Ok(Expr::Neg(Box::new(e?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_op(".") {
                let name = self.ident()?;
                if self.eat_op("(") {
                    let args = self.call_args()?;
                    e = Expr::MethodCall {
                        recv: Box::new(e),
                        method: name,
                        args,
                    };
                } else {
                    e = Expr::Prop(Box::new(e), name);
                }
            } else if self.eat_op("[") {
                let idx = self.expr()?;
                self.expect_op("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    /// Arguments after `(` has been consumed.
    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_op(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_op(")") {
                return Ok(args);
            }
            self.expect_op(",")?;
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op("(") {
            let e = self.expr()?;
            self.expect_op(")")?;
            return Ok(e);
        }
        if self.eat_op("[") {
            let mut items = Vec::new();
            if !self.eat_op("]") {
                loop {
                    items.push(self.expr()?);
                    if self.eat_op("]") {
                        break;
                    }
                    self.expect_op(",")?;
                }
            }
            return Ok(Expr::Array(items));
        }
        if self.eat_kw("new") {
            let class = self.ident()?;
            self.expect_op("(")?;
            let args = self.call_args()?;
            return Ok(Expr::New { class, args });
        }
        if self.eat_kw("this") {
            return Ok(Expr::This);
        }
        if self.eat_kw("true") {
            return Ok(Expr::Bool(true));
        }
        if self.eat_kw("false") {
            return Ok(Expr::Bool(false));
        }
        if self.eat_kw("null") {
            return Ok(Expr::Null);
        }
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Int(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.eat_op("(") {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_let_and_expr() {
        let p = parse_program("let x = 1 + 2 * 3;").unwrap();
        assert_eq!(p.len(), 1);
        let StmtKind::Let(
            name,
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            },
        ) = &p[0].kind
        else {
            panic!("{p:?}");
        };
        assert_eq!(name, "x");
        assert!(
            matches!(**right, Expr::Binary { op: BinOp::Mul, .. }),
            "precedence"
        );
    }

    #[test]
    fn parse_if_else_chain() {
        let p = parse_program("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }").unwrap();
        let StmtKind::If { else_body, .. } = &p[0].kind else {
            panic!()
        };
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parse_while_and_calls() {
        let p = parse_program("while (i < 10) { i = i + 1; f(i, 2); }").unwrap();
        let StmtKind::While { body, .. } = &p[0].kind else {
            panic!()
        };
        assert_eq!(body.len(), 2);
        assert!(
            matches!(&body[1].kind, StmtKind::Expr(Expr::Call { name, args }) if name == "f" && args.len() == 2)
        );
    }

    #[test]
    fn parse_fn_and_return() {
        let p = parse_program("fn add(a, b) { return a + b; } fn zero() { return; }").unwrap();
        let StmtKind::FnDef(f) = &p[0].kind else {
            panic!()
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
    }

    #[test]
    fn parse_class_with_methods() {
        let src = r#"
            class PasswordPolicy {
                fn init(email) { this.email = email; }
                fn export_check(context) {
                    if (context["type"] == "email" && context["email"] == this.email) {
                        return;
                    }
                    throw "unauthorized disclosure";
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let StmtKind::ClassDef(c) = &p[0].kind else {
            panic!()
        };
        assert_eq!(c.name, "PasswordPolicy");
        assert!(c.method("init").is_some());
        assert!(c.method("export_check").is_some());
    }

    #[test]
    fn parse_new_method_index_prop() {
        let p = parse_program(r#"let p = new P("a"); p.run(1)[2].field = x[0];"#).unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(&p[1].kind, StmtKind::Assign(Target::Prop(_, f), _) if f == "field"));
    }

    #[test]
    fn parse_array_literal_and_keyword_ops() {
        let p = parse_program("let a = [1, 2, 3]; let b = x and not y or z;").unwrap();
        assert_eq!(p.len(), 2);
        let StmtKind::Let(_, Expr::Array(items)) = &p[0].kind else {
            panic!()
        };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("let = 3;").is_err());
        assert!(parse_program("if (x) { ").is_err());
        assert!(parse_program("1 + ;").is_err());
        assert!(parse_program("f(1,);").is_err());
        assert!(parse_program("1 = 2;").is_err());
        assert!(parse_program("class C { let x; }").is_err());
    }

    #[test]
    fn statement_lines_recorded() {
        let p = parse_program("let a = 1;\nlet b = 2;\nif (a) {\n  b = 3;\n}").unwrap();
        assert_eq!(p[0].line, 1);
        assert_eq!(p[1].line, 2);
        assert_eq!(p[2].line, 3);
        let StmtKind::If { then_body, .. } = &p[2].kind else {
            panic!()
        };
        assert_eq!(then_body[0].line, 4);
    }

    #[test]
    fn parse_error_carries_line_and_column() {
        let e = parse_program("let x = 1;\nlet = 2;").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 5);
        assert!(e.to_string().contains("2:5"), "{e}");
    }

    #[test]
    fn deep_nesting_rejected_not_crashed() {
        // A recursive-descent parser without a depth cap would blow the
        // native stack here; the cap must turn it into an ordinary error.
        let deep = format!("{}1{};", "(".repeat(5_000), ")".repeat(5_000));
        let e = parse_program(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        let unary = format!("{}1;", "-".repeat(5_000));
        assert!(parse_program(&unary).is_err());
        // At sane depths everything still parses.
        let ok = format!("{}1{};", "(".repeat(50), ")".repeat(50));
        assert!(parse_program(&ok).is_ok());
    }
}
