//! `resin-lint` — the RSL policy linter, on the command line.
//!
//! ```text
//! resin-lint policy.rsl                 # lint RSL source files
//! resin-lint --scan crates --scan examples
//!                                       # also sweep directories: .rsl
//!                                       # files are linted whole, .rs
//!                                       # files are scanned for embedded
//!                                       # r#"..."# policies mentioning
//!                                       # export_check (snippets that do
//!                                       # not parse are skipped — many
//!                                       # are fragments)
//! resin-lint --scan crates --exclude lint_fixtures
//!                                       # skip paths containing a substring
//! ```
//!
//! Exit status is 1 when any error-severity diagnostic (or an unparsable
//! `.rsl` file) is found, 0 otherwise — CI runs this over every policy
//! embedded in the tree.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use resin_lang::analysis::lint::extract_embedded_rsl;
use resin_lang::{lint_source, LintReport};

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut scans: Vec<PathBuf> = Vec::new();
    let mut excludes: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scan" => match args.next() {
                Some(dir) => scans.push(PathBuf::from(dir)),
                None => return usage("--scan needs a directory"),
            },
            "--exclude" => match args.next() {
                Some(pat) => excludes.push(pat),
                None => return usage("--exclude needs a substring"),
            },
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if files.is_empty() && scans.is_empty() {
        return usage("nothing to lint");
    }

    let mut stats = Stats::default();
    for file in &files {
        lint_rsl_file(file, &mut stats);
    }
    for dir in &scans {
        walk(dir, &excludes, &mut stats);
    }

    eprintln!(
        "resin-lint: {} polic{} checked, {} error{}, {} warning{}",
        stats.policies,
        if stats.policies == 1 { "y" } else { "ies" },
        stats.errors,
        if stats.errors == 1 { "" } else { "s" },
        stats.warnings,
        if stats.warnings == 1 { "" } else { "s" },
    );
    if stats.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Default)]
struct Stats {
    policies: usize,
    errors: usize,
    warnings: usize,
}

impl Stats {
    fn absorb(&mut self, origin: &str, reports: Vec<LintReport>) {
        for report in reports {
            self.policies += 1;
            for d in &report.diagnostics {
                match d.severity {
                    resin_lang::Severity::Error => self.errors += 1,
                    resin_lang::Severity::Warning => self.warnings += 1,
                }
                println!("{origin}: {}: {d}", report.class_name);
            }
        }
    }
}

fn lint_rsl_file(path: &Path, stats: &mut Stats) {
    match std::fs::read_to_string(path) {
        Ok(src) => stats.absorb(&path.display().to_string(), lint_source(&src)),
        Err(e) => {
            eprintln!("resin-lint: {}: {e}", path.display());
            stats.errors += 1;
        }
    }
}

fn walk(dir: &Path, excludes: &[String], stats: &mut Stats) {
    let shown = dir.display().to_string();
    if excludes.iter().any(|pat| shown.contains(pat.as_str())) {
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("resin-lint: cannot read directory {shown}");
        stats.errors += 1;
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let shown = path.display().to_string();
        if excludes.iter().any(|pat| shown.contains(pat.as_str())) {
            continue;
        }
        if path.is_dir() {
            walk(&path, excludes, stats);
        } else if shown.ends_with(".rsl") {
            lint_rsl_file(&path, stats);
        } else if shown.ends_with(".rs") {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            for (line, snippet) in extract_embedded_rsl(&src) {
                // Embedded snippets are often fragments interpolated at
                // runtime; only lint the ones that parse standalone.
                if resin_lang::parse_program(&snippet).is_ok() {
                    stats.absorb(&format!("{shown}:{line}"), lint_source(&snippet));
                }
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("resin-lint: {err}");
    }
    eprintln!("usage: resin-lint [--scan DIR]... [--exclude SUBSTR]... [FILE.rsl]...");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
