//! Basic-block control-flow graphs lowered from RSL method ASTs.
//!
//! RSL's statement grammar is fully structured (`if`/`while`, no `goto`,
//! no `break`), so the lowering is a single recursive pass: straight-line
//! statements accumulate into the current block, each `if` fans out into
//! two arms that rejoin, each `while` becomes a header block with a back
//! edge, and `return`/`throw` terminate their block. Statements written
//! after a terminator land in a fresh block with no predecessors — the
//! reachability pass (not the lowering) is what reports them dead, so the
//! graph stays a faithful picture of the source.

use crate::ast::{BinOp, Expr, Stmt, StmtKind};

/// A block index into [`Cfg::blocks`].
pub type BlockId = usize;

/// How a basic block ends.
#[derive(Debug)]
pub enum Term<'a> {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way conditional edge.
    Branch {
        /// The branch condition (an `if` or `while` guard).
        cond: &'a Expr,
        /// Source line of the guarding statement.
        line: u32,
        /// Successor when the condition is truthy.
        then_to: BlockId,
        /// Successor when the condition is falsy.
        else_to: BlockId,
        /// True when this branch is a `while` header (its `then_to` arm
        /// eventually jumps back here).
        is_loop: bool,
    },
    /// `return [expr];`
    Return { value: Option<&'a Expr>, line: u32 },
    /// `throw expr;`
    Throw { value: &'a Expr, line: u32 },
    /// Execution falls off the end of the method (implicit `return null`).
    Exit,
}

/// A straight-line run of statements plus its terminator.
#[derive(Debug)]
pub struct Block<'a> {
    /// Non-branching statements, in execution order.
    pub stmts: Vec<&'a Stmt>,
    /// How control leaves the block.
    pub term: Term<'a>,
}

/// A control-flow graph over borrowed AST statements. Block 0 is the
/// entry; edges are encoded in each block's [`Term`].
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; indices are [`BlockId`]s.
    pub blocks: Vec<Block<'a>>,
}

impl<'a> Cfg<'a> {
    /// Lowers a statement list (a method or function body) into blocks.
    pub fn build(body: &'a [Stmt]) -> Cfg<'a> {
        let mut b = Builder { blocks: Vec::new() };
        let entry = b.new_block();
        debug_assert_eq!(entry, 0);
        let end = b.lower(entry, body);
        b.blocks[end].term = Term::Exit;
        Cfg { blocks: b.blocks }
    }

    /// Successor block ids of `id`, honoring statically-known branch
    /// conditions: a constant-true guard contributes only its then edge,
    /// a constant-false guard only its else edge.
    pub fn succs(&self, id: BlockId) -> Vec<BlockId> {
        match &self.blocks[id].term {
            Term::Jump(t) => vec![*t],
            Term::Branch {
                cond,
                then_to,
                else_to,
                ..
            } => match const_truth(cond) {
                Some(true) => vec![*then_to],
                Some(false) => vec![*else_to],
                None => vec![*then_to, *else_to],
            },
            Term::Return { .. } | Term::Throw { .. } | Term::Exit => Vec::new(),
        }
    }

    /// Blocks reachable from the entry through [`Cfg::succs`] (so blocks
    /// behind constant-false guards count as unreachable).
    pub fn reachable(&self) -> Vec<bool> {
        self.reachable_from(0)
    }

    /// Blocks reachable from `start`.
    pub fn reachable_from(&self, start: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            stack.extend(self.succs(id));
        }
        seen
    }
}

struct Builder<'a> {
    blocks: Vec<Block<'a>>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Term::Exit,
        });
        self.blocks.len() - 1
    }

    /// Lowers `stmts` starting in block `cur`; returns the block where
    /// control continues afterwards.
    fn lower(&mut self, mut cur: BlockId, stmts: &'a [Stmt]) -> BlockId {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let then_to = self.new_block();
                    let else_to = self.new_block();
                    self.blocks[cur].term = Term::Branch {
                        cond,
                        line: stmt.line,
                        then_to,
                        else_to,
                        is_loop: false,
                    };
                    let then_end = self.lower(then_to, then_body);
                    let else_end = self.lower(else_to, else_body);
                    let join = self.new_block();
                    self.blocks[then_end].term = Term::Jump(join);
                    self.blocks[else_end].term = Term::Jump(join);
                    cur = join;
                }
                StmtKind::While { cond, body } => {
                    let header = self.new_block();
                    self.blocks[cur].term = Term::Jump(header);
                    let body_to = self.new_block();
                    let after = self.new_block();
                    self.blocks[header].term = Term::Branch {
                        cond,
                        line: stmt.line,
                        then_to: body_to,
                        else_to: after,
                        is_loop: true,
                    };
                    let body_end = self.lower(body_to, body);
                    self.blocks[body_end].term = Term::Jump(header);
                    cur = after;
                }
                StmtKind::Return(value) => {
                    self.blocks[cur].term = Term::Return {
                        value: value.as_ref(),
                        line: stmt.line,
                    };
                    cur = self.new_block(); // anything after is dead
                }
                StmtKind::Throw(value) => {
                    self.blocks[cur].term = Term::Throw {
                        value,
                        line: stmt.line,
                    };
                    cur = self.new_block();
                }
                _ => self.blocks[cur].stmts.push(stmt),
            }
        }
        cur
    }
}

/// Statically evaluates an expression's truthiness, mirroring the
/// runtime's rules (`null`, `false`, `0`, and `""` are falsy). `None`
/// when the value isn't a compile-time constant. Used to prune edges out
/// of constant guards; stays deliberately pure — no expression whose
/// evaluation could error (division, indexing) is folded.
pub fn const_truth(e: &Expr) -> Option<bool> {
    match e {
        Expr::Int(n) => Some(*n != 0),
        Expr::Str(s) => Some(!s.is_empty()),
        Expr::Bool(b) => Some(*b),
        Expr::Null => Some(false),
        Expr::Not(e) => const_truth(e).map(|b| !b),
        Expr::Binary { op, left, right } => match op {
            BinOp::And => match const_truth(left) {
                Some(false) => Some(false),
                Some(true) => const_truth(right),
                None => None,
            },
            BinOp::Or => match const_truth(left) {
                Some(true) => Some(true),
                Some(false) => const_truth(right),
                None => None,
            },
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = const_cmp(left, right)?;
                Some(match op {
                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinOp::Ne => ord != std::cmp::Ordering::Equal,
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// Compares two constant operands of the same type, the only comparisons
/// the runtime performs without erroring.
fn const_cmp(a: &Expr, b: &Expr) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => Some(x.cmp(y)),
        (Expr::Str(x), Expr::Str(y)) => Some(x.cmp(y)),
        (Expr::Bool(x), Expr::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn cfg_of(src: &str) -> (Vec<Stmt>, usize) {
        let stmts = parse_program(src).unwrap();
        let n = Cfg::build(&stmts).blocks.len();
        (stmts, n)
    }

    #[test]
    fn straight_line_is_one_block() {
        let stmts = parse_program("let x = 1; let y = x + 1;").unwrap();
        let cfg = Cfg::build(&stmts);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert!(matches!(cfg.blocks[0].term, Term::Exit));
    }

    #[test]
    fn if_fans_out_and_rejoins() {
        let stmts = parse_program("if (x) { let a = 1; } else { let b = 2; } let c = 3;").unwrap();
        let cfg = Cfg::build(&stmts);
        // entry + then + else + join = 4 blocks, all reachable.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(cfg.reachable().iter().all(|r| *r));
    }

    #[test]
    fn while_has_back_edge() {
        let stmts = parse_program("let i = 0; while (i < 3) { i = i + 1; }").unwrap();
        let cfg = Cfg::build(&stmts);
        let header = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.term, Term::Branch { is_loop: true, .. }))
            .unwrap();
        let Term::Branch { then_to, .. } = cfg.blocks[header].term else {
            unreachable!()
        };
        // The loop body jumps back to the header.
        assert!(cfg.reachable_from(then_to)[header]);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let stmts = parse_program("return 1; let dead = 2;").unwrap();
        let cfg = Cfg::build(&stmts);
        let reach = cfg.reachable();
        let dead = cfg
            .blocks
            .iter()
            .enumerate()
            .position(|(i, b)| !b.stmts.is_empty() && !reach[i]);
        assert!(dead.is_some(), "dead statement lands in unreachable block");
    }

    #[test]
    fn const_false_guard_prunes_edge() {
        let (stmts, _) = cfg_of(r#"if (1 > 2) { throw "never"; }"#);
        let cfg = Cfg::build(&stmts);
        let reach = cfg.reachable();
        let throw_block = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.term, Term::Throw { .. }))
            .unwrap();
        assert!(!reach[throw_block], "constant-false arm is unreachable");
    }

    #[test]
    fn const_truth_folds_pure_shapes() {
        let cases = [
            ("true", Some(true)),
            ("false", Some(false)),
            ("0", Some(false)),
            ("3", Some(true)),
            (r#""""#, Some(false)),
            (r#""x""#, Some(true)),
            ("null", Some(false)),
            ("not 0", Some(true)),
            ("1 < 2", Some(true)),
            (r#""a" == "b""#, Some(false)),
            ("true && false", Some(false)),
            ("false || true", Some(true)),
            ("false && missing", Some(false)),
            ("missing", None),
            ("1 + 2", None), // arithmetic is not folded
            (r#"1 == "1""#, None),
        ];
        for (src, want) in cases {
            let stmts = parse_program(&format!("{src};")).unwrap();
            let StmtKind::Expr(e) = &stmts[0].kind else {
                panic!()
            };
            assert_eq!(const_truth(e), want, "{src}");
        }
    }
}
